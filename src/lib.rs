//! Workspace helper crate (integration tests + examples live in this package).
