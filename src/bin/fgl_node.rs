//! `fgl_node` — run the page server and its clients as **separate
//! processes** over the socket transport.
//!
//! Three subcommands share a rendezvous directory:
//!
//! ```text
//! fgl_node server --dir /tmp/demo [--tcp] [--pages 8] [--objects 8] [--partition I/N]
//! fgl_node client --dir /tmp/demo --id 1 --clients 2 --txns 50 [--crash-at 25] [--partitions N]
//! fgl_node verify --dir /tmp/demo [--partitions N]
//! ```
//!
//! The server populates a database, binds a Unix-domain socket at
//! `<dir>/fgl.sock` (or an ephemeral TCP port with `--tcp`) and writes a
//! `layout` manifest — endpoint plus object geometry — that clients poll
//! for. Each client owns the objects whose index is congruent to its id
//! (mod the client count), writes only those, and reads foreign objects
//! so the callback protocol actually crosses process boundaries. Every
//! committed write is recorded in a local oracle; `--crash-at T` runs
//! the §3.3 drill mid-workload (an in-flight loser, [`ClientCore::crash`],
//! then restart recovery over the live connection). On exit the client
//! verifies its own partition over the wire, dumps the oracle to
//! `<dir>/oracle-<id>`, hardens (ships dirty pages — the paper's planned
//! shutdown) and disconnects. `verify` then joins as one more client and
//! checks *every* process's oracle against what the server-side state
//! actually serves. Exit codes are the contract: 0 means clean.
//!
//! With `--partition I/N` the server process runs instance I of an N-way
//! partitioned page service: it owns pages in the residue class
//! `PageId % N == I`, populates its own residue locally, and publishes
//! `layout-I` instead of `layout`. Clients and the verifier pass
//! `--partitions N`, wait for all N manifests, and route through a
//! [`PartitionedServer`] over one socket connection per instance. The
//! in-process deadlock coordinator does not span OS processes — true
//! cross-server deadlocks between separate server processes fall back to
//! the lock-timeout backstop (see DESIGN §13).

use fgl::{
    ClientCore, ClientId, FglError, HistKind, Metrics, NetSim, NetSnapshot, NetStats, ObjectId,
    PageId, PartitionedServer, RemoteServer, Result, ServerApi, ServerCore, SlotId, SocketServer,
    SystemConfig, TransportKind,
};
use fgl_common::rng::DetRng;
use fgl_sim::populate;
use fgl_storage::disk::MemDisk;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LOADER_ID: u32 = 100;
const VERIFIER_ID: u32 = 101;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("server") => run(server_cmd(&args[1..])),
        Some("client") => run(client_cmd(&args[1..])),
        Some("verify") => run(verify_cmd(&args[1..])),
        _ => {
            eprintln!(
                "usage: fgl_node server --dir D [--tcp] [--pages N] [--objects N] \
                 [--object-size B] [--exit-when FILE] [--partition I/N]\n       \
                 fgl_node client --dir D --id K --clients N --txns T [--crash-at T2] [--seed S] \
                 [--partitions N]\n       \
                 fgl_node verify --dir D [--partitions N]"
            );
            2
        }
    };
    std::process::exit(code);
}

fn run(r: Result<bool>) -> i32 {
    match r {
        Ok(true) => 0,
        Ok(false) => 1,
        Err(e) => {
            eprintln!("fgl_node: error: {e}");
            1
        }
    }
}

// ---- tiny arg parser -------------------------------------------------------

struct Opts<'a> {
    args: &'a [String],
}

impl<'a> Opts<'a> {
    fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn num(&self, name: &str, default: u64) -> Result<u64> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| FglError::Config(format!("{name} wants a number, got {v:?}"))),
        }
    }

    fn dir(&self) -> Result<PathBuf> {
        self.value("--dir")
            .map(PathBuf::from)
            .ok_or_else(|| FglError::Config("--dir is required".into()))
    }

    /// `--partition I/N` (server side): which instance this process runs.
    fn partition(&self) -> Result<(usize, usize)> {
        let Some(v) = self.value("--partition") else {
            return Ok((0, 1));
        };
        let parsed = v
            .split_once('/')
            .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
        match parsed {
            Some((i, n)) if n >= 1 && i < n => Ok((i, n)),
            _ => Err(FglError::Config(format!(
                "--partition wants I/N with I < N, got {v:?}"
            ))),
        }
    }
}

// ---- server ----------------------------------------------------------------

fn server_cmd(args: &[String]) -> Result<bool> {
    let o = Opts { args };
    let dir = o.dir()?;
    std::fs::create_dir_all(&dir)?;
    let transport = if o.flag("--tcp") {
        TransportKind::Tcp
    } else {
        TransportKind::Uds
    };
    let pages = o.num("--pages", 8)? as usize;
    let objects_per_page = o.num("--objects", 8)? as usize;
    let object_size = o.num("--object-size", 64)? as usize;
    let (part, parts) = o.partition()?;

    let cfg = SystemConfig::default()
        .with_transport(transport)
        .with_server_instances(parts);
    cfg.validate()?;
    let net = Arc::new(NetSim::new(Duration::ZERO));
    let server = ServerCore::new_instance(
        cfg,
        net.clone(),
        Arc::new(MemDisk::new()),
        part,
        parts,
        Arc::new(Metrics::new()),
    );

    // Populate through an in-process loader client, then harden so the
    // authoritative copies live at the server before anyone connects.
    // Each instance populates locally: its allocator only hands out pages
    // in its own residue class, so N processes build disjoint slices of
    // one database without talking to each other.
    let loader = ClientCore::new(ClientId(LOADER_ID + part as u32), server.clone(), net);
    let layout = populate(&loader, pages, objects_per_page, object_size)?;
    loader.harden()?;

    let api: Arc<dyn ServerApi> = server.clone();
    let sock_name = if parts == 1 {
        "fgl.sock".to_string()
    } else {
        format!("fgl.{part}.sock")
    };
    let (_sock, endpoint) = match transport {
        TransportKind::Tcp => {
            let s = SocketServer::serve_tcp(api, "127.0.0.1:0")?;
            let addr = s.local_addr().expect("tcp listener has an address");
            (s, format!("tcp {addr}"))
        }
        _ => {
            let path = dir.join(sock_name);
            let s = SocketServer::serve_uds(api, &path)?;
            (s, format!("uds {}", path.display()))
        }
    };

    // The manifest lands atomically and *after* the listener is up, so a
    // polling client that sees it can connect immediately.
    let mut m =
        format!("endpoint {endpoint}\npartition {part} {parts}\nobject_size {object_size}\n");
    for ob in &layout.objects {
        m.push_str(&format!("obj {} {}\n", ob.page.0, ob.slot.0));
    }
    let manifest_name = if parts == 1 {
        "layout".to_string()
    } else {
        format!("layout-{part}")
    };
    write_atomic(&dir.join(manifest_name), &m)?;
    eprintln!(
        "fgl_node server[{part}/{parts}]: {} objects on {} pages, serving on {endpoint}",
        layout.objects.len(),
        layout.pages.len()
    );

    let stop_file = o.value("--exit-when").map(PathBuf::from);
    loop {
        if let Some(f) = &stop_file {
            if f.exists() {
                eprintln!("fgl_node server: stop file present, exiting");
                return Ok(true);
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

// ---- client ----------------------------------------------------------------

struct Manifest {
    /// One endpoint per partition, in instance order.
    endpoints: Vec<String>,
    objects: Vec<ObjectId>,
    object_size: usize,
}

fn client_cmd(args: &[String]) -> Result<bool> {
    let o = Opts { args };
    let dir = o.dir()?;
    let id = o.num("--id", 0)? as u32;
    let n_clients = o.num("--clients", 1)? as usize;
    let txns = o.num("--txns", 50)?;
    let crash_at = match o.value("--crash-at") {
        Some(_) => Some(o.num("--crash-at", 0)?),
        None => None,
    };
    let seed = o.num("--seed", 42)?;
    let partitions = o.num("--partitions", 1)? as usize;
    if id == 0 || id as usize > n_clients {
        return Err(FglError::Config(format!(
            "--id must be in 1..=--clients, got {id}"
        )));
    }

    let manifest = wait_for_manifests(&dir, partitions)?;
    let (remotes, core) = connect(&manifest, ClientId(id))?;
    let own: Vec<ObjectId> = manifest
        .objects
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % n_clients == (id as usize - 1))
        .map(|(_, ob)| ob)
        .collect();
    eprintln!(
        "fgl_node client {id}: connected, {} own / {} total objects",
        own.len(),
        manifest.objects.len()
    );

    // Seed the oracle from initial reads of the owned partition.
    let mut oracle: BTreeMap<ObjectId, Vec<u8>> = BTreeMap::new();
    let t = core.begin()?;
    for &ob in &own {
        oracle.insert(ob, core.read(t, ob)?);
    }
    core.commit(t)?;

    let mut rng = DetRng::new(seed ^ ((id as u64) << 32));
    let (mut commits, mut aborts) = (0u64, 0u64);
    for i in 0..txns {
        if crash_at == Some(i) {
            crash_drill(&core, &own, manifest.object_size, &mut rng)?;
        }
        match one_txn(
            &core,
            &own,
            &manifest.objects,
            manifest.object_size,
            &mut rng,
        ) {
            Ok(writes) => {
                commits += 1;
                for (ob, v) in writes {
                    oracle.insert(ob, v);
                }
            }
            Err(e) if e.is_transaction_abort() => aborts += 1,
            Err(e) => return Err(e),
        }
    }

    // Verify the owned partition over the wire, then dump the oracle for
    // the verifier process and leave cleanly (harden ships dirty pages).
    let mut mismatches = 0usize;
    let t = core.begin()?;
    for (&ob, want) in &oracle {
        if &core.read(t, ob)? != want {
            eprintln!("fgl_node client {id}: MISMATCH at {ob:?}");
            mismatches += 1;
        }
    }
    core.commit(t)?;
    let mut m = String::new();
    for (ob, v) in &oracle {
        m.push_str(&format!("obj {} {} {}\n", ob.page.0, ob.slot.0, hex(v)));
    }
    write_atomic(&dir.join(format!("oracle-{id}")), &m)?;
    core.harden()?;

    let wire = remotes
        .iter()
        .map(|r| r.wire_stats().snapshot())
        .fold(NetSnapshot::default(), |a, b| a.merge(&b));
    let snap = remotes[0].metrics().snapshot();
    let rtt = snap.hist(HistKind::WireRtt);
    eprintln!(
        "fgl_node client {id}: {commits} commits, {aborts} aborts, {mismatches} mismatches; \
         wire {} frames / {} bytes over {} connection(s), rtt p50={}us p95={}us",
        wire.total_messages(),
        wire.total_bytes(),
        remotes.len(),
        rtt.map_or(0, |h| h.p50()),
        rtt.map_or(0, |h| h.p95()),
    );
    for r in &remotes {
        r.disconnect();
    }
    Ok(mismatches == 0)
}

/// The §3.3 drill: leave a loser in flight, crash, recover over the same
/// live connection.
fn crash_drill(
    core: &Arc<ClientCore>,
    own: &[ObjectId],
    object_size: usize,
    rng: &mut DetRng,
) -> Result<()> {
    let t = core.begin()?;
    let ob = own[rng.range_usize(0, own.len())];
    let junk = vec![0xEE; object_size];
    // The write may itself lose a deadlock; either way the txn dies here.
    let _ = core.write(t, ob, &junk);
    core.crash();
    let report = core.recover()?;
    eprintln!(
        "fgl_node client {:?}: crashed and recovered ({} losers rolled back)",
        core.id(),
        report.losers
    );
    Ok(())
}

/// One workload transaction: overwrite an owned object, read a random
/// (likely foreign) one for cross-process contention.
fn one_txn(
    core: &Arc<ClientCore>,
    own: &[ObjectId],
    all: &[ObjectId],
    object_size: usize,
    rng: &mut DetRng,
) -> Result<Vec<(ObjectId, Vec<u8>)>> {
    let t = core.begin()?;
    let mut body = || -> Result<Vec<(ObjectId, Vec<u8>)>> {
        let ob = own[rng.range_usize(0, own.len())];
        let mut val = vec![0u8; object_size];
        rng.fill_bytes(&mut val);
        core.write(t, ob, &val)?;
        let foreign = all[rng.range_usize(0, all.len())];
        core.read(t, foreign)?;
        Ok(vec![(ob, val)])
    };
    match body() {
        Ok(writes) => {
            core.commit(t)?;
            Ok(writes)
        }
        Err(e) => {
            core.abort(t).ok();
            Err(e)
        }
    }
}

// ---- verify ----------------------------------------------------------------

fn verify_cmd(args: &[String]) -> Result<bool> {
    let o = Opts { args };
    let dir = o.dir()?;
    let partitions = o.num("--partitions", 1)? as usize;
    let manifest = wait_for_manifests(&dir, partitions)?;
    let (remotes, core) = connect(&manifest, ClientId(VERIFIER_ID))?;

    let mut expected: BTreeMap<ObjectId, Vec<u8>> = BTreeMap::new();
    let mut dumps = 0usize;
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with("oracle-") {
            continue;
        }
        dumps += 1;
        for line in std::fs::read_to_string(entry.path())?.lines() {
            let mut f = line.split_whitespace();
            let (Some("obj"), Some(p), Some(s), Some(h)) = (f.next(), f.next(), f.next(), f.next())
            else {
                return Err(FglError::Config(format!(
                    "bad oracle line in {name}: {line}"
                )));
            };
            let ob = ObjectId {
                page: PageId(parse(p)?),
                slot: SlotId(parse(s)? as u16),
            };
            expected.insert(ob, unhex(h)?);
        }
    }
    if dumps == 0 {
        return Err(FglError::Config(format!(
            "no oracle-* dumps in {}",
            dir.display()
        )));
    }

    let mut mismatches = 0usize;
    let t = core.begin()?;
    for (&ob, want) in &expected {
        if &core.read(t, ob)? != want {
            eprintln!("fgl_node verify: MISMATCH at {ob:?}");
            mismatches += 1;
        }
    }
    core.commit(t)?;
    for r in &remotes {
        r.disconnect();
    }
    eprintln!(
        "fgl_node verify: {} objects from {dumps} client dumps, {mismatches} mismatches",
        expected.len()
    );
    Ok(mismatches == 0)
}

// ---- shared plumbing -------------------------------------------------------

fn connect(manifest: &Manifest, id: ClientId) -> Result<(Vec<Arc<RemoteServer>>, Arc<ClientCore>)> {
    let mut remotes: Vec<Arc<RemoteServer>> = Vec::with_capacity(manifest.endpoints.len());
    for endpoint in &manifest.endpoints {
        let wire = Arc::new(NetStats::default());
        let mut parts = endpoint.split_whitespace();
        let remote = match (parts.next(), parts.next()) {
            (Some("uds"), Some(path)) => {
                RemoteServer::connect_uds(Path::new(path), id, wire, None)?
            }
            (Some("tcp"), Some(addr)) => RemoteServer::connect_tcp(addr, id, wire, None)?,
            _ => return Err(FglError::Config(format!("bad endpoint line: {endpoint:?}"))),
        };
        remotes.push(remote);
    }
    let api: Arc<dyn ServerApi> = if remotes.len() == 1 {
        remotes[0].clone()
    } else {
        PartitionedServer::new(
            remotes
                .iter()
                .map(|r| r.clone() as Arc<dyn ServerApi>)
                .collect(),
        )
    };
    let core = ClientCore::new(id, api, Arc::new(NetSim::new(Duration::ZERO)));
    Ok((remotes, core))
}

/// Wait for all `parts` per-partition manifests (`layout` when single,
/// `layout-K` otherwise) and merge them: endpoints in instance order,
/// object lists concatenated and sorted so every process derives the
/// same ownership assignment.
fn wait_for_manifests(dir: &Path, parts: usize) -> Result<Manifest> {
    let mut endpoints = Vec::with_capacity(parts);
    let mut objects = Vec::new();
    let mut object_size = 0usize;
    for k in 0..parts {
        let name = if parts == 1 {
            "layout".to_string()
        } else {
            format!("layout-{k}")
        };
        let one = read_manifest(&dir.join(name), k, parts)?;
        endpoints.push(one.0);
        objects.extend(one.1);
        object_size = one.2;
    }
    objects.sort_unstable();
    Ok(Manifest {
        endpoints,
        objects,
        object_size,
    })
}

/// Poll one partition's manifest into (endpoint, objects, object_size).
fn read_manifest(path: &Path, part: usize, parts: usize) -> Result<(String, Vec<ObjectId>, usize)> {
    let deadline = Instant::now() + Duration::from_secs(60);
    let text = loop {
        match std::fs::read_to_string(path) {
            Ok(t) => break t,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => {
                return Err(FglError::Config(format!(
                    "no layout manifest at {}: {e}",
                    path.display()
                )))
            }
        }
    };
    let mut endpoint = None;
    let mut object_size = 0usize;
    let mut objects = Vec::new();
    for line in text.lines() {
        let mut f = line.split_whitespace();
        match f.next() {
            Some("endpoint") => endpoint = Some(line["endpoint ".len()..].to_string()),
            Some("partition") => {
                let (Some(i), Some(n)) = (f.next(), f.next()) else {
                    return Err(FglError::Config(format!("bad manifest line: {line}")));
                };
                if parse(i)? as usize != part || parse(n)? as usize != parts {
                    return Err(FglError::Config(format!(
                        "manifest {} declares partition {i}/{n}, expected {part}/{parts}",
                        path.display()
                    )));
                }
            }
            Some("object_size") => {
                object_size = parse(f.next().unwrap_or(""))? as usize;
            }
            Some("obj") => {
                let (Some(p), Some(s)) = (f.next(), f.next()) else {
                    return Err(FglError::Config(format!("bad manifest line: {line}")));
                };
                objects.push(ObjectId {
                    page: PageId(parse(p)?),
                    slot: SlotId(parse(s)? as u16),
                });
            }
            _ => {}
        }
    }
    match (endpoint, objects.is_empty()) {
        (Some(endpoint), false) => Ok((endpoint, objects, object_size)),
        _ => Err(FglError::Config("incomplete layout manifest".into())),
    }
}

fn parse(s: &str) -> Result<u64> {
    s.parse()
        .map_err(|_| FglError::Config(format!("expected a number, got {s:?}")))
}

/// Write via temp + rename so concurrent pollers never see a torn file.
fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(FglError::Config("odd-length hex".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| FglError::Config(format!("bad hex {:?}", &s[i..i + 2])))
        })
        .collect()
}
