//! Quickstart: build a two-client system, create objects, share them
//! through the callback protocol, and watch what a commit costs.
//!
//! Run with: `cargo run --example quickstart`

use fgl::{MsgKind, System, SystemConfig};

fn main() -> fgl::Result<()> {
    // One page server, two client workstations, in-memory devices.
    let sys = System::build(SystemConfig::default(), 2)?;
    let alice = sys.client(0);
    let bob = sys.client(1);

    // Alice creates a page with two objects and commits. Under
    // client-based logging the commit forces only her private log.
    let t = alice.begin()?;
    let page = alice.create_page(t)?;
    let name = alice.insert(t, page, b"widget-7")?;
    let price = alice.insert(t, page, &42u32.to_le_bytes())?;
    alice.commit(t)?;
    println!("alice created {name} and {price} on {page}");

    // Bob reads both objects: the server calls Alice's locks back and
    // forwards her page copy.
    let t = bob.begin()?;
    let n = bob.read(t, name)?;
    let p = u32::from_le_bytes(bob.read(t, price)?.try_into().unwrap());
    bob.commit(t)?;
    println!("bob read {:?} at price {p}", String::from_utf8_lossy(&n));

    // Both update *different objects on the same page* concurrently —
    // the paper's fine-granularity headline.
    let ta = alice.begin()?;
    let tb = bob.begin()?;
    alice.write(ta, name, b"widget-8")?;
    bob.write(tb, price, &99u32.to_le_bytes())?;
    alice.commit(ta)?;
    bob.commit(tb)?;

    let t = alice.begin()?;
    println!(
        "merged page: name={:?} price={}",
        String::from_utf8_lossy(&alice.read(t, name)?),
        u32::from_le_bytes(alice.read(t, price)?.try_into().unwrap())
    );
    alice.commit(t)?;

    // What did a commit cost on the wire? Nothing: no pages, no log
    // records shipped (conclusion (1) of the paper).
    let before = sys.net.snapshot();
    let t = alice.begin()?;
    alice.write(t, name, b"widget-9")?;
    alice.commit(t)?;
    let delta = sys.net.snapshot().delta_since(&before);
    println!(
        "commit wire cost: {} messages ({} page ships, {} log ships)",
        delta.total_messages(),
        delta.count(MsgKind::PageShip),
        delta.count(MsgKind::CommitLogShip),
    );
    Ok(())
}
