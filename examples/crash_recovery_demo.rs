//! Crash-recovery walkthrough: client crash (§3.3), server crash (§3.4)
//! and the complex simultaneous crash (§3.5), each verified against the
//! committed state.
//!
//! Run with: `cargo run --example crash_recovery_demo`

use fgl::{System, SystemConfig};

fn main() -> fgl::Result<()> {
    let sys = System::build(SystemConfig::default(), 3)?;
    let (a, b, c) = (sys.client(0), sys.client(1), sys.client(2));

    // Shared state: one page, three counters, one per client.
    let t = a.begin()?;
    let page = a.create_page(t)?;
    let ka = a.insert(t, page, &0u64.to_le_bytes())?;
    let kb = a.insert(t, page, &0u64.to_le_bytes())?;
    let kc = a.insert(t, page, &0u64.to_le_bytes())?;
    a.commit(t)?;

    let bump = |cl: &std::sync::Arc<fgl::ClientCore>, key, by: u64| -> fgl::Result<u64> {
        let t = cl.begin()?;
        let cur = u64::from_le_bytes(cl.read(t, key)?.try_into().unwrap());
        cl.write(t, key, &(cur + by).to_le_bytes())?;
        cl.commit(t)?;
        Ok(cur + by)
    };

    // Everyone commits some work (fine-granularity: same page, different
    // objects, no waiting).
    for i in 1..=5u64 {
        bump(a, ka, i)?;
        bump(b, kb, i * 10)?;
        bump(c, kc, i * 100)?;
    }
    println!("committed: a=15 b=150 c=1500");

    // --- client crash (§3.3) -------------------------------------------------
    // B starts an update it never commits, then dies.
    let t = b.begin()?;
    let cur = u64::from_le_bytes(b.read(t, kb)?.try_into().unwrap());
    b.write(t, kb, &(cur + 999_999).to_le_bytes())?;
    b.checkpoint()?; // force the log so restart has the loser to undo
    b.crash();
    println!("b crashed mid-transaction");
    let rep = b.recover()?;
    println!(
        "b recovered: {} losers rolled back, {} pages redone, {:?}",
        rep.losers, rep.pages_recovered, rep.elapsed
    );
    let t = a.begin()?;
    assert_eq!(u64::from_le_bytes(a.read(t, kb)?.try_into().unwrap()), 150);
    a.commit(t)?;
    println!("b's uncommitted update is gone; committed value intact");

    // --- server crash (§3.4) -------------------------------------------------
    bump(a, ka, 1)?; // fresh un-flushed work in client caches
    bump(c, kc, 1)?;
    sys.server.crash();
    println!("server crashed (buffer pool, lock tables, DCT lost)");
    let rep = sys.server.restart_recovery()?;
    println!(
        "server restarted: {} pages via client replay, {} units, {:?}",
        rep.pages_recovered, rep.recovery_units, rep.elapsed
    );
    let t = b.begin()?;
    assert_eq!(u64::from_le_bytes(b.read(t, ka)?.try_into().unwrap()), 16);
    assert_eq!(u64::from_le_bytes(b.read(t, kc)?.try_into().unwrap()), 1501);
    b.commit(t)?;
    println!("all committed updates survived the server crash");

    // --- complex crash (§3.5) ------------------------------------------------
    bump(a, ka, 1)?;
    bump(b, kb, 1)?;
    b.crash();
    sys.server.crash();
    println!("complex crash: b AND the server down together");
    sys.server.restart_recovery()?;
    b.recover()?;
    let t = c.begin()?;
    assert_eq!(u64::from_le_bytes(c.read(t, ka)?.try_into().unwrap()), 17);
    assert_eq!(u64::from_le_bytes(c.read(t, kb)?.try_into().unwrap()), 151);
    c.commit(t)?;
    println!("complex crash recovered; private logs were never merged");
    Ok(())
}
