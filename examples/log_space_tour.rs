//! A tour of §3.6 private-log space management: run a client with a tiny
//! circular log and watch reclamation keep it alive — checkpoints advance
//! the low-water mark, and when that is not enough the client ships the
//! page with the minimum RedoLSN and asks the server to force it.
//!
//! Run with: `cargo run --example log_space_tour`

use fgl::{System, SystemConfig};

fn main() -> fgl::Result<()> {
    let cfg = SystemConfig {
        client_log_bytes: 64 << 10,         // 64 KiB — tiny on purpose
        client_checkpoint_every: 1_000_000, // only reclamation checkpoints
        ..Default::default()
    };
    let sys = System::build(cfg, 1)?;
    let c = sys.client(0);

    // A couple of pages full of counters.
    let t = c.begin()?;
    let p1 = c.create_page(t)?;
    let p2 = c.create_page(t)?;
    let a = c.insert(t, p1, &[0u8; 128])?;
    let b = c.insert(t, p2, &[0u8; 128])?;
    c.commit(t)?;

    println!("private log capacity: {} bytes", c.log_usage().1);
    println!("updating two 128-byte objects until the log wraps many times…\n");

    let mut last_report = 0u64;
    for i in 0..2_000u32 {
        let t = c.begin()?;
        c.write(t, a, &[(i % 251) as u8; 128])?;
        c.write(t, b, &[(i % 241) as u8; 128])?;
        c.commit(t)?;
        let stats = c.stats();
        if stats.log_stall_events > last_report {
            last_report = stats.log_stall_events;
            let (used, cap) = c.log_usage();
            println!(
                "txn {i:>5}: stall #{last_report} — reclaimed; log use {used}/{cap}, \
                 forced flushes so far {}, checkpoints {}",
                stats.forced_flush_requests, stats.checkpoints
            );
        }
    }
    let stats = c.stats();
    let (used, cap) = c.log_usage();
    println!(
        "\ndone: {} commits, {} log bytes written through a {}-byte log \
         ({}x the capacity), final use {used}/{cap}",
        stats.commits,
        stats.log_bytes,
        cap,
        stats.log_bytes / cap
    );
    println!(
        "stalls {}, forced flushes {}, checkpoints {} — and nothing was lost:",
        stats.log_stall_events, stats.forced_flush_requests, stats.checkpoints
    );
    let t = c.begin()?;
    assert_eq!(c.read(t, a)?[0], ((2_000u32 - 1) % 251) as u8);
    assert_eq!(c.read(t, b)?[0], ((2_000u32 - 1) % 241) as u8);
    c.commit(t)?;
    println!("final values verified.");
    Ok(())
}
