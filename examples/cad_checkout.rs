//! A CAD-style engineering session — the workload class (§1) the paper
//! targets: designers work on parts of a shared assembly for long
//! stretches, mostly against their own caches, with savepoints guarding
//! risky edits.
//!
//! Two designers edit *different parts stored on the same assembly page*
//! concurrently; a third reviews the merged result. One designer abandons
//! a speculative edit with a partial rollback.
//!
//! Run with: `cargo run --example cad_checkout`

use fgl::{ObjectId, System, SystemConfig};

/// A "part" record: 16-byte name + 4-byte revision counter.
fn part(name: &str, rev: u32) -> Vec<u8> {
    let mut v = vec![0u8; 20];
    let bytes = name.as_bytes();
    v[..bytes.len().min(16)].copy_from_slice(&bytes[..bytes.len().min(16)]);
    v[16..].copy_from_slice(&rev.to_le_bytes());
    v
}

fn rev_of(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[16..20].try_into().unwrap())
}

fn name_of(bytes: &[u8]) -> String {
    String::from_utf8_lossy(&bytes[..16])
        .trim_end_matches('\0')
        .to_string()
}

fn main() -> fgl::Result<()> {
    let sys = System::build(SystemConfig::default(), 3)?;
    let (dana, eli, reviewer) = (sys.client(0), sys.client(1), sys.client(2));

    // Dana lays out the assembly: one page, four parts.
    let t = dana.begin()?;
    let assembly = dana.create_page(t)?;
    let parts: Vec<ObjectId> = ["frame", "rotor", "sensor", "housing"]
        .iter()
        .map(|n| dana.insert(t, assembly, &part(n, 1)))
        .collect::<fgl::Result<_>>()?;
    dana.commit(t)?;
    println!("assembly {assembly} checked in with {} parts", parts.len());

    // Dana and Eli edit different parts of the same page concurrently —
    // object locks admit both (§3.1).
    let td = dana.begin()?;
    let te = eli.begin()?;
    dana.write(td, parts[0], &part("frame", 2))?;
    eli.write(te, parts[1], &part("rotor", 2))?;

    // Eli tries a speculative sensor tweak under a savepoint…
    eli.savepoint(te, "before-sensor-tweak")?;
    eli.write(te, parts[2], &part("sensor-exp", 2))?;
    // …and abandons it: partial rollback, the rotor edit survives.
    eli.rollback_to(te, "before-sensor-tweak")?;

    dana.commit(td)?;
    eli.commit(te)?;
    println!("dana and eli committed concurrent edits to one page");

    // The reviewer reads the merged assembly.
    let tr = reviewer.begin()?;
    for p in &parts {
        let bytes = reviewer.read(tr, *p)?;
        println!("  {} rev {}", name_of(&bytes), rev_of(&bytes));
    }
    reviewer.commit(tr)?;

    // Revision check: frame and rotor advanced, sensor tweak rolled back.
    let tr = reviewer.begin()?;
    assert_eq!(rev_of(&reviewer.read(tr, parts[0])?), 2);
    assert_eq!(rev_of(&reviewer.read(tr, parts[1])?), 2);
    assert_eq!(name_of(&reviewer.read(tr, parts[2])?), "sensor");
    reviewer.commit(tr)?;
    println!("review passed: merged state is exactly the committed edits");
    Ok(())
}
