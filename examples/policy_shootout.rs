//! Policy shootout: run the same workload under the paper's design and
//! the §4 baselines, printing the metrics that motivate each §3 design
//! choice.
//!
//! Run with: `cargo run --release --example policy_shootout`

use fgl::{CommitPolicy, LockGranularity, System, SystemConfig, UpdatePolicy};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::setup::populate;
use fgl_sim::workload::{WorkloadKind, WorkloadSpec};
use std::time::Duration;

fn run(label: &str, cfg: SystemConfig) -> fgl::Result<()> {
    let clients = 4;
    let sys = System::build(cfg, clients)?;
    let mut spec = WorkloadSpec::new(WorkloadKind::HiCon);
    spec.pages = 48;
    spec.objects_per_page = 16;
    spec.write_fraction = 0.5;
    let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 64)?;
    let report = run_workload(&sys, &layout, None, &HarnessOptions::new(spec, 50))?;
    println!(
        "{label:<34} {:>8.1} commits/s  {:>6.2} msgs/commit  {:>5} aborts  p95 {:>6}us",
        report.throughput(),
        report.messages_per_commit(),
        report.aborts,
        report.latency_us(95.0),
    );
    Ok(())
}

fn main() -> fgl::Result<()> {
    let base = || SystemConfig {
        disk_latency: Duration::from_micros(300),
        net_latency: Duration::from_micros(30),
        // The page-lock and update-token baselines are timeout-bound
        // (multi-page transactions deadlock under page-X serialization);
        // the default 5 s timeout makes those rows take minutes. Same
        // constant E2/E3 use.
        lock_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    println!("HICON workload, 4 clients, 50 txns each:\n");

    run("paper: object locks + client log", base())?;
    run(
        "baseline: page-level locks [17]",
        base().with_granularity(LockGranularity::Page),
    )?;
    run(
        "baseline: update token [17,18]",
        base().with_update_policy(UpdatePolicy::UpdateToken),
    )?;
    run(
        "baseline: server logging (CSA)",
        base().with_commit_policy(CommitPolicy::ServerLog),
    )?;
    run(
        "baseline: ship pages at commit",
        base().with_commit_policy(CommitPolicy::ShipPagesAtCommit),
    )?;
    run(
        "variant: adaptive granularity [3]",
        base().with_granularity(LockGranularity::Adaptive),
    )?;
    Ok(())
}
