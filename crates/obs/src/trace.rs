//! Causal per-transaction tracing: span emission, a trace assembler that
//! stitches flight-recorder rings into per-commit critical-path
//! breakdowns, and a Chrome trace-event exporter.
//!
//! # Context propagation
//!
//! There are no message structs in the counted fabric (client→server
//! calls are direct method calls, server→client goes through `ClientPeer`
//! on the caller's stack or a `fanout` subtask), so the trace context is
//! *ambient*: one u64 span id carried by `fgl_sched::trace_tag`. On a
//! green task the tag lives on the task and follows it across worker
//! threads; on a plain OS thread it is thread-local; a spawned subtask
//! inherits the spawner's tag. Opening a span reads the current tag as
//! its parent and installs its own id; closing restores the parent.
//!
//! # Span taxonomy
//!
//! See [`SpanKind`]: one root span per commit attempt (`Commit`), with
//! `LockWait`, `CallbackRtt`, `WalForce`, `NetHop`, `PageFetch` and
//! `CommitLogShip` nested under it along the causal chain. Scheduler
//! runnable-wait is not a span of its own: the scheduler reports each
//! queued→running delay for a tagged task as an [`Event::SchedWait`]
//! attached to the span that was current, and the assembler turns it
//! into a `sched-wait` interval nested one level below that span.
//!
//! # Critical-path attribution
//!
//! For each closed `Commit` root the assembler clips every descendant
//! interval to its parent chain and sweeps the root's interval, charging
//! each elementary segment to the **deepest active** span's kind (ties
//! go to the later-opened span). Uncovered time is the root's own. The
//! buckets therefore sum *exactly* to the root's duration — nested or
//! overlapping instrumentation never double-counts.
//!
//! Spans are only emitted while tracing is enabled (`FGL_TRACE_OUT` set,
//! or [`set_enabled`] for tests); disabled, [`span`] is one relaxed
//! atomic load.

use crate::event::{Event, SpanKind};
use crate::ring::Stamped;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use fgl_common::TxnId;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Span ids start at 1; 0 means "no span" in `fgl_sched::trace_tag`.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

fn env_init() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        if std::env::var_os("FGL_TRACE_OUT").is_some() {
            enable();
        }
    });
}

fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
    // First enable wires the scheduler's runnable-wait reporting to the
    // event stream (process-wide, stays installed).
    fgl_sched::set_trace_hook(sched_wait_hook);
}

fn sched_wait_hook(tag: u64, wait_us: u64) {
    if ENABLED.load(Ordering::Relaxed) && wait_us > 0 {
        crate::emit(Event::SchedWait { span: tag, wait_us });
    }
}

/// Whether span emission is on. Auto-enabled when `FGL_TRACE_OUT` is set.
pub fn enabled() -> bool {
    env_init();
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span emission on or off programmatically (benches, tests).
/// Process-wide.
pub fn set_enabled(on: bool) {
    env_init();
    if on {
        enable();
    } else {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// Closes the span (and restores the parent trace tag) on drop.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    id: u64,
    prev: u64,
}

impl SpanGuard {
    /// This span's id (the value sibling contexts see as their parent).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        crate::emit(Event::SpanClose { id: self.id });
        fgl_sched::set_trace_tag(self.prev);
    }
}

/// Open a span of `kind` for `txn` (use `TxnId(0)` when the transaction
/// is unknown at the site — the assembler resolves it through the parent
/// chain). Returns `None` when tracing is disabled.
pub fn span(kind: SpanKind, txn: TxnId) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let prev = fgl_sched::trace_tag();
    crate::emit(Event::SpanOpen {
        id,
        parent: prev,
        txn,
        kind,
    });
    fgl_sched::set_trace_tag(id);
    Some(SpanGuard { id, prev })
}

// ---- assembler --------------------------------------------------------------

/// One assembled span.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    /// Resolved through the parent chain when the open carried `TxnId(0)`.
    pub txn: TxnId,
    pub kind: SpanKind,
    pub start_us: u64,
    pub end_us: u64,
    /// False for orphaned spans (close lost to ring eviction or a crash);
    /// their `end_us` is the trace horizon.
    pub closed: bool,
}

impl SpanRecord {
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Exclusive critical-path breakdown of one committed transaction.
#[derive(Clone, Debug)]
pub struct TxnBreakdown {
    pub txn: TxnId,
    /// Root `Commit` span id.
    pub root: u64,
    /// Root span duration; the bucket values sum to exactly this.
    pub total_us: u64,
    /// Exclusive µs per span-kind tag, plus `"sched-wait"` for runnable
    /// waits; uncovered time lands under the root's own tag (`"commit"`).
    pub buckets: BTreeMap<&'static str, u64>,
}

/// Everything the assembler recovered from one event slice.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// All spans, open-order (by id).
    pub spans: Vec<SpanRecord>,
    /// Critical-path breakdowns for closed `Commit` roots, txn order.
    pub commits: Vec<TxnBreakdown>,
    /// `SchedWait` intervals as `(owning span id, start_us, end_us)`.
    pub sched_waits: Vec<(u64, u64, u64)>,
    /// Spans whose close was never seen (crash, ring eviction).
    pub orphan_opens: usize,
    /// Closes whose open was never seen (open evicted from the ring).
    pub orphan_closes: usize,
}

impl TraceReport {
    /// Sum of exclusive time per bucket across every commit breakdown.
    pub fn bucket_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for c in &self.commits {
            for (tag, us) in &c.buckets {
                *out.entry(*tag).or_insert(0) += us;
            }
        }
        out
    }
}

/// Stitch span events from a (merged, possibly truncated) flight-recorder
/// slice into spans and per-commit critical paths. Tolerates arbitrary
/// truncation and crash-orphaned spans — it never panics on a partial
/// trace.
pub fn assemble(events: &[Stamped]) -> TraceReport {
    let mut opens: BTreeMap<u64, (u64, u64, TxnId, SpanKind)> = BTreeMap::new();
    let mut closed: BTreeMap<u64, SpanRecord> = BTreeMap::new();
    let mut report = TraceReport::default();
    let mut horizon = 0u64;
    for st in events {
        horizon = horizon.max(st.at_us);
        match st.event {
            Event::SpanOpen {
                id,
                parent,
                txn,
                kind,
            } => {
                opens.insert(id, (parent, st.at_us, txn, kind));
            }
            Event::SpanClose { id } => match opens.remove(&id) {
                Some((parent, start_us, txn, kind)) => {
                    closed.insert(
                        id,
                        SpanRecord {
                            id,
                            parent,
                            txn,
                            kind,
                            start_us,
                            end_us: st.at_us.max(start_us),
                            closed: true,
                        },
                    );
                }
                None => report.orphan_closes += 1,
            },
            Event::SchedWait { span, wait_us } => {
                report
                    .sched_waits
                    .push((span, st.at_us.saturating_sub(wait_us), st.at_us));
            }
            _ => {}
        }
    }
    report.orphan_opens = opens.len();
    for (id, (parent, start_us, txn, kind)) in opens {
        closed.insert(
            id,
            SpanRecord {
                id,
                parent,
                txn,
                kind,
                start_us,
                end_us: horizon.max(start_us),
                closed: false,
            },
        );
    }

    // Resolve txn ids down the parent chain (a NetHop opened with
    // TxnId(0) inside a LockWait belongs to that lock wait's txn).
    let parents: BTreeMap<u64, (u64, TxnId)> =
        closed.values().map(|s| (s.id, (s.parent, s.txn))).collect();
    let mut spans: Vec<SpanRecord> = closed.into_values().collect();
    for s in &mut spans {
        let mut cur = s.id;
        while s.txn == TxnId(0) {
            match parents.get(&cur) {
                Some(&(parent, txn)) => {
                    s.txn = txn;
                    if parent == 0 || s.txn != TxnId(0) {
                        break;
                    }
                    cur = parent;
                }
                None => break,
            }
        }
    }

    report.commits = critical_paths(&spans, &report.sched_waits);
    report.spans = spans;
    report
}

/// One interval competing for wall time under a root.
struct Slice {
    start: u64,
    end: u64,
    depth: usize,
    /// Open order, for deterministic deepest-tie breaking.
    order: u64,
    tag: &'static str,
}

fn critical_paths(spans: &[SpanRecord], sched_waits: &[(u64, u64, u64)]) -> Vec<TxnBreakdown> {
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let index: BTreeMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != 0 && index.contains_key(&s.parent) {
            children.entry(s.parent).or_default().push(i);
        }
    }
    let mut waits_by_span: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for &(span, start, end) in sched_waits {
        waits_by_span.entry(span).or_default().push((start, end));
    }

    let mut out = Vec::new();
    for root in spans {
        let is_root = root.kind == SpanKind::Commit
            && (root.parent == 0 || !index.contains_key(&root.parent));
        if !is_root || !root.closed || root.end_us <= root.start_us {
            continue;
        }
        // Collect descendant slices, clipped to the parent chain.
        let mut slices: Vec<Slice> = Vec::new();
        let mut stack = vec![(root.id, 0usize, root.start_us, root.end_us)];
        while let Some((id, depth, lo, hi)) = stack.pop() {
            for &(w_lo, w_hi) in waits_by_span.get(&id).into_iter().flatten() {
                let (s, e) = (w_lo.max(lo), w_hi.min(hi));
                if s < e {
                    slices.push(Slice {
                        start: s,
                        end: e,
                        depth: depth + 1,
                        order: u64::MAX, // waits shadow same-depth spans
                        tag: "sched-wait",
                    });
                }
            }
            for &ci in children.get(&id).into_iter().flatten() {
                let c = &spans[ci];
                let (s, e) = (c.start_us.max(lo), c.end_us.min(hi));
                if s >= e {
                    continue;
                }
                slices.push(Slice {
                    start: s,
                    end: e,
                    depth: depth + 1,
                    order: c.id,
                    tag: c.kind.tag(),
                });
                stack.push((c.id, depth + 1, s, e));
            }
        }
        // Sweep the root interval; each elementary segment goes to the
        // deepest active slice, or to the root itself when uncovered.
        let mut bounds: Vec<u64> = vec![root.start_us, root.end_us];
        bounds.extend(slices.iter().flat_map(|s| [s.start, s.end]));
        bounds.sort_unstable();
        bounds.dedup();
        let mut buckets: BTreeMap<&'static str, u64> = BTreeMap::new();
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if lo < root.start_us || hi > root.end_us {
                continue;
            }
            let winner = slices
                .iter()
                .filter(|s| s.start <= lo && s.end >= hi)
                .max_by_key(|s| (s.depth, s.order))
                .map_or(root.kind.tag(), |s| s.tag);
            *buckets.entry(winner).or_insert(0) += hi - lo;
        }
        out.push(TxnBreakdown {
            txn: root.txn,
            root: root.id,
            total_us: root.end_us - root.start_us,
            buckets,
        });
    }
    out.sort_by_key(|b| (b.txn.0, b.root));
    out
}

// ---- Chrome trace-event export ----------------------------------------------

/// Render the report as Chrome trace-event JSON (`chrome://tracing` /
/// Perfetto): complete `"X"` events, one track per transaction.
pub fn chrome_trace_json(report: &TraceReport) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for s in &report.spans {
        push(
            format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"fgl\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"span\":{},\"parent\":{},\"closed\":{}}}}}",
                s.kind.tag(),
                s.start_us,
                s.duration_us(),
                s.txn.0,
                s.id,
                s.parent,
                s.closed
            ),
            &mut first,
        );
    }
    let span_txn: BTreeMap<u64, u64> = report.spans.iter().map(|s| (s.id, s.txn.0)).collect();
    for &(span, start, end) in &report.sched_waits {
        push(
            format!(
                "{{\"ph\":\"X\",\"name\":\"sched-wait\",\"cat\":\"fgl\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"span\":{}}}}}",
                start,
                end - start,
                span_txn.get(&span).copied().unwrap_or(0),
                span
            ),
            &mut first,
        );
    }
    out.push_str("]}");
    out
}

/// Directory from `FGL_TRACE_OUT`, if set.
pub fn trace_out_dir() -> Option<PathBuf> {
    std::env::var_os("FGL_TRACE_OUT").map(PathBuf::from)
}

/// Write the Chrome trace to `$FGL_TRACE_OUT/<label>.trace.json`.
/// Returns the path, or `None` when `FGL_TRACE_OUT` is unset or the
/// write fails (tracing must never take a run down).
pub fn write_chrome_trace(report: &TraceReport, label: &str) -> Option<PathBuf> {
    let dir = trace_out_dir()?;
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{label}.trace.json"));
    std::fs::write(&path, chrome_trace_json(report)).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(seq: u64, at_us: u64, event: Event) -> Stamped {
        Stamped { seq, at_us, event }
    }

    fn open(seq: u64, at: u64, id: u64, parent: u64, txn: u64, kind: SpanKind) -> Stamped {
        st(
            seq,
            at,
            Event::SpanOpen {
                id,
                parent,
                txn: TxnId(txn),
                kind,
            },
        )
    }

    fn close(seq: u64, at: u64, id: u64) -> Stamped {
        st(seq, at, Event::SpanClose { id })
    }

    #[test]
    fn nested_spans_attribute_exclusively() {
        // commit [0,100]; lock-wait [10,60]; net-hop [20,40] inside it.
        let events = [
            open(0, 0, 1, 0, 7, SpanKind::Commit),
            open(1, 10, 2, 1, 7, SpanKind::LockWait),
            open(2, 20, 3, 2, 0, SpanKind::NetHop),
            close(3, 40, 3),
            close(4, 60, 2),
            close(5, 100, 1),
        ];
        let r = assemble(&events);
        assert_eq!(r.spans.len(), 3);
        assert_eq!(r.orphan_opens, 0);
        assert_eq!(r.orphan_closes, 0);
        // NetHop's txn resolves through the chain.
        assert!(r.spans.iter().all(|s| s.txn == TxnId(7)), "{:?}", r.spans);
        assert_eq!(r.commits.len(), 1);
        let c = &r.commits[0];
        assert_eq!(c.total_us, 100);
        assert_eq!(c.buckets["net-hop"], 20);
        assert_eq!(c.buckets["lock-wait"], 30, "{:?}", c.buckets);
        assert_eq!(c.buckets["commit"], 50);
        assert_eq!(c.buckets.values().sum::<u64>(), c.total_us);
    }

    #[test]
    fn sched_wait_nests_under_its_span() {
        let events = [
            open(0, 0, 1, 0, 3, SpanKind::Commit),
            open(1, 10, 2, 1, 3, SpanKind::WalForce),
            // Task picked up at t=50 after 20us runnable: wait [30,50].
            st(
                2,
                50,
                Event::SchedWait {
                    span: 2,
                    wait_us: 20,
                },
            ),
            close(3, 60, 2),
            close(4, 80, 1),
        ];
        let r = assemble(&events);
        let c = &r.commits[0];
        assert_eq!(c.buckets["sched-wait"], 20);
        assert_eq!(c.buckets["wal-force"], 30);
        assert_eq!(c.buckets["commit"], 30);
        assert_eq!(c.buckets.values().sum::<u64>(), 80);
    }

    #[test]
    fn orphans_are_counted_not_fatal() {
        let events = [
            open(0, 0, 1, 0, 1, SpanKind::Commit),
            open(1, 5, 2, 1, 1, SpanKind::LockWait),
            // close for 2 lost; close for unknown id 99 seen.
            close(2, 10, 99),
            st(3, 30, Event::DeadlockVictim { txn: TxnId(1) }),
        ];
        let r = assemble(&events);
        assert_eq!(r.orphan_opens, 2);
        assert_eq!(r.orphan_closes, 1);
        assert_eq!(r.spans.len(), 2);
        assert!(r.spans.iter().all(|s| !s.closed));
        assert!(r.commits.is_empty(), "unclosed roots get no critical path");
        // Orphans extend to the horizon.
        assert!(r.spans.iter().all(|s| s.end_us == 30));
    }

    #[test]
    fn chrome_export_contains_every_span() {
        let events = [
            open(0, 0, 1, 0, 9, SpanKind::Commit),
            open(1, 2, 2, 1, 9, SpanKind::PageFetch),
            close(2, 5, 2),
            close(3, 9, 1),
        ];
        let json = chrome_trace_json(&assemble(&events));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"commit\""));
        assert!(json.contains("\"name\":\"page-fetch\""));
        assert!(json.contains("\"tid\":9"));
    }

    #[test]
    fn span_guard_emits_and_restores_tag() {
        set_enabled(true);
        let before = fgl_sched::trace_tag();
        let (sink, _guard) = crate::CaptureSink::install();
        {
            let outer = span(SpanKind::Commit, TxnId(41)).expect("enabled");
            let outer_id = outer.id();
            assert_eq!(fgl_sched::trace_tag(), outer_id);
            {
                let inner = span(SpanKind::LockWait, TxnId(41)).expect("enabled");
                assert_eq!(fgl_sched::trace_tag(), inner.id());
            }
            assert_eq!(fgl_sched::trace_tag(), outer_id);
        }
        assert_eq!(fgl_sched::trace_tag(), before);
        set_enabled(false);
        assert!(span(SpanKind::Commit, TxnId(41)).is_none());
        let mine: Vec<_> = sink
            .drain()
            .into_iter()
            .filter(|s| {
                matches!(s.event,
                    Event::SpanOpen { txn, .. } if txn == TxnId(41))
                    || matches!(s.event, Event::SpanClose { .. })
            })
            .collect();
        assert!(mine.len() >= 4, "two opens + two closes, got {mine:?}");
    }
}
