//! Pluggable event sinks.
//!
//! Sinks observe every emitted event. Two ship with the crate: the
//! stderr sink (auto-installed when `FGL_TRACE` is set — the successor of
//! the old `fgl_trace!` macro) and an in-memory capture sink for tests
//! asserting exact event sequences.

use crate::ring::Stamped;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// An observer of emitted events. Implementations must be cheap: they run
/// inline on protocol paths.
pub trait EventSink: Send + Sync {
    fn record(&self, stamped: &Stamped);
}

type SinkList = RwLock<Vec<(u64, Arc<dyn EventSink>)>>;

fn sinks() -> &'static SinkList {
    static SINKS: OnceLock<SinkList> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

static SINK_IDS: AtomicU64 = AtomicU64::new(0);

/// Uninstalls its sink on drop, so tests can scope capture windows.
pub struct SinkGuard {
    id: u64,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        sinks().write().unwrap().retain(|(id, _)| *id != self.id);
    }
}

/// Install a sink; it observes every event until the guard drops.
pub fn install_sink(sink: Arc<dyn EventSink>) -> SinkGuard {
    let id = SINK_IDS.fetch_add(1, Ordering::Relaxed);
    sinks().write().unwrap().push((id, sink));
    SinkGuard { id }
}

pub(crate) fn broadcast(stamped: &Stamped) {
    for (_, sink) in sinks().read().unwrap().iter() {
        sink.record(stamped);
    }
}

/// Install the stderr sink once if `FGL_TRACE` is set (backwards
/// compatibility with the old macro's gate).
pub(crate) fn ensure_default_sinks() {
    static ONCE: OnceLock<Option<SinkGuard>> = OnceLock::new();
    ONCE.get_or_init(|| crate::trace_enabled().then(|| install_sink(Arc::new(StderrSink))));
}

/// Serializes stderr output from concurrent threads: `eprintln!` locks
/// stderr per call, so a multi-line dump interleaves with other threads'
/// lines unless the whole dump is written under one lock.
fn stderr_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Write a (possibly multi-line) chunk to stderr as one atomic unit with
/// respect to every other writer going through this function.
pub(crate) fn write_stderr_chunk(chunk: &str) {
    use std::io::Write;
    let _guard = stderr_lock().lock().unwrap();
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(chunk.as_bytes());
    let _ = err.flush();
}

/// Prints one line per event, in the old `[fgl] ...` format.
pub struct StderrSink;

impl EventSink for StderrSink {
    fn record(&self, stamped: &Stamped) {
        write_stderr_chunk(&format!("[fgl] {}\n", stamped.event));
    }
}

/// Accumulates events in memory; tests drain and assert on them.
#[derive(Default)]
pub struct CaptureSink {
    events: Mutex<Vec<Stamped>>,
}

impl CaptureSink {
    /// Create a capture sink and install it; returns the sink handle and
    /// the guard scoping its installation.
    pub fn install() -> (Arc<CaptureSink>, SinkGuard) {
        let sink = Arc::new(CaptureSink::default());
        let guard = install_sink(sink.clone());
        (sink, guard)
    }

    /// Copy of everything captured so far.
    pub fn events(&self) -> Vec<Stamped> {
        self.events.lock().unwrap().clone()
    }

    /// Take and clear the captured events.
    pub fn drain(&self) -> Vec<Stamped> {
        std::mem::take(&mut self.events.lock().unwrap())
    }
}

impl EventSink for CaptureSink {
    fn record(&self, stamped: &Stamped) {
        self.events.lock().unwrap().push(*stamped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use fgl_common::TxnId;

    #[test]
    fn capture_sink_sees_events_only_while_installed() {
        let (sink, guard) = CaptureSink::install();
        crate::emit(Event::DeadlockVictim { txn: TxnId(901) });
        drop(guard);
        crate::emit(Event::DeadlockVictim { txn: TxnId(902) });
        let got = sink.drain();
        assert!(got
            .iter()
            .any(|s| s.event == Event::DeadlockVictim { txn: TxnId(901) }));
        assert!(!got
            .iter()
            .any(|s| s.event == Event::DeadlockVictim { txn: TxnId(902) }));
    }
}
