//! Process-level resource readings from `/proc/self/status`.
//!
//! The scaling experiments (E13, E16) report whole-process figures —
//! peak OS-thread count, resident set size — alongside the protocol
//! metrics. Everything here is best-effort: on a platform without
//! procfs the readers return 0 and the experiments simply print zeros
//! rather than failing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One field of `/proc/self/status`, parsed as its first numeric column.
fn status_field(name: &str) -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with(name))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Current resident set size of this process in bytes (`VmRSS`), or 0 if
/// `/proc/self/status` is unreadable (non-Linux).
pub fn current_rss_bytes() -> u64 {
    status_field("VmRSS:") * 1024
}

/// Current OS-thread count of this process (`Threads:`), or 0 if
/// unreadable.
pub fn current_threads() -> u64 {
    status_field("Threads:")
}

/// Samples the process RSS on a background thread while a measured
/// region runs, retaining the peak.
///
/// `VmHWM` would give a process-lifetime high-water mark, but a sweep
/// runs many cells in one process and needs a *per-cell* peak; sampling
/// with an explicit start/stop window is the portable way to get one.
/// The sampler thread itself costs a few pages — identical for every
/// cell, so per-cell deltas are unaffected.
pub struct RssSampler {
    stop: Arc<AtomicBool>,
    peak: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RssSampler {
    /// Start sampling every `interval` until [`stop`](RssSampler::stop).
    pub fn start(interval: Duration) -> RssSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let peak = Arc::new(AtomicU64::new(current_rss_bytes()));
        let (stop2, peak2) = (Arc::clone(&stop), Arc::clone(&peak));
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                peak2.fetch_max(current_rss_bytes(), Ordering::Relaxed);
                std::thread::sleep(interval);
            }
            peak2.fetch_max(current_rss_bytes(), Ordering::Relaxed);
        });
        RssSampler {
            stop,
            peak: Arc::clone(&peak),
            handle: Some(handle),
        }
    }

    /// Stop the sampler and return the peak RSS in bytes observed over
    /// the sampling window (including one final sample at stop time).
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.peak.load(Ordering::Relaxed)
    }
}

impl Drop for RssSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_and_threads_read_nonzero_on_linux() {
        assert!(current_rss_bytes() > 0);
        assert!(current_threads() > 0);
    }

    #[test]
    fn sampler_reports_at_least_the_starting_rss() {
        let before = current_rss_bytes();
        let sampler = RssSampler::start(Duration::from_millis(1));
        // Touch some memory so the window has something to observe.
        let ballast = vec![1u8; 1 << 20];
        std::hint::black_box(&ballast);
        std::thread::sleep(Duration::from_millis(5));
        let peak = sampler.stop();
        assert!(peak >= before);
    }
}
