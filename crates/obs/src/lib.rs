//! Unified observability for the `fgl` system: typed protocol events, a
//! per-thread ring-buffer flight recorder, log2-bucket latency histograms
//! and a metrics registry with a snapshot/delta API.
//!
//! The crate is deliberately free of third-party dependencies (it sits
//! right above `fgl-common` so every other layer can use it) and has
//! three surfaces:
//!
//! * **Events** ([`Event`], [`emit`]) — the protocol's load-bearing
//!   moments (lock request/grant/queue/de-escalation, callbacks, page
//!   ships and merges with PSNs, log forces, checkpoints, deadlock
//!   victims, recovery phase transitions) as a typed enum. Every emitted
//!   event lands in the flight recorder; installed [`sink::EventSink`]s
//!   (stderr when `FGL_TRACE=1`, an in-memory capture sink for tests)
//!   see it too.
//! * **Flight recorder** ([`ring`]) — a bounded per-thread ring of the
//!   most recent events, globally sequence-stamped so a merged dump is
//!   totally ordered. [`dump`] collects it on demand; the client runtime
//!   triggers an automatic dump on deadlock aborts and lock timeouts.
//! * **Metrics** ([`Metrics`], [`Histogram`], [`Snapshot`]) — atomic
//!   log2-bucket latency histograms (lock-wait, commit, callback
//!   round-trip, log-force, page-fetch, merge) plus named counters,
//!   snapshotted into a [`Snapshot`] that supports `delta_since`, JSON
//!   export and aligned-table rendering.

pub mod event;
pub mod hist;
pub mod procstat;
pub mod registry;
pub mod ring;
pub mod sink;
pub mod trace;

pub use event::{CallbackClass, Event, LogOwner, RecoveryPhase, SpanKind};
pub use hist::{HistSnapshot, Histogram};
pub use procstat::{current_rss_bytes, current_threads, RssSampler};
pub use registry::{Clock, HistKind, ManualClock, Metrics, Snapshot};
pub use ring::{dump, last_dump, Stamped};
pub use sink::{CaptureSink, EventSink, SinkGuard, StderrSink};
pub use trace::{assemble, span, SpanGuard, SpanRecord, TraceReport};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Tracing gate: `FGL_TRACE=1` (any value) enables the stderr sink,
/// preserving the behaviour of the old `fgl_trace!` macro. Checked once.
pub fn trace_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("FGL_TRACE").is_some())
}

static SEQ: AtomicU64 = AtomicU64::new(0);

/// The next sequence number [`emit`] will hand out. Capture one before a
/// run and keep only `dump()` entries with `seq >= watermark` to scope an
/// analysis to that run.
pub fn seq_watermark() -> u64 {
    SEQ.load(Ordering::Relaxed)
}

/// Microseconds since the first observability call in this process. Used
/// only to stamp flight-recorder entries; latency *measurements* go
/// through the [`Metrics`] clock so tests can drive them manually.
pub(crate) fn process_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Record one protocol event: stamp it, append it to the calling thread's
/// flight-recorder ring, and fan it out to the installed sinks (the
/// stderr sink auto-installs on first use when `FGL_TRACE` is set).
pub fn emit(event: Event) {
    sink::ensure_default_sinks();
    let stamped = Stamped {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        at_us: process_us(),
        event,
    };
    ring::record(stamped);
    sink::broadcast(&stamped);
}

/// Dump the flight recorder (merged across threads, sequence order) in
/// response to an anomaly — deadlock abort, lock timeout. The dump is
/// retained for [`last_dump`] and printed to stderr when tracing is on.
pub fn dump_on_anomaly(reason: &str) -> Vec<Stamped> {
    let events = ring::dump();
    if trace_enabled() {
        // Build the whole dump in one buffer and write it under one lock:
        // concurrent anomalies (two victims of one deadlock) would
        // otherwise interleave line-by-line into an unreadable braid.
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "[fgl] flight recorder dump ({reason}): {} events",
            events.len()
        );
        for st in &events {
            let _ = writeln!(
                out,
                "[fgl]   #{:<6} +{:>8}us {}",
                st.seq, st.at_us, st.event
            );
        }
        sink::write_stderr_chunk(&out);
    }
    ring::store_last_dump(reason, &events);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::{ClientId, PageId, TxnId};

    #[test]
    fn emit_lands_in_flight_recorder() {
        let ev = Event::LockRequest {
            client: ClientId(7),
            txn: TxnId(77),
            page: PageId(777),
            exclusive: true,
        };
        emit(ev);
        let dumped = dump();
        assert!(dumped.iter().any(|s| s.event == ev));
    }

    #[test]
    fn anomaly_dump_is_retained() {
        emit(Event::DeadlockVictim { txn: TxnId(42) });
        let d = dump_on_anomaly("test");
        assert!(!d.is_empty());
        let (reason, last) = last_dump().expect("dump stored");
        assert_eq!(reason, "test");
        assert_eq!(last.len(), d.len());
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        emit(Event::Checkpoint {
            owner: LogOwner::Server,
            lsn: fgl_common::Lsn(1),
        });
        emit(Event::Checkpoint {
            owner: LogOwner::Server,
            lsn: fgl_common::Lsn(2),
        });
        let d = dump();
        for w in d.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}
