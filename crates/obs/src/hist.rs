//! Atomic log2-bucket latency histograms.
//!
//! Values (microseconds by convention) are counted into power-of-two
//! buckets: bucket 0 holds the value `0`, bucket `i ≥ 1` holds
//! `[2^(i-1), 2^i - 1]`. Recording is one relaxed `fetch_add` plus a
//! `fetch_max`, so it is safe and cheap from any number of threads.
//! Quantiles are estimated by rank walk with linear interpolation inside
//! the bucket, clamped to the observed maximum — deterministic for a
//! given multiset of recorded values.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets (bucket 63 absorbs everything ≥ 2^62).
pub const HIST_BUCKETS: usize = 64;

/// Bucket index for a value.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive `[low, high]` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        i if i >= HIST_BUCKETS - 1 => (1u64 << (HIST_BUCKETS - 2), u64::MAX),
        i => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A concurrent log2-bucket histogram.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable histogram snapshot with quantile estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Estimated value at quantile `p` in `[0, 100]`: walk buckets to the
    /// rank, interpolate linearly inside the bucket, clamp to the
    /// observed max.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let (lo, hi) = bucket_bounds(i);
                let hi = hi.min(self.max);
                let within = (rank - cum) as f64 / n as f64;
                let est = lo as f64 + within * (hi.saturating_sub(lo)) as f64;
                return (est as u64).min(self.max);
            }
            cum += n;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(50.0)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(95.0)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(99.0)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference for an interval measurement. The maximum is
    /// carried over from `self` (a max cannot be un-observed; for
    /// interval quantiles it is only used as a clamp).
    pub fn delta_since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut out = HistSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            ..Default::default()
        };
        for i in 0..HIST_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(11), (1024, 2047));
    }

    #[test]
    fn quantiles_bound_and_order() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 100, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.max, 10_000);
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.max);
        assert_eq!(s.quantile(100.0), 10_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Mix of buckets, deterministic per thread.
                        h.record((t * PER_THREAD + i) % 4096);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, THREADS * PER_THREAD);
        assert_eq!(s.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
        // The threads collectively record v % 4096 for v in 0..80000, so
        // the sum and max are exact regardless of interleaving.
        let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|v| v % 4096).sum();
        assert_eq!(s.sum, expected_sum);
        assert_eq!(s.max, 4095);
    }

    #[test]
    fn single_value_quantiles_hit_it() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(500);
        }
        let s = h.snapshot();
        // All mass in one bucket clamped by max = exact value at the top.
        assert!(s.p50() >= 256 && s.p50() <= 500, "p50={}", s.p50());
        assert_eq!(s.quantile(100.0), 500);
    }
}
