//! The flight recorder: a bounded ring of recent events per thread.
//!
//! Each thread appends only to its own ring, so the hot path never
//! contends with another recorder (the per-ring mutex is touched by a
//! second thread only during a dump, which is rare by construction).
//! Events carry a global sequence number, so a dump merged across rings
//! is totally ordered even though each ring is thread-local.

use crate::event::Event;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default events a single thread's ring retains before overwriting the
/// oldest (see [`set_capacity`]).
pub const RING_CAPACITY: usize = 256;

static CAPACITY: AtomicUsize = AtomicUsize::new(RING_CAPACITY);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Set the per-thread ring capacity (`SystemConfig::obs_ring_entries`).
/// Applies to future appends on every ring; shrinking trims each ring
/// lazily on its next append. Process-wide — concurrent `System`s share
/// it, last writer wins.
pub fn set_capacity(entries: usize) {
    CAPACITY.store(entries.max(1), Ordering::Relaxed);
}

/// Current per-thread ring capacity.
pub fn capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Total events evicted from full rings since process start. A non-zero
/// delta across a run means `dump()` is a truncated view — raise
/// `obs_ring_entries` if the analysis needs the full window.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// One stamped flight-recorder entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stamped {
    /// Global emission sequence number (total order across threads).
    pub seq: u64,
    /// Microseconds since the process's first observability call.
    pub at_us: u64,
    pub event: Event,
}

struct Ring {
    slots: Mutex<VecDeque<Stamped>>,
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Ring> = {
        let ring = Arc::new(Ring {
            slots: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
        });
        registry().lock().unwrap().push(ring.clone());
        ring
    };
}

/// Append to the calling thread's ring, evicting the oldest entry at
/// capacity.
pub(crate) fn record(stamped: Stamped) {
    let cap = capacity();
    LOCAL.with(|ring| {
        let mut slots = ring.slots.lock().unwrap();
        while slots.len() >= cap {
            slots.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        slots.push_back(stamped);
    });
}

/// Merge every thread's ring into one sequence-ordered trace of the most
/// recent events.
pub fn dump() -> Vec<Stamped> {
    let rings: Vec<Arc<Ring>> = registry().lock().unwrap().clone();
    let mut all: Vec<Stamped> = Vec::new();
    for ring in rings {
        all.extend(ring.slots.lock().unwrap().iter().copied());
    }
    all.sort_by_key(|s| s.seq);
    all
}

type DumpStore = Mutex<Option<(String, Vec<Stamped>)>>;

fn last_dump_store() -> &'static DumpStore {
    static LAST: OnceLock<DumpStore> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

pub(crate) fn store_last_dump(reason: &str, events: &[Stamped]) {
    *last_dump_store().lock().unwrap() = Some((reason.to_string(), events.to_vec()));
}

/// The most recent anomaly dump (deadlock abort / lock timeout), if any:
/// `(reason, events)`. Retained for tests and post-mortem inspection.
pub fn last_dump() -> Option<(String, Vec<Stamped>)> {
    last_dump_store().lock().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::TxnId;

    #[test]
    fn ring_is_bounded_and_ordered() {
        for i in 0..(RING_CAPACITY as u64 + 50) {
            crate::emit(Event::DeadlockVictim { txn: TxnId(i) });
        }
        let d = dump();
        // This thread's ring holds at most RING_CAPACITY entries; other
        // test threads may contribute more, but order must hold globally.
        for w in d.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        let mine: Vec<&Stamped> = d
            .iter()
            .filter(|s| matches!(s.event, Event::DeadlockVictim { .. }))
            .collect();
        assert!(mine.len() <= RING_CAPACITY + 50);
        // The newest event must have survived the eviction.
        assert!(mine.iter().any(|s| s.event
            == Event::DeadlockVictim {
                txn: TxnId(RING_CAPACITY as u64 + 49)
            }));
    }
}
