//! The typed event vocabulary: every load-bearing moment of the paper's
//! protocol, structured so tests and tools can consume it
//! programmatically (the old `fgl_trace!` emitted free-form strings).

use fgl_common::{ClientId, Lsn, PageId, Psn, TxnId};
use std::fmt;

/// Which log (and recovery path) an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogOwner {
    /// The server's global log (replacement records, checkpoints, §3.1).
    Server,
    /// A client's private log (client-based logging, §2).
    Client(ClientId),
}

/// The shape of a lock callback (§3.2), mirrored from
/// `fgl_locks::glm::CallbackKind` without depending on the locks crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallbackClass {
    ReleaseObject,
    DowngradeObject,
    ReleasePage,
    DowngradePage,
    DeEscalatePage,
}

/// A restart-recovery phase transition (§3.3 client, §3.4/§3.5 server).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// ARIES analysis over the private log (client, §3.3).
    Analysis,
    /// DCT-filtered redo pass (client, §3.3).
    Redo,
    /// Loser rollback (client, §3.3).
    Undo,
    /// Ship + force recovered pages, checkpoint (client).
    Harden,
    /// Gather client states, rebuild the GLM (server, §3.4 a+b).
    Gather,
    /// DCT reconstruction from checkpoint + replacement records (§3.4 c).
    DctRebuild,
    /// Coordinated per-(page, client) log replay (§3.4 d).
    Replay,
    /// Recovery finished.
    Done,
}

/// What a trace span measures. Each kind is one bucket of the
/// critical-path breakdown the trace assembler computes (see
/// `crate::trace`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Root span: one commit attempt, opened in the client runtime.
    Commit,
    /// Waiting for a global lock grant (queued at the GLM).
    LockWait,
    /// Server-side callback round trip to one client.
    CallbackRtt,
    /// Forcing the WAL to its durable horizon (includes group-commit
    /// piggyback waits).
    WalForce,
    /// One counted-fabric message's simulated network latency.
    NetHop,
    /// Fetching a page copy from the server.
    PageFetch,
    /// Shipping commit-log records to the server.
    CommitLogShip,
}

impl SpanKind {
    /// Stable kebab-case tag (JSON, Chrome trace names).
    pub fn tag(&self) -> &'static str {
        match self {
            SpanKind::Commit => "commit",
            SpanKind::LockWait => "lock-wait",
            SpanKind::CallbackRtt => "callback-rtt",
            SpanKind::WalForce => "wal-force",
            SpanKind::NetHop => "net-hop",
            SpanKind::PageFetch => "page-fetch",
            SpanKind::CommitLogShip => "commit-log-ship",
        }
    }

    /// Every kind, in display order.
    pub const ALL: [SpanKind; 7] = [
        SpanKind::Commit,
        SpanKind::LockWait,
        SpanKind::CallbackRtt,
        SpanKind::WalForce,
        SpanKind::NetHop,
        SpanKind::PageFetch,
        SpanKind::CommitLogShip,
    ];
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One structured protocol event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Client → server lock request arrived at the GLM (§3.2).
    LockRequest {
        client: ClientId,
        txn: TxnId,
        page: PageId,
        exclusive: bool,
    },
    /// The GLM granted a lock. `queued` distinguishes asynchronous grants
    /// (the requester parked and was woken) from synchronous ones.
    LockGrant {
        client: ClientId,
        txn: TxnId,
        page: PageId,
        queued: bool,
    },
    /// The GLM queued the request behind a conflict.
    LockQueue {
        client: ClientId,
        txn: TxnId,
        page: PageId,
    },
    /// A page lock was replaced by object locks (adaptive scheme, §3.2).
    DeEscalate { client: ClientId, page: PageId },
    /// Server → client callback sent (§3.2).
    CallbackIssued {
        to: ClientId,
        page: PageId,
        class: CallbackClass,
    },
    /// A per-destination batch of callbacks left the server as one
    /// message (`count` kinds coalesced).
    CallbackBatch { to: ClientId, count: u32 },
    /// The client deferred the callback (a local txn holds the lock).
    CallbackDeferred { from: ClientId, page: PageId },
    /// The callback completed (immediately or after a deferral).
    CallbackCompleted { from: ClientId, page: PageId },
    /// A page copy crossed the wire, with the PSN it carried.
    PageShip {
        client: ClientId,
        page: PageId,
        psn: Psn,
        to_server: bool,
    },
    /// The server merged an incoming copy into its current one (§3.1).
    PageMerge {
        from: ClientId,
        page: PageId,
        psn: Psn,
    },
    /// A log force completed; `lsn` is the new durable horizon.
    LogForce { owner: LogOwner, lsn: Lsn },
    /// A commit reached durability. `forced` is true when this committer
    /// ran the force itself, false when it piggybacked on a cohort
    /// member's in-flight force (group commit).
    GroupCommit {
        client: ClientId,
        txn: TxnId,
        forced: bool,
    },
    /// A fuzzy checkpoint was taken (§3.2).
    Checkpoint { owner: LogOwner, lsn: Lsn },
    /// The waits-for graph chose this transaction as a deadlock victim.
    DeadlockVictim { txn: TxnId },
    /// A lock wait hit the timeout backstop.
    LockTimeout {
        client: ClientId,
        txn: TxnId,
        page: PageId,
    },
    /// A transaction aborted (rollback complete).
    TxnAbort { client: ClientId, txn: TxnId },
    /// A restart-recovery phase began.
    RecoveryPhase {
        owner: LogOwner,
        phase: RecoveryPhase,
    },
    /// A trace span opened. `parent` is the span id active in the opening
    /// context (0 = root). `txn` is the transaction the span belongs to
    /// (`TxnId(0)` when unknown at open time — the assembler resolves it
    /// through the parent chain).
    SpanOpen {
        id: u64,
        parent: u64,
        txn: TxnId,
        kind: SpanKind,
    },
    /// The span closed; its duration is `close.at_us - open.at_us`.
    SpanClose { id: u64 },
    /// The task carrying span `span` sat runnable in the scheduler queue
    /// for `wait_us` before a worker picked it up (emitted at pickup).
    SchedWait { span: u64, wait_us: u64 },
}

impl Event {
    /// Stable kebab-case tag for the event kind (JSON, filtering).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::LockRequest { .. } => "lock-request",
            Event::LockGrant { .. } => "lock-grant",
            Event::LockQueue { .. } => "lock-queue",
            Event::DeEscalate { .. } => "de-escalate",
            Event::CallbackIssued { .. } => "callback-issued",
            Event::CallbackBatch { .. } => "callback-batch",
            Event::CallbackDeferred { .. } => "callback-deferred",
            Event::CallbackCompleted { .. } => "callback-completed",
            Event::PageShip { .. } => "page-ship",
            Event::PageMerge { .. } => "page-merge",
            Event::LogForce { .. } => "log-force",
            Event::GroupCommit { .. } => "group-commit",
            Event::Checkpoint { .. } => "checkpoint",
            Event::DeadlockVictim { .. } => "deadlock-victim",
            Event::LockTimeout { .. } => "lock-timeout",
            Event::TxnAbort { .. } => "txn-abort",
            Event::RecoveryPhase { .. } => "recovery-phase",
            Event::SpanOpen { .. } => "span-open",
            Event::SpanClose { .. } => "span-close",
            Event::SchedWait { .. } => "sched-wait",
        }
    }
}

impl fmt::Display for LogOwner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogOwner::Server => write!(f, "server"),
            LogOwner::Client(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::LockRequest {
                client,
                txn,
                page,
                exclusive,
            } => write!(
                f,
                "lock-request {client} txn={txn} {page} {}",
                if *exclusive { "X" } else { "S" }
            ),
            Event::LockGrant {
                client,
                txn,
                page,
                queued,
            } => write!(
                f,
                "lock-grant {client} txn={txn} {page}{}",
                if *queued { " (async)" } else { "" }
            ),
            Event::LockQueue { client, txn, page } => {
                write!(f, "lock-queue {client} txn={txn} {page}")
            }
            Event::DeEscalate { client, page } => write!(f, "de-escalate {client} {page}"),
            Event::CallbackIssued { to, page, class } => {
                write!(f, "callback-issued to {to} {page} {class:?}")
            }
            Event::CallbackBatch { to, count } => {
                write!(f, "callback-batch to {to} count={count}")
            }
            Event::CallbackDeferred { from, page } => {
                write!(f, "callback-deferred by {from} {page}")
            }
            Event::CallbackCompleted { from, page } => {
                write!(f, "callback-completed by {from} {page}")
            }
            Event::PageShip {
                client,
                page,
                psn,
                to_server,
            } => write!(
                f,
                "page-ship {page} {} {client} psn={psn:?}",
                if *to_server { "from" } else { "to" }
            ),
            Event::PageMerge { from, page, psn } => {
                write!(f, "page-merge {page} from {from} psn={psn:?}")
            }
            Event::LogForce { owner, lsn } => write!(f, "log-force {owner} lsn={lsn:?}"),
            Event::GroupCommit {
                client,
                txn,
                forced,
            } => write!(
                f,
                "group-commit {client} txn={txn} {}",
                if *forced { "forced" } else { "piggybacked" }
            ),
            Event::Checkpoint { owner, lsn } => write!(f, "checkpoint {owner} lsn={lsn:?}"),
            Event::DeadlockVictim { txn } => write!(f, "deadlock-victim txn={txn}"),
            Event::LockTimeout { client, txn, page } => {
                write!(f, "lock-timeout {client} txn={txn} {page}")
            }
            Event::TxnAbort { client, txn } => write!(f, "txn-abort {client} txn={txn}"),
            Event::RecoveryPhase { owner, phase } => {
                write!(f, "recovery-phase {owner} {phase:?}")
            }
            Event::SpanOpen {
                id,
                parent,
                txn,
                kind,
            } => write!(f, "span-open {kind} id={id} parent={parent} txn={txn}"),
            Event::SpanClose { id } => write!(f, "span-close id={id}"),
            Event::SchedWait { span, wait_us } => {
                write!(f, "sched-wait span={span} {wait_us}us")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_nonempty() {
        let evs = [
            Event::LockRequest {
                client: ClientId(1),
                txn: TxnId(2),
                page: PageId(3),
                exclusive: true,
            },
            Event::LockQueue {
                client: ClientId(1),
                txn: TxnId(2),
                page: PageId(3),
            },
            Event::DeEscalate {
                client: ClientId(1),
                page: PageId(3),
            },
            Event::PageMerge {
                from: ClientId(1),
                page: PageId(3),
                psn: Psn(9),
            },
            Event::RecoveryPhase {
                owner: LogOwner::Client(ClientId(1)),
                phase: RecoveryPhase::Redo,
            },
        ];
        for e in evs {
            assert!(!e.kind().is_empty());
            assert!(!format!("{e}").is_empty());
        }
    }
}
