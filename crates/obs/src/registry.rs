//! The metrics registry: named counters plus one latency histogram per
//! [`HistKind`], snapshotted into a [`Snapshot`] that supports interval
//! deltas, JSON export and aligned-table rendering.
//!
//! Durations are measured through a pluggable [`Clock`] so tests can
//! advance time manually and assert exact histogram contents.

use crate::hist::{bucket_bounds, HistSnapshot, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// The latency distributions the system tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistKind {
    /// Client-side wait from lock request to grant (§3.2).
    LockWait,
    /// Full commit path: force private log, ship pages, server ack.
    Commit,
    /// Server-side callback round trip: issued → completed (§3.2).
    CallbackRoundTrip,
    /// A log force (client private log or server log).
    LogForce,
    /// Client page fetch from the server.
    PageFetch,
    /// Server-side merge of an incoming page copy (§3.1).
    Merge,
    /// Group commit: time a committer waits for its commit record to
    /// become durable — bimodal by design (piggybacked ≈ 0, forced ≈
    /// one log-force).
    GroupCommit,
    /// Socket-transport request round trip: frame written → reply frame
    /// routed back (E17). Empty under the in-process sim fabric.
    WireRtt,
}

/// All kinds, in display order.
pub const HIST_KINDS: [HistKind; 8] = [
    HistKind::LockWait,
    HistKind::Commit,
    HistKind::CallbackRoundTrip,
    HistKind::LogForce,
    HistKind::PageFetch,
    HistKind::Merge,
    HistKind::GroupCommit,
    HistKind::WireRtt,
];

impl HistKind {
    /// Stable snake_case name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            HistKind::LockWait => "lock_wait_us",
            HistKind::Commit => "commit_us",
            HistKind::CallbackRoundTrip => "callback_rtt_us",
            HistKind::LogForce => "log_force_us",
            HistKind::PageFetch => "page_fetch_us",
            HistKind::Merge => "merge_us",
            HistKind::GroupCommit => "commit_group_wait_us",
            HistKind::WireRtt => "wire_rtt_us",
        }
    }

    fn index(self) -> usize {
        match self {
            HistKind::LockWait => 0,
            HistKind::Commit => 1,
            HistKind::CallbackRoundTrip => 2,
            HistKind::LogForce => 3,
            HistKind::PageFetch => 4,
            HistKind::Merge => 5,
            HistKind::GroupCommit => 6,
            HistKind::WireRtt => 7,
        }
    }
}

/// Time source for duration measurements. The registry never reads wall
/// time directly, so a [`ManualClock`] makes histogram tests exact.
pub trait Clock: Send + Sync {
    /// Monotonic microseconds since an arbitrary epoch.
    fn now_us(&self) -> u64;
}

/// Default clock: `Instant`-based monotonic microseconds.
pub struct MonoClock {
    epoch: Instant,
}

impl Default for MonoClock {
    fn default() -> Self {
        MonoClock {
            epoch: Instant::now(),
        }
    }
}

impl Clock for MonoClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// Test clock advanced explicitly by the caller.
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn advance_us(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// The registry: one histogram per [`HistKind`], a dynamic set of named
/// counters and named histograms, one clock. Shared via `Arc` between
/// server, clients and the WAL managers.
///
/// The fixed [`HistKind`] histograms cover the always-on hot paths (no
/// allocation, no map lookup); the *named* histograms carry
/// strategy-keyed series such as `recovery_phase_us_<strategy>_<phase>`,
/// where the key set is not known at compile time.
pub struct Metrics {
    hists: [Histogram; HIST_KINDS.len()],
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    named_hists: RwLock<BTreeMap<String, Arc<Histogram>>>,
    clock: Box<dyn Clock>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Registry with the monotonic wall clock.
    pub fn new() -> Metrics {
        Metrics::with_clock(Box::new(MonoClock::default()))
    }

    /// Registry with an explicit clock (tests use [`ManualClock`]).
    pub fn with_clock(clock: Box<dyn Clock>) -> Metrics {
        Metrics {
            hists: Default::default(),
            counters: RwLock::new(BTreeMap::new()),
            named_hists: RwLock::new(BTreeMap::new()),
            clock,
        }
    }

    /// Current clock reading; pair with [`Metrics::observe_since`].
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Record a duration already measured by the caller.
    pub fn observe(&self, kind: HistKind, micros: u64) {
        self.hists[kind.index()].record(micros);
    }

    /// Record the elapsed time since `start_us` (a prior [`Metrics::now_us`]).
    pub fn observe_since(&self, kind: HistKind, start_us: u64) {
        self.observe(kind, self.now_us().saturating_sub(start_us));
    }

    /// Add to a named counter, creating it on first use.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        self.counters
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Record into a named histogram, creating it on first use. For
    /// series whose key set is only known at runtime (e.g. keyed by the
    /// configured logging strategy); hot paths use the fixed
    /// [`HistKind`] histograms instead.
    pub fn observe_named(&self, name: &str, micros: u64) {
        if let Some(h) = self.named_hists.read().unwrap().get(name) {
            h.record(micros);
            return;
        }
        self.named_hists
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .record(micros);
    }

    /// Point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let mut hists = BTreeMap::new();
        for kind in HIST_KINDS {
            hists.insert(kind.name().to_string(), self.hists[kind.index()].snapshot());
        }
        for (k, h) in self.named_hists.read().unwrap().iter() {
            hists.insert(k.clone(), h.snapshot());
        }
        Snapshot { counters, hists }
    }
}

/// An immutable view of the registry at one instant. Subtracting two
/// snapshots ([`Snapshot::delta_since`]) yields the activity in between —
/// the unit every experiment reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Counter-wise and bucket-wise difference `self - earlier`. Counters
    /// present only in `self` pass through; counters that shrank clamp
    /// to zero.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, h)| {
                let d = match earlier.hists.get(k) {
                    Some(e) => h.delta_since(e),
                    None => h.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        Snapshot { counters, hists }
    }

    /// Set (or overwrite) a counter — used when folding the legacy stats
    /// structs into a snapshot.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// One histogram by [`HistKind`], if recorded.
    pub fn hist(&self, kind: HistKind) -> Option<&HistSnapshot> {
        self.hists.get(kind.name())
    }

    /// Serialize to JSON. Schema:
    ///
    /// ```json
    /// {
    ///   "counters": {"name": 123, ...},
    ///   "histograms": {
    ///     "lock_wait_us": {
    ///       "count": 10, "sum": 480, "max": 90, "mean": 48.0,
    ///       "p50": 40, "p95": 88, "p99": 90,
    ///       "buckets": [[1, 3], [2, 7]]
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// `buckets` lists `[bucket_low, count]` pairs for non-empty buckets
    /// only. Hand-rolled because the workspace carries no serde.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.hists {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.1}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json_escape(k),
                h.count,
                h.sum,
                h.max,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
            let mut bfirst = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !bfirst {
                    out.push_str(", ");
                }
                bfirst = false;
                out.push_str(&format!("[{}, {}]", bucket_bounds(i).0, n));
            }
            out.push_str("]}");
        }
        out.push_str(if first { "}\n}" } else { "\n  }\n}" });
        out
    }

    /// Aligned human-readable table: counters first, then one row per
    /// non-empty histogram with count/mean/p50/p95/p99/max.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let kw = self
            .counters
            .keys()
            .map(|k| k.len())
            .chain(self.hists.keys().map(|k| k.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<kw$}  {v:>12}\n"));
        }
        let any_hist = self.hists.values().any(|h| h.count > 0);
        if any_hist {
            out.push_str(&format!(
                "  {:<kw$}  {:>8} {:>10} {:>8} {:>8} {:>8} {:>10}\n",
                "latency", "count", "mean_us", "p50", "p95", "p99", "max_us"
            ));
            for (k, h) in &self.hists {
                if h.count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {:<kw$}  {:>8} {:>10.1} {:>8} {:>8} {:>8} {:>10}\n",
                    k,
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max
                ));
            }
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_drives_observe_since() {
        let clock = Arc::new(ManualClock::default());
        struct Shared(Arc<ManualClock>);
        impl Clock for Shared {
            fn now_us(&self) -> u64 {
                self.0.now_us()
            }
        }
        let m = Metrics::with_clock(Box::new(Shared(clock.clone())));
        let t0 = m.now_us();
        clock.advance_us(750);
        m.observe_since(HistKind::Commit, t0);
        let s = m.snapshot();
        let h = s.hist(HistKind::Commit).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 750);
        assert_eq!(h.max, 750);
    }

    #[test]
    fn counters_accumulate_and_delta() {
        let m = Metrics::new();
        m.add("msgs", 5);
        let before = m.snapshot();
        m.add("msgs", 7);
        m.add("new_counter", 1);
        let after = m.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.counters["msgs"], 7);
        assert_eq!(d.counters["new_counter"], 1);
    }

    #[test]
    fn named_histograms_appear_in_snapshot() {
        let m = Metrics::new();
        m.observe_named("recovery_phase_us_redo_only_redo", 40);
        m.observe_named("recovery_phase_us_redo_only_redo", 60);
        let s = m.snapshot();
        let h = &s.hists["recovery_phase_us_redo_only_redo"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 100);
        // Named histograms participate in deltas like the fixed ones.
        m.observe_named("recovery_phase_us_redo_only_redo", 10);
        let d = m.snapshot().delta_since(&s);
        assert_eq!(d.hists["recovery_phase_us_redo_only_redo"].count, 1);
    }

    #[test]
    fn json_has_required_keys() {
        let m = Metrics::new();
        m.add("commits", 3);
        m.observe(HistKind::LockWait, 12);
        let j = m.snapshot().to_json();
        assert!(j.contains("\"counters\""));
        assert!(j.contains("\"histograms\""));
        assert!(j.contains("\"lock_wait_us\""));
        assert!(j.contains("\"p99\""));
        assert!(j.contains("\"commits\": 3"));
    }

    #[test]
    fn snapshot_delta_round_trip() {
        let m = Metrics::new();
        m.observe(HistKind::Merge, 100);
        let a = m.snapshot();
        m.observe(HistKind::Merge, 200);
        m.observe(HistKind::Merge, 300);
        let b = m.snapshot();
        let d = b.delta_since(&a);
        let h = d.hist(HistKind::Merge).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 500);
        // Delta of identical snapshots is empty.
        let z = b.delta_since(&b);
        assert_eq!(z.hist(HistKind::Merge).unwrap().count, 0);
        assert!(z.counters.values().all(|&v| v == 0));
    }
}
