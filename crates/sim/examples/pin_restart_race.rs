//! Soak driver for the cross-wave reply-ship race (DESIGN §6.12): loop
//! the server-crash scenario and, if a post-restart stale object ever
//! appears again, dump the flight recorder filtered to the stale page.
//! Before the fix this fired within ~150-300 iterations; it is the tool
//! that pinned the root cause, kept as a regression soak
//! (`cargo run --release -p fgl-sim --example pin_restart_race`).

use fgl::SystemConfig;
use fgl_sim::crash::{run_crash_scenario, CrashKind};
use fgl_sim::workload::{WorkloadKind, WorkloadSpec};

fn main() {
    let mut spec = WorkloadSpec::new(WorkloadKind::HotCold);
    spec.pages = 12;
    spec.objects_per_page = 8;
    spec.ops_per_txn = 4;
    spec.write_fraction = 0.5;

    for i in 1..=2000u32 {
        let r = run_crash_scenario(
            SystemConfig::default(),
            3,
            CrashKind::Server,
            spec.clone(),
            10,
            2,
        )
        .unwrap();
        if !r.is_clean() {
            println!(
                "iteration {i}: after-recovery {:?} / final {:?}",
                r.verify_after_recovery.mismatches, r.verify_final.mismatches
            );
            let pages: Vec<String> = r
                .verify_final
                .mismatches
                .iter()
                .chain(r.verify_after_recovery.mismatches.iter())
                .map(|o| format!("{}", o.page))
                .collect();
            let all = fgl_obs::dump();
            let start = all.len().saturating_sub(12000);
            for s in &all[start..] {
                let line = format!("{}", s.event);
                let relevant = pages
                    .iter()
                    .any(|p| line.ends_with(p.as_str()) || line.contains(&format!("{p} ")))
                    || line.contains("recovery-phase")
                    || line.contains("txn-abort")
                    || line.contains("abort");
                if relevant {
                    println!("{:>10} {:>9} {line}", s.seq, s.at_us);
                }
            }
            std::process::exit(1);
        }
        if i % 50 == 0 {
            eprintln!("iter {i} clean");
        }
    }
    eprintln!("no failure in 2000 iterations");
}
