//! Soak driver for the cross-wave reply-ship race (DESIGN §6.12): loop
//! the server-crash scenario and, if a post-restart stale object ever
//! appears again, dump the flight recorder filtered to the stale page.
//! Before the fix this fired within ~150-300 iterations; it is the tool
//! that pinned the root cause, kept as a regression soak
//! (`cargo run --release -p fgl-sim --example pin_restart_race`).
//!
//! Iteration count, base seed and scheduler are configurable so CI can
//! run a short leg and a reproduction can replay an exact failure:
//!
//! ```text
//! pin_restart_race [ITERS] [SEED]
//! FGL_SOAK_ITERS=100 FGL_SOAK_SEED=7 FGL_SOAK_SCHED=event pin_restart_race
//! FGL_SOAK_STRATEGY=redo-only pin_restart_race   # non-default logging
//! ```
//!
//! Positional args win over env vars; each iteration `i` runs with seed
//! `SEED + i - 1`, so a reported failing iteration is replayable alone
//! with `ITERS=1` and that iteration's seed.

use fgl::SystemConfig;
use fgl_sim::crash::{run_crash_scenario_with, CrashKind};
use fgl_sim::harness::SchedulerKind;
use fgl_sim::workload::{WorkloadKind, WorkloadSpec};

fn arg_or_env(pos: usize, env: &str, default: u64) -> u64 {
    std::env::args()
        .nth(pos)
        .or_else(|| std::env::var(env).ok())
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {env}/arg: {v}")))
        .unwrap_or(default)
}

fn main() {
    let iters = arg_or_env(1, "FGL_SOAK_ITERS", 2000);
    let base_seed = arg_or_env(2, "FGL_SOAK_SEED", 2);
    let scheduler: SchedulerKind = std::env::var("FGL_SOAK_SCHED")
        .map(|v| v.parse().expect("FGL_SOAK_SCHED"))
        .unwrap_or_default();
    let strategy: fgl::LoggingStrategyKind = std::env::var("FGL_SOAK_STRATEGY")
        .map(|v| v.parse().expect("FGL_SOAK_STRATEGY"))
        .unwrap_or_default();
    let cfg = SystemConfig::default().with_logging_strategy(strategy);

    let mut spec = WorkloadSpec::new(WorkloadKind::HotCold);
    spec.pages = 12;
    spec.objects_per_page = 8;
    spec.ops_per_txn = 4;
    spec.write_fraction = 0.5;

    eprintln!(
        "soak: {iters} iterations, seeds {base_seed}.., scheduler={}, strategy={}",
        scheduler.name(),
        strategy.name()
    );
    for i in 1..=iters {
        let seed = base_seed + (i - 1);
        let r = run_crash_scenario_with(
            cfg.clone(),
            3,
            CrashKind::Server,
            spec.clone(),
            10,
            seed,
            scheduler,
        )
        .unwrap();
        if !r.is_clean() {
            println!(
                "iteration {i} (seed {seed}): after-recovery {:?} / final {:?}",
                r.verify_after_recovery.mismatches, r.verify_final.mismatches
            );
            let pages: Vec<String> = r
                .verify_final
                .mismatches
                .iter()
                .chain(r.verify_after_recovery.mismatches.iter())
                .map(|o| format!("{}", o.page))
                .collect();
            let all = fgl_obs::dump();
            let start = all.len().saturating_sub(12000);
            for s in &all[start..] {
                let line = format!("{}", s.event);
                let relevant = pages
                    .iter()
                    .any(|p| line.ends_with(p.as_str()) || line.contains(&format!("{p} ")))
                    || line.contains("recovery-phase")
                    || line.contains("txn-abort")
                    || line.contains("abort");
                if relevant {
                    println!("{:>10} {:>9} {line}", s.seq, s.at_us);
                }
            }
            std::process::exit(1);
        }
        if i % 50 == 0 {
            eprintln!("iter {i} clean");
        }
    }
    eprintln!("no failure in {iters} iterations");
}
