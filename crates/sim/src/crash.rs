//! Crash-matrix orchestration (§3.3–§3.5 validation, experiment E8).
//!
//! A scenario runs a workload phase to build up dirty caches, unshipped
//! pages and live private logs, then crashes the chosen parties, runs the
//! paper's recovery procedures, verifies the committed state against the
//! oracle, and finally runs a second workload phase to prove the system
//! is fully operational again.

use crate::harness::{run_workload, HarnessOptions, RunReport, SchedulerKind};
use crate::oracle::{Oracle, VerifyReport};
use crate::setup::{populate, DatabaseLayout};
use crate::workload::WorkloadSpec;
use fgl::{Result, System, SystemConfig};
use std::time::Duration;

/// Which parties crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// One client crashes and recovers (§3.3).
    Client(usize),
    /// The server crashes and restarts (§3.4).
    Server,
    /// Several clients crash simultaneously (§3.3 xN).
    MultiClient(Vec<usize>),
    /// Server plus clients crash together — the complex crash (§3.5).
    Complex(Vec<usize>),
    /// One server instance of a multi-server system restarts (§3.4
    /// against its residue class only) while the others keep serving.
    PartitionRestart(usize),
}

impl CrashKind {
    pub fn name(&self) -> String {
        match self {
            CrashKind::Client(i) => format!("client-{i}"),
            CrashKind::Server => "server".into(),
            CrashKind::MultiClient(v) => format!("clients-x{}", v.len()),
            CrashKind::Complex(v) => format!("complex(server+{})", v.len()),
            CrashKind::PartitionRestart(i) => format!("partition-{i}"),
        }
    }
}

/// Outcome of one crash scenario.
#[derive(Clone, Debug)]
pub struct CrashScenarioReport {
    pub kind_name: String,
    pub phase1: RunReport,
    pub recovery_elapsed: Duration,
    pub verify_after_recovery: VerifyReport,
    pub phase2: RunReport,
    pub verify_final: VerifyReport,
    /// Whole-scenario unified metrics snapshot (both phases + recovery);
    /// carries the `*_recovery_*` phase counters.
    pub metrics: fgl::Snapshot,
}

impl CrashScenarioReport {
    pub fn is_clean(&self) -> bool {
        self.verify_after_recovery.is_clean() && self.verify_final.is_clean()
    }
}

/// Build a fresh system, run `phase` transactions per client, crash per
/// `kind`, recover, verify, run a second phase, verify again.
pub fn run_crash_scenario(
    cfg: SystemConfig,
    n_clients: usize,
    kind: CrashKind,
    spec: WorkloadSpec,
    txns_per_phase: usize,
    seed: u64,
) -> Result<CrashScenarioReport> {
    run_crash_scenario_with(
        cfg,
        n_clients,
        kind,
        spec,
        txns_per_phase,
        seed,
        SchedulerKind::Threads,
    )
}

/// [`run_crash_scenario`] with an explicit driver scheduler for the two
/// workload phases. Recovery itself always runs on OS threads — it is
/// invoked between phases from the orchestrating thread, not from tasks.
#[allow(clippy::too_many_arguments)]
pub fn run_crash_scenario_with(
    cfg: SystemConfig,
    n_clients: usize,
    kind: CrashKind,
    spec: WorkloadSpec,
    txns_per_phase: usize,
    seed: u64,
    scheduler: SchedulerKind,
) -> Result<CrashScenarioReport> {
    let sys = System::build(cfg, n_clients)?;
    let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32)?;
    let oracle = Oracle::new();
    oracle.seed(sys.client(0), &layout)?;

    let mut opts = HarnessOptions::new(spec, txns_per_phase);
    opts.seed = seed;
    opts.scheduler = scheduler;
    let phase1 = run_workload(&sys, &layout, Some(&oracle), &opts)?;

    let recovery_start = std::time::Instant::now();
    match &kind {
        CrashKind::Client(i) => {
            sys.clients[*i].crash();
            sys.clients[*i].recover()?;
        }
        CrashKind::Server => {
            // "The server" is the whole page service: every instance of a
            // multi-server system drops and recovers (each against its own
            // residue class). Identical to the classic scenario at N = 1.
            for s in &sys.servers {
                s.crash();
            }
            for s in &sys.servers {
                s.restart_recovery()?;
            }
        }
        CrashKind::MultiClient(ids) => {
            for i in ids {
                sys.clients[*i].crash();
            }
            recover_in_parallel(&sys, ids)?;
        }
        CrashKind::Complex(ids) => {
            // Clients drop first (their volatile state is gone when the
            // server comes back asking), then the server.
            for i in ids {
                sys.clients[*i].crash();
            }
            for s in &sys.servers {
                s.crash();
            }
            // Server restart runs against the operational clients (§3.5)…
            for s in &sys.servers {
                s.restart_recovery()?;
            }
            // …and the crashed clients then run client recovery — in
            // parallel, since one client's replay may need another's
            // partially recovered state (§3.4 step 3).
            recover_in_parallel(&sys, ids)?;
        }
        CrashKind::PartitionRestart(i) => {
            assert!(
                *i < sys.servers.len(),
                "partition {i} does not exist (instances={})",
                sys.servers.len()
            );
            sys.servers[*i].crash();
            sys.servers[*i].restart_recovery()?;
        }
    }
    let recovery_elapsed = recovery_start.elapsed();

    // Verify through a client that did not crash if one exists.
    let verifier = match &kind {
        CrashKind::Client(i) => sys.client((*i + 1) % n_clients),
        CrashKind::MultiClient(ids) | CrashKind::Complex(ids) => {
            let alive = (0..n_clients).find(|i| !ids.contains(i)).unwrap_or(0);
            sys.client(alive)
        }
        CrashKind::Server | CrashKind::PartitionRestart(_) => sys.client(0),
    };
    let verify_after_recovery = oracle.verify_via_reads(verifier)?;

    opts.seed = seed.wrapping_add(1);
    let phase2 = run_workload(&sys, &layout, Some(&oracle), &opts)?;
    let verify_final = oracle.verify_via_reads(sys.client(0))?;

    let metrics = sys.metrics_snapshot();
    Ok(CrashScenarioReport {
        kind_name: kind.name(),
        phase1,
        recovery_elapsed,
        verify_after_recovery,
        phase2,
        verify_final,
        metrics,
    })
}

/// Recover several crashed clients concurrently (their replays may
/// depend on each other's progress, §3.4/§3.5).
fn recover_in_parallel(sys: &System, ids: &[usize]) -> Result<()> {
    let results: Vec<Result<_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .map(|i| {
                let client = sys.clients[*i].clone();
                scope.spawn(move || client.recover())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in results {
        r?;
    }
    Ok(())
}

/// Convenience: populate + seed an oracle on an existing system.
pub fn prepare(
    sys: &System,
    spec: &WorkloadSpec,
) -> Result<(DatabaseLayout, std::sync::Arc<Oracle>)> {
    let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32)?;
    let oracle = Oracle::new();
    oracle.seed(sys.client(0), &layout)?;
    Ok((layout, oracle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadKind;

    fn spec() -> WorkloadSpec {
        let mut s = WorkloadSpec::new(WorkloadKind::HotCold);
        s.pages = 12;
        s.objects_per_page = 8;
        s.ops_per_txn = 4;
        s.write_fraction = 0.5;
        s
    }

    #[test]
    fn client_crash_scenario_is_clean() {
        let r = run_crash_scenario(
            SystemConfig::default(),
            3,
            CrashKind::Client(1),
            spec(),
            10,
            1,
        )
        .unwrap();
        assert!(
            r.is_clean(),
            "{:?} / {:?}",
            r.verify_after_recovery,
            r.verify_final
        );
        assert!(r.phase2.commits > 0);
    }

    #[test]
    fn server_crash_scenario_is_clean() {
        let r = run_crash_scenario(SystemConfig::default(), 3, CrashKind::Server, spec(), 10, 2)
            .unwrap();
        assert!(
            r.is_clean(),
            "{:?} / {:?}",
            r.verify_after_recovery,
            r.verify_final
        );
    }

    /// Single-partition restart in a two-instance system, under both
    /// driver schedulers: the restarting instance re-runs the §3.4 gather
    /// for its residue class only, the sibling keeps serving, and the
    /// oracle stays clean across both phases.
    #[test]
    fn partition_restart_scenario_is_clean_under_both_schedulers() {
        for scheduler in [SchedulerKind::Threads, SchedulerKind::Event] {
            for partition in 0..2 {
                let r = run_crash_scenario_with(
                    SystemConfig::default().with_server_instances(2),
                    3,
                    CrashKind::PartitionRestart(partition),
                    spec(),
                    10,
                    4 + partition as u64,
                    scheduler,
                )
                .unwrap();
                assert!(
                    r.is_clean(),
                    "{scheduler:?}/partition {partition}: {:?} / {:?}",
                    r.verify_after_recovery,
                    r.verify_final
                );
                assert!(r.phase2.commits > 0);
            }
        }
    }

    /// The full matrix stays clean when every scenario runs against a
    /// partitioned (two-instance) server on a cross-partition workload.
    #[test]
    fn crash_matrix_is_clean_with_two_server_instances() {
        let kinds = [
            CrashKind::Client(1),
            CrashKind::Server,
            CrashKind::MultiClient(vec![0, 2]),
            CrashKind::Complex(vec![1]),
            CrashKind::PartitionRestart(1),
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let name = kind.name();
            let r = run_crash_scenario(
                SystemConfig::default().with_server_instances(2),
                3,
                kind,
                spec(),
                10,
                10 + i as u64,
            )
            .unwrap();
            assert!(
                r.is_clean(),
                "{name}: {:?} / {:?}",
                r.verify_after_recovery,
                r.verify_final
            );
        }
    }

    #[test]
    fn complex_crash_scenario_is_clean() {
        let r = run_crash_scenario(
            SystemConfig::default(),
            3,
            CrashKind::Complex(vec![1]),
            spec(),
            10,
            3,
        )
        .unwrap();
        assert!(
            r.is_clean(),
            "{:?} / {:?}",
            r.verify_after_recovery,
            r.verify_final
        );
    }
}
