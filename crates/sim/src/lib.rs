//! Simulation and experiment harness for the `fgl` reproduction.
//!
//! The paper has no quantitative evaluation section, so the experiment
//! suite (E1–E9, see `DESIGN.md`) is constructed from its claims. This
//! crate supplies the substrate those experiments share:
//!
//! * [`workload`] — synthetic multi-client workloads in the style of
//!   Carey, Franklin & Zaharioudakis \[3\] (PRIVATE / HOTCOLD / UNIFORM /
//!   HICON / FEED), deterministically seeded;
//! * [`setup`] — database population helpers;
//! * [`oracle`] — a committed-state oracle: the harness records every
//!   committed write; after any crash/recovery sequence the system state
//!   must equal the oracle;
//! * [`harness`] — multi-threaded workload driver with throughput,
//!   latency and message accounting;
//! * [`crash`] — crash-matrix orchestration (client / server / complex
//!   crashes mid-workload);
//! * [`table`] — plain-text table output for the experiment binaries.

pub mod crash;
pub mod harness;
pub mod oracle;
pub mod setup;
pub mod table;
pub mod workload;

pub use crash::{run_crash_scenario, run_crash_scenario_with, CrashKind, CrashScenarioReport};
pub use harness::{run_workload, HarnessOptions, RunReport, SchedulerKind};
pub use oracle::Oracle;
pub use setup::{populate, DatabaseLayout};
pub use table::Table;
pub use workload::{Op, TxnTemplate, WorkloadKind, WorkloadSpec};
