//! Database population for experiments.

use fgl::{ClientCore, ObjectId, PageId, Result};
use fgl_common::rng::DetRng;
use std::sync::Arc;

/// Geometry of a populated database.
#[derive(Clone, Debug)]
pub struct DatabaseLayout {
    pub pages: Vec<PageId>,
    pub objects: Vec<ObjectId>,
    pub object_size: usize,
}

impl DatabaseLayout {
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

/// Populate `pages × objects_per_page` objects of `object_size` bytes via
/// `loader`, committing in batches. All caches are then warm only at the
/// loader; other clients start cold, as in a freshly loaded database.
pub fn populate(
    loader: &Arc<ClientCore>,
    pages: usize,
    objects_per_page: usize,
    object_size: usize,
) -> Result<DatabaseLayout> {
    let mut layout = DatabaseLayout {
        pages: Vec::with_capacity(pages),
        objects: Vec::with_capacity(pages * objects_per_page),
        object_size,
    };
    let mut rng = DetRng::new(0x00DB_5EED);
    let mut buf = vec![0u8; object_size];
    for _ in 0..pages {
        let t = loader.begin()?;
        let page = loader.create_page(t)?;
        layout.pages.push(page);
        for _ in 0..objects_per_page {
            rng.fill_bytes(&mut buf);
            let oid = loader.insert(t, page, &buf)?;
            layout.objects.push(oid);
        }
        loader.commit(t)?;
    }
    Ok(layout)
}

/// Like [`populate`], but each page is loaded by the client that the
/// partitioned workloads (PRIVATE, the hot region of HOTCOLD) assign it
/// to: page `i` of `pages` goes to client `i / (pages / n_clients)`.
/// Every client then starts out owning and caching its own region, so a
/// scaling sweep measures steady-state cost rather than the O(clients)
/// ownership handoff from a single loader. Layout order matches
/// [`populate`]: `layout.pages[i]` is workload page `i`.
pub fn populate_partitioned(
    clients: &[&Arc<ClientCore>],
    pages: usize,
    objects_per_page: usize,
    object_size: usize,
) -> Result<DatabaseLayout> {
    let mut layout = DatabaseLayout {
        pages: Vec::with_capacity(pages),
        objects: Vec::with_capacity(pages * objects_per_page),
        object_size,
    };
    let region = (pages / clients.len().max(1)).max(1);
    let mut rng = DetRng::new(0x00DB_5EED);
    let mut buf = vec![0u8; object_size];
    for i in 0..pages {
        let loader = clients[(i / region).min(clients.len() - 1)];
        let t = loader.begin()?;
        let page = loader.create_page(t)?;
        layout.pages.push(page);
        for _ in 0..objects_per_page {
            rng.fill_bytes(&mut buf);
            let oid = loader.insert(t, page, &buf)?;
            layout.objects.push(oid);
        }
        loader.commit(t)?;
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl::{System, SystemConfig};

    #[test]
    fn populate_creates_expected_geometry() {
        let sys = System::build(SystemConfig::default(), 1).unwrap();
        let layout = populate(sys.client(0), 4, 8, 32).unwrap();
        assert_eq!(layout.pages.len(), 4);
        assert_eq!(layout.objects.len(), 32);
        // Every object is readable.
        let c = sys.client(0);
        let t = c.begin().unwrap();
        for o in &layout.objects {
            assert_eq!(c.read(t, *o).unwrap().len(), 32);
        }
        c.commit(t).unwrap();
    }

    #[test]
    fn populate_partitioned_spreads_loaders_and_keeps_order() {
        let sys = System::build(SystemConfig::default(), 4).unwrap();
        let loaders: Vec<_> = (0..4).map(|i| sys.client(i)).collect();
        let layout = populate_partitioned(&loaders, 8, 2, 16).unwrap();
        assert_eq!(layout.pages.len(), 8);
        assert_eq!(layout.objects.len(), 16);
        // Client i loaded pages [2i, 2i+2) and can read them back with no
        // ownership handoff having happened.
        for (c, loader) in loaders.iter().enumerate() {
            let t = loader.begin().unwrap();
            for o in &layout.objects[c * 4..(c + 1) * 4] {
                assert_eq!(loader.read(t, *o).unwrap().len(), 16);
            }
            loader.commit(t).unwrap();
        }
    }

    #[test]
    fn populated_pages_fit_page_size() {
        // 16 objects of 64 bytes + slot entries must fit in 4 KiB.
        let sys = System::build(SystemConfig::default(), 1).unwrap();
        let layout = populate(sys.client(0), 2, 16, 64).unwrap();
        assert_eq!(layout.objects.len(), 32);
    }
}
