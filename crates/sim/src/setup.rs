//! Database population for experiments.

use fgl::{ClientCore, ObjectId, PageId, Result};
use fgl_common::rng::DetRng;
use std::sync::Arc;

/// Geometry of a populated database.
#[derive(Clone, Debug)]
pub struct DatabaseLayout {
    pub pages: Vec<PageId>,
    pub objects: Vec<ObjectId>,
    pub object_size: usize,
}

impl DatabaseLayout {
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

/// Populate `pages × objects_per_page` objects of `object_size` bytes via
/// `loader`, committing in batches. All caches are then warm only at the
/// loader; other clients start cold, as in a freshly loaded database.
pub fn populate(
    loader: &Arc<ClientCore>,
    pages: usize,
    objects_per_page: usize,
    object_size: usize,
) -> Result<DatabaseLayout> {
    let mut layout = DatabaseLayout {
        pages: Vec::with_capacity(pages),
        objects: Vec::with_capacity(pages * objects_per_page),
        object_size,
    };
    let mut rng = DetRng::new(0x00DB_5EED);
    let mut buf = vec![0u8; object_size];
    for _ in 0..pages {
        let t = loader.begin()?;
        let page = loader.create_page(t)?;
        layout.pages.push(page);
        for _ in 0..objects_per_page {
            rng.fill_bytes(&mut buf);
            let oid = loader.insert(t, page, &buf)?;
            layout.objects.push(oid);
        }
        loader.commit(t)?;
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl::{System, SystemConfig};

    #[test]
    fn populate_creates_expected_geometry() {
        let sys = System::build(SystemConfig::default(), 1).unwrap();
        let layout = populate(sys.client(0), 4, 8, 32).unwrap();
        assert_eq!(layout.pages.len(), 4);
        assert_eq!(layout.objects.len(), 32);
        // Every object is readable.
        let c = sys.client(0);
        let t = c.begin().unwrap();
        for o in &layout.objects {
            assert_eq!(c.read(t, *o).unwrap().len(), 32);
        }
        c.commit(t).unwrap();
    }

    #[test]
    fn populated_pages_fit_page_size() {
        // 16 objects of 64 bytes + slot entries must fit in 4 KiB.
        let sys = System::build(SystemConfig::default(), 1).unwrap();
        let layout = populate(sys.client(0), 2, 16, 64).unwrap();
        assert_eq!(layout.objects.len(), 32);
    }
}
