//! Minimal aligned-column table printer for the experiment binaries.

use std::fmt::Write as _;

/// A plain-text table with a header row.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a row; panics if the column count mismatches (programmer
    /// error in a bench binary).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width != header width");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>w$}", c, w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Render a per-kind message breakdown of a [`fgl::NetSnapshot`]
/// normalized by `commits` (0 rows are omitted) — the standard way the
/// experiment binaries explain *where* a policy's traffic goes.
pub fn net_breakdown(snapshot: &fgl::NetSnapshot, commits: u64) -> Table {
    let mut t = Table::new(&["message kind", "count", "per commit", "bytes"]);
    let denom = commits.max(1) as f64;
    for i in 0..13 {
        if snapshot.counts[i] == 0 {
            continue;
        }
        t.row(vec![
            fgl::NetSnapshot::kind_name(i).into(),
            snapshot.counts[i].to_string(),
            f2(snapshot.counts[i] as f64 / denom),
            snapshot.bytes[i].to_string(),
        ]);
    }
    t
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        // All data lines same width as header line.
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.257), "1.26");
    }
}
