//! The committed-state oracle.
//!
//! The harness records every *committed* write here. Strict two-phase
//! object locking serializes writers per object, so applying each
//! transaction's write set atomically at commit time (while still holding
//! its locks) yields exactly the serialization order the system produced.
//! After any crash/recovery sequence, reading every object back through a
//! live client must reproduce the oracle — the paper's §3.3–§3.5
//! correctness claim, checked mechanically (experiment E8).

use crate::setup::DatabaseLayout;
use fgl::{ClientCore, FglError, ObjectId, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Committed values per object (`None` = deleted).
#[derive(Default)]
pub struct Oracle {
    committed: Mutex<HashMap<ObjectId, Option<Vec<u8>>>>,
}

/// Result of an oracle verification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    pub objects_checked: usize,
    pub mismatches: Vec<ObjectId>,
}

impl VerifyReport {
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl Oracle {
    pub fn new() -> Arc<Oracle> {
        Arc::new(Oracle::default())
    }

    /// Seed the oracle with the initial database contents.
    pub fn seed(&self, reader: &Arc<ClientCore>, layout: &DatabaseLayout) -> Result<()> {
        let t = reader.begin()?;
        let mut map = self.committed.lock();
        for o in &layout.objects {
            map.insert(*o, Some(reader.read(t, *o)?));
        }
        drop(map);
        reader.commit(t)
    }

    /// Record a committed transaction's write set. Call after `commit`
    /// returns `Ok`, before the next transaction of the same client runs.
    pub fn commit_writes(&self, writes: &[(ObjectId, Option<Vec<u8>>)]) {
        let mut map = self.committed.lock();
        for (o, v) in writes {
            map.insert(*o, v.clone());
        }
    }

    /// Expected value of one object.
    pub fn expected(&self, o: ObjectId) -> Option<Option<Vec<u8>>> {
        self.committed.lock().get(&o).cloned()
    }

    pub fn len(&self) -> usize {
        self.committed.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.committed.lock().is_empty()
    }

    /// Read every tracked object through `reader` (full lock/callback
    /// protocol — authoritative) and compare against the oracle.
    pub fn verify_via_reads(&self, reader: &Arc<ClientCore>) -> Result<VerifyReport> {
        let expected: Vec<(ObjectId, Option<Vec<u8>>)> = {
            let map = self.committed.lock();
            let mut v: Vec<_> = map.iter().map(|(o, val)| (*o, val.clone())).collect();
            v.sort_by_key(|(o, _)| (o.page.0, o.slot.0));
            v
        };
        let t = reader.begin()?;
        let mut report = VerifyReport::default();
        for (o, want) in expected {
            report.objects_checked += 1;
            let got = match reader.read(t, o) {
                Ok(bytes) => Some(bytes),
                Err(FglError::ObjectNotFound(_)) => None,
                Err(e) => {
                    reader.abort(t).ok();
                    return Err(e);
                }
            };
            if got != want {
                report.mismatches.push(o);
            }
        }
        reader.commit(t)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::populate;
    use fgl::{System, SystemConfig};

    #[test]
    fn seed_then_verify_is_clean() {
        let sys = System::build(SystemConfig::default(), 1).unwrap();
        let layout = populate(sys.client(0), 2, 4, 16).unwrap();
        let oracle = Oracle::new();
        oracle.seed(sys.client(0), &layout).unwrap();
        let report = oracle.verify_via_reads(sys.client(0)).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.objects_checked, 8);
    }

    #[test]
    fn verify_detects_divergence() {
        let sys = System::build(SystemConfig::default(), 1).unwrap();
        let layout = populate(sys.client(0), 1, 2, 8).unwrap();
        let oracle = Oracle::new();
        oracle.seed(sys.client(0), &layout).unwrap();
        // Commit a write the oracle never hears about.
        let c = sys.client(0);
        let t = c.begin().unwrap();
        c.write(t, layout.objects[0], &[9u8; 8]).unwrap();
        c.commit(t).unwrap();
        let report = oracle.verify_via_reads(c).unwrap();
        assert_eq!(report.mismatches, vec![layout.objects[0]]);
    }

    #[test]
    fn commit_writes_updates_expectations() {
        let sys = System::build(SystemConfig::default(), 1).unwrap();
        let layout = populate(sys.client(0), 1, 2, 8).unwrap();
        let oracle = Oracle::new();
        oracle.seed(sys.client(0), &layout).unwrap();
        let c = sys.client(0);
        let t = c.begin().unwrap();
        c.write(t, layout.objects[1], &[7u8; 8]).unwrap();
        c.commit(t).unwrap();
        oracle.commit_writes(&[(layout.objects[1], Some(vec![7u8; 8]))]);
        assert!(oracle.verify_via_reads(c).unwrap().is_clean());
    }
}
