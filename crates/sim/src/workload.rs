//! Synthetic multi-client workloads.
//!
//! Shapes follow the fine-grained-sharing study of Carey, Franklin &
//! Zaharioudakis \[3\] — the paper's own reference for workload
//! assumptions:
//!
//! * **PRIVATE** — each client works in its own page region; no sharing.
//!   Shows the upside of inter-transaction caching and adaptive locks.
//! * **HOTCOLD** — most accesses go to the client's own hot region, the
//!   rest spill uniformly over the shared database; moderate sharing.
//! * **UNIFORM** — every access uniform over the whole database; heavy
//!   (but diffuse) sharing.
//! * **HICON** — all writes concentrate on a small hot set of pages with
//!   many objects: different clients keep updating *different objects on
//!   the same pages*, the paper's headline scenario.
//! * **FEED** — one writer client updates a region that all other clients
//!   read (producer/consumer).
//! * **ZIPF** — accesses over the whole database with Zipf-like skew
//!   (rank-θ popularity), the classic hotspot distribution.

use fgl_common::rng::DetRng;
use fgl_common::{ObjectId, PageId, SlotId};

/// One operation of a transaction template.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Read(ObjectId),
    /// Same-size overwrite (mergeable update, §3.1).
    Write(ObjectId),
    /// Grow-then-shrink resize (structural / non-mergeable, §3.1).
    Resize(ObjectId),
}

impl Op {
    pub fn object(&self) -> ObjectId {
        match self {
            Op::Read(o) | Op::Write(o) | Op::Resize(o) => *o,
        }
    }

    pub fn is_write(&self) -> bool {
        !matches!(self, Op::Read(_))
    }
}

/// The ops of one transaction.
#[derive(Clone, Debug, Default)]
pub struct TxnTemplate {
    pub ops: Vec<Op>,
}

/// Workload family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    Private,
    HotCold,
    Uniform,
    HiCon,
    Feed,
    Zipf,
}

impl WorkloadKind {
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::Private,
        WorkloadKind::HotCold,
        WorkloadKind::Uniform,
        WorkloadKind::HiCon,
        WorkloadKind::Feed,
        WorkloadKind::Zipf,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Private => "PRIVATE",
            WorkloadKind::HotCold => "HOTCOLD",
            WorkloadKind::Uniform => "UNIFORM",
            WorkloadKind::HiCon => "HICON",
            WorkloadKind::Feed => "FEED",
            WorkloadKind::Zipf => "ZIPF",
        }
    }
}

/// Workload parameters. The geometry (pages / objects per page / object
/// size) must match the populated database layout.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    pub kind: WorkloadKind,
    /// Total pages in the database.
    pub pages: usize,
    /// Objects per page.
    pub objects_per_page: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Fraction of operations that write.
    pub write_fraction: f64,
    /// Fraction of writes that are structural (resize).
    pub structural_fraction: f64,
    /// HOTCOLD: probability of staying in the own region.
    pub hot_probability: f64,
    /// HICON: number of hot pages all writes target.
    pub hot_pages: usize,
    /// ZIPF: skew exponent θ (0 = uniform; 0.8–1.0 = classic hotspots).
    pub zipf_theta: f64,
    /// Multi-server alignment (E18): when > 1, a transaction's pages are
    /// confined to the committer's home residue class `client % stride`
    /// of `PageId % stride` — i.e. to one server instance of a
    /// `server_instances = stride` system. `0`/`1` disables alignment.
    pub partition_stride: usize,
    /// Probability that an aligned transaction ignores its home class
    /// and roams the whole database (a cross-partition transaction).
    /// Only consulted when `partition_stride > 1`.
    pub cross_partition_probability: f64,
}

impl WorkloadSpec {
    pub fn new(kind: WorkloadKind) -> Self {
        WorkloadSpec {
            kind,
            pages: 64,
            objects_per_page: 16,
            ops_per_txn: 8,
            write_fraction: 0.3,
            structural_fraction: 0.0,
            hot_probability: 0.8,
            hot_pages: 4,
            zipf_theta: 0.9,
            partition_stride: 0,
            cross_partition_probability: 0.0,
        }
    }

    /// Snap `page` into the committer's home residue class (see
    /// [`Self::partition_stride`]), staying inside the database.
    fn align_to_partition(&self, page: usize, client: usize) -> usize {
        let stride = self.partition_stride;
        let home = client % stride;
        let aligned = page - (page % stride) + home;
        if aligned >= self.pages {
            aligned - stride
        } else {
            aligned
        }
    }

    /// Draw a Zipf(θ)-distributed rank in `[0, n)` by inversion of the
    /// approximate CDF (Gray et al.'s quick method: u^(1/(1-θ)) spreads
    /// ranks with power-law popularity; exact harmonic inversion is not
    /// needed for workload shaping).
    fn zipf_rank(&self, n: usize, rng: &mut DetRng) -> usize {
        let u = (rng.next_u64() as f64 / u64::MAX as f64).max(1e-12);
        let theta = self.zipf_theta.clamp(0.0, 0.999);
        let r = u.powf(1.0 / (1.0 - theta));
        ((r * n as f64) as usize).min(n - 1)
    }

    fn object(&self, page: usize, slot: usize) -> ObjectId {
        ObjectId::new(PageId(page as u64), SlotId(slot as u16))
    }

    /// Pick the page for one access by `client` (0-based) of `n_clients`.
    fn pick_page(&self, client: usize, n_clients: usize, writing: bool, rng: &mut DetRng) -> usize {
        let region = self.pages / n_clients.max(1);
        let own_start = client * region;
        match self.kind {
            WorkloadKind::Private => own_start + rng.range_usize(0, region.max(1)),
            WorkloadKind::HotCold => {
                if rng.chance(self.hot_probability) {
                    own_start + rng.range_usize(0, region.max(1))
                } else {
                    rng.range_usize(0, self.pages)
                }
            }
            WorkloadKind::Uniform => rng.range_usize(0, self.pages),
            WorkloadKind::HiCon => {
                if writing {
                    rng.range_usize(0, self.hot_pages.min(self.pages))
                } else {
                    rng.range_usize(0, self.pages)
                }
            }
            WorkloadKind::Feed => {
                // The feed region is the first client's region; everyone
                // hits it.
                rng.range_usize(0, region.max(1))
            }
            WorkloadKind::Zipf => self.zipf_rank(self.pages, rng),
        }
    }

    /// In HICON, different clients target different slots of the hot
    /// pages, so writes conflict at page level but not at object level —
    /// exactly what fine-granularity locking exploits.
    fn pick_slot(
        &self,
        client: usize,
        n_clients: usize,
        page_hot: bool,
        rng: &mut DetRng,
    ) -> usize {
        if self.kind == WorkloadKind::HiCon && page_hot {
            let per = (self.objects_per_page / n_clients.max(1)).max(1);
            let base = (client * per) % self.objects_per_page;
            base + rng.range_usize(0, per.min(self.objects_per_page - base))
        } else {
            rng.range_usize(0, self.objects_per_page)
        }
    }

    /// Generate one transaction for `client` of `n_clients`.
    pub fn next_txn(&self, client: usize, n_clients: usize, rng: &mut DetRng) -> TxnTemplate {
        // Per-transaction cross-partition draw: an aligned transaction
        // stays on one server instance; a roaming one spans them. The
        // short-circuit keeps legacy (stride-less) rng streams intact.
        let aligned = self.partition_stride > 1 && !rng.chance(self.cross_partition_probability);
        let mut ops = Vec::with_capacity(self.ops_per_txn);
        for _ in 0..self.ops_per_txn {
            let mut writing = rng.chance(self.write_fraction);
            if self.kind == WorkloadKind::Feed && client != 0 {
                // Only client 0 writes the feed.
                writing = false;
            }
            let mut page = self.pick_page(client, n_clients, writing, rng);
            if aligned {
                page = self.align_to_partition(page, client);
            }
            let page_hot = self.kind == WorkloadKind::HiCon && page < self.hot_pages;
            let slot = self.pick_slot(client, n_clients, page_hot, rng);
            let obj = self.object(page, slot);
            if writing {
                if rng.chance(self.structural_fraction) {
                    ops.push(Op::Resize(obj));
                } else {
                    ops.push(Op::Write(obj));
                }
            } else {
                ops.push(Op::Read(obj));
            }
        }
        TxnTemplate { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: WorkloadKind) -> WorkloadSpec {
        WorkloadSpec::new(kind)
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec(WorkloadKind::HotCold);
        let mut r1 = DetRng::new(7);
        let mut r2 = DetRng::new(7);
        for _ in 0..20 {
            assert_eq!(s.next_txn(1, 4, &mut r1).ops, s.next_txn(1, 4, &mut r2).ops);
        }
    }

    #[test]
    fn ops_stay_within_geometry() {
        for kind in WorkloadKind::ALL {
            let s = spec(kind);
            let mut rng = DetRng::new(3);
            for c in 0..4 {
                for _ in 0..50 {
                    let t = s.next_txn(c, 4, &mut rng);
                    assert_eq!(t.ops.len(), s.ops_per_txn);
                    for op in &t.ops {
                        let o = op.object();
                        assert!((o.page.0 as usize) < s.pages, "{kind:?}");
                        assert!((o.slot.0 as usize) < s.objects_per_page);
                    }
                }
            }
        }
    }

    #[test]
    fn private_clients_never_collide() {
        let s = spec(WorkloadKind::Private);
        let mut rng = DetRng::new(9);
        let region = s.pages / 4;
        for c in 0..4 {
            for _ in 0..100 {
                let t = s.next_txn(c, 4, &mut rng);
                for op in &t.ops {
                    let p = op.object().page.0 as usize;
                    assert!(p >= c * region && p < (c + 1) * region);
                }
            }
        }
    }

    #[test]
    fn hicon_writes_target_hot_pages_distinct_slots() {
        let mut s = spec(WorkloadKind::HiCon);
        s.write_fraction = 1.0;
        let mut rng = DetRng::new(5);
        let mut slots_by_client: Vec<std::collections::HashSet<u16>> = vec![Default::default(); 4];
        for (c, slots) in slots_by_client.iter_mut().enumerate() {
            for _ in 0..100 {
                let t = s.next_txn(c, 4, &mut rng);
                for op in &t.ops {
                    assert!(op.is_write());
                    let o = op.object();
                    assert!((o.page.0 as usize) < s.hot_pages);
                    slots.insert(o.slot.0);
                }
            }
        }
        // Distinct clients use disjoint slot ranges on hot pages.
        for a in 0..4 {
            for b in a + 1..4 {
                assert!(
                    slots_by_client[a].is_disjoint(&slots_by_client[b]),
                    "clients {a} and {b} collide on hot slots"
                );
            }
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut s = spec(WorkloadKind::Zipf);
        s.zipf_theta = 0.9;
        let mut rng = DetRng::new(21);
        let mut counts = vec![0usize; s.pages];
        for _ in 0..400 {
            let t = s.next_txn(0, 4, &mut rng);
            for op in &t.ops {
                counts[op.object().page.0 as usize] += 1;
            }
        }
        let head: usize = counts[..s.pages / 8].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(
            head * 2 > total,
            "top 12.5% of pages should absorb most accesses: {head}/{total}"
        );
        // Uniform comparison: the same head slice gets ~12.5%.
        let mut u = spec(WorkloadKind::Uniform);
        u.ops_per_txn = 8;
        let mut counts_u = vec![0usize; u.pages];
        let mut rng = DetRng::new(21);
        for _ in 0..400 {
            let t = u.next_txn(0, 4, &mut rng);
            for op in &t.ops {
                counts_u[op.object().page.0 as usize] += 1;
            }
        }
        let head_u: usize = counts_u[..u.pages / 8].iter().sum();
        assert!(
            head > head_u * 2,
            "zipf head {head} vs uniform head {head_u}"
        );
    }

    #[test]
    fn partition_alignment_confines_txns_to_home_residue() {
        let mut s = spec(WorkloadKind::Uniform);
        s.partition_stride = 4;
        let mut rng = DetRng::new(11);
        for c in 0..8 {
            for _ in 0..50 {
                let t = s.next_txn(c, 8, &mut rng);
                for op in &t.ops {
                    let p = op.object().page.0 as usize;
                    assert!(p < s.pages);
                    assert_eq!(p % 4, c % 4, "client {c} strayed off its partition");
                }
            }
        }
        // With a cross probability, some transactions roam — but each
        // transaction is all-or-nothing (the draw is per transaction).
        s.cross_partition_probability = 0.5;
        let mut roamed = 0;
        for _ in 0..100 {
            let t = s.next_txn(1, 8, &mut rng);
            let off_home = t
                .ops
                .iter()
                .filter(|o| o.object().page.0 as usize % 4 != 1)
                .count();
            if off_home > 0 {
                roamed += 1;
            }
        }
        assert!(roamed > 10, "cross-partition txns never materialized");
        assert!(roamed < 90, "alignment never engaged");
    }

    #[test]
    fn feed_only_writer_is_client_zero() {
        let mut s = spec(WorkloadKind::Feed);
        s.write_fraction = 0.5;
        let mut rng = DetRng::new(8);
        for c in 1..4 {
            for _ in 0..50 {
                let t = s.next_txn(c, 4, &mut rng);
                assert!(t.ops.iter().all(|o| !o.is_write()));
            }
        }
        let writes = (0..50)
            .map(|_| s.next_txn(0, 4, &mut rng))
            .flat_map(|t| t.ops)
            .filter(|o| o.is_write())
            .count();
        assert!(writes > 0);
    }
}
