//! Multi-threaded workload driver.

use crate::oracle::Oracle;
use crate::setup::DatabaseLayout;
use crate::workload::{Op, WorkloadSpec};
use fgl::{NetSnapshot, ObjectId, Result, Snapshot, System};
use fgl_common::rng::DetRng;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the harness multiplexes client transaction drivers onto the host.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// One OS thread per committer — the original driver model.
    #[default]
    Threads,
    /// Green tasks on a fixed `fgl-sched` worker pool: thousands of
    /// simulated clients multiplex onto a handful of OS threads, with
    /// simulated disk/network latency parked on a timer wheel instead of
    /// blocking a thread in `sleep`.
    Event,
}

impl SchedulerKind {
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Threads => "threads",
            SchedulerKind::Event => "event",
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "threads" => Ok(SchedulerKind::Threads),
            "event" => Ok(SchedulerKind::Event),
            other => Err(format!("unknown scheduler `{other}` (threads|event)")),
        }
    }
}

/// Driver parameters.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    pub spec: WorkloadSpec,
    /// Transactions each client executes (committed or given up).
    pub txns_per_client: usize,
    /// Master seed; each client derives its own stream.
    pub seed: u64,
    /// Retries after a deadlock/timeout abort before giving up on a
    /// transaction.
    pub max_retries: usize,
    /// Concurrent committer threads per client (each runs
    /// `txns_per_client` transactions against the same `ClientCore`).
    /// `> 1` exercises group commit: overlapping commits on one private
    /// log coalesce their forces.
    ///
    /// The LLM follows the paper's model of one transaction at a time
    /// per client: conflicting transactions of *different* clients are
    /// serialized by the GLM, but two local transactions covered by the
    /// same cached lock are not serialized against each other. Each
    /// thread therefore draws from its own workload partition (the spec
    /// sees `clients × threads` logical clients), so concurrent local
    /// transactions have disjoint footprints under partitioned workloads
    /// (PRIVATE regions, HICON hot-page slots).
    pub threads_per_client: usize,
    /// Driver multiplexing model. Defaults to [`SchedulerKind::Threads`];
    /// [`SchedulerKind::Event`] runs the same per-committer loops as
    /// green tasks on a fixed worker pool.
    pub scheduler: SchedulerKind,
    /// Worker-pool size for [`SchedulerKind::Event`]; `0` picks
    /// [`fgl_sched::default_workers`]. Ignored under `Threads`.
    pub event_workers: usize,
    /// Green-task stack size in KiB for [`SchedulerKind::Event`]; `0`
    /// keeps the scheduler's current default. Harness workloads have a
    /// known shallow depth (see the `sched_stack_high_water_bytes`
    /// metric), so scaling runs shrink this well below the 256 KiB
    /// general-purpose default. Applied via [`fgl_sched::set_stack_size`]
    /// (process-wide; the `FGL_SCHED_STACK_KB` env override wins), and
    /// validated there — sizes below the floor or not page-multiples
    /// panic. Ignored under `Threads`.
    pub sched_stack_kb: usize,
}

impl HarnessOptions {
    pub fn new(spec: WorkloadSpec, txns_per_client: usize) -> Self {
        HarnessOptions {
            spec,
            txns_per_client,
            seed: 42,
            max_retries: 10,
            threads_per_client: 1,
            scheduler: SchedulerKind::default(),
            event_workers: 0,
            sched_stack_kb: 0,
        }
    }
}

/// Aggregated outcome of one run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    pub commits: u64,
    pub aborts: u64,
    pub elapsed: Duration,
    /// Per-commit latencies in microseconds (all clients merged).
    pub commit_latencies_us: Vec<u64>,
    /// Message-fabric delta over the run.
    pub net: NetSnapshot,
    /// Unified observability delta over the run: registry histograms
    /// (lock-wait, commit, callback RTT, …) plus every stats surface
    /// folded in as counters (see [`System::metrics_snapshot`]).
    pub metrics: Snapshot,
    /// OS threads the driver used: committer count under `Threads`,
    /// worker-pool size under `Event`.
    pub driver_threads: usize,
}

impl RunReport {
    pub fn throughput(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.commits as f64 / self.elapsed.as_secs_f64()
    }

    pub fn abort_rate(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            return 0.0;
        }
        self.aborts as f64 / total as f64
    }

    /// Latency percentile in microseconds (p in [0, 100]).
    pub fn latency_us(&self, p: f64) -> u64 {
        if self.commit_latencies_us.is_empty() {
            return 0;
        }
        let mut v = self.commit_latencies_us.clone();
        v.sort_unstable();
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    pub fn messages_per_commit(&self) -> f64 {
        if self.commits == 0 {
            return 0.0;
        }
        self.net.total_messages() as f64 / self.commits as f64
    }
}

/// Per-committer tally: (commits, aborts, commit latencies in µs).
type DriverResult = Result<(u64, u64, Vec<u64>)>;

/// Run the workload: one committer per client (OS thread or green task
/// per [`HarnessOptions::scheduler`]), `txns_per_client` transactions
/// each, deadlock/timeout aborts retried. Committed write sets are
/// recorded into `oracle` when provided.
pub fn run_workload(
    sys: &System,
    layout: &DatabaseLayout,
    oracle: Option<&Arc<Oracle>>,
    opts: &HarnessOptions,
) -> Result<RunReport> {
    let n = sys.clients.len();
    let threads = n * opts.threads_per_client.max(1);
    let before = sys.net.snapshot();
    let metrics_before = sys.metrics_snapshot();
    let sched_before = fgl_sched::sched_stats();
    let start = Instant::now();
    let mut master = DetRng::new(opts.seed);
    let seeds: Vec<u64> = (0..threads)
        .map(|t| master.fork(t as u64).next_u64())
        .collect();

    // One committer body, shared by both scheduler modes so they stay
    // semantically identical.
    let oracle = oracle.cloned();
    let drive = |t: usize| -> DriverResult {
        let client = &sys.clients[t % n];
        let mut rng = DetRng::new(seeds[t]);
        let mut commits = 0u64;
        let mut aborts = 0u64;
        let mut latencies = Vec::with_capacity(opts.txns_per_client);
        for _ in 0..opts.txns_per_client {
            // Partition by committer, not by client: each committer is a
            // logical workload client so concurrent local transactions
            // stay disjoint (see `threads_per_client`). With one
            // committer per client this is the identity.
            let template = opts.spec.next_txn(t, threads, &mut rng);
            let mut attempts = 0;
            loop {
                match run_one_txn(
                    client,
                    &template,
                    layout.object_size,
                    oracle.as_deref(),
                    &mut rng,
                ) {
                    Ok(latency) => {
                        commits += 1;
                        latencies.push(latency.as_micros() as u64);
                        break;
                    }
                    Err(e) if e.is_transaction_abort() => {
                        aborts += 1;
                        attempts += 1;
                        if attempts > opts.max_retries {
                            break; // give up on this template
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok((commits, aborts, latencies))
    };

    let (results, driver_threads): (Vec<DriverResult>, usize) = match opts.scheduler {
        SchedulerKind::Threads => {
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let drive = &drive;
                        scope.spawn(move || drive(t))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            (results, threads)
        }
        SchedulerKind::Event => {
            if opts.sched_stack_kb > 0 {
                fgl_sched::set_stack_size(opts.sched_stack_kb * 1024);
            }
            let slots: Vec<Mutex<Option<DriverResult>>> =
                (0..threads).map(|_| Mutex::new(None)).collect();
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
                .map(|t| {
                    let drive = &drive;
                    let slot = &slots[t];
                    Box::new(move || {
                        *slot.lock().unwrap() = Some(drive(t));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            let workers = if opts.event_workers == 0 {
                fgl_sched::default_workers()
            } else {
                opts.event_workers
            };
            let used = fgl_sched::run_scoped(workers, jobs);
            let results = slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("committer task ran"))
                .collect();
            (results, used)
        }
    };

    let mut report = RunReport {
        elapsed: start.elapsed(),
        driver_threads,
        ..RunReport::default()
    };
    for r in results {
        let (c, a, lat) = r?;
        report.commits += c;
        report.aborts += a;
        report.commit_latencies_us.extend(lat);
    }
    report.net = sys.net.snapshot().delta_since(&before);
    report.metrics = sys.metrics_snapshot().delta_since(&metrics_before);
    // Scheduler profile for the interval (counters are deltas; the two
    // high-water marks are process-lifetime gauges).
    let sched = fgl_sched::sched_stats().delta_since(&sched_before);
    report
        .metrics
        .set_counter("sched_tasks_spawned", sched.tasks_spawned);
    report
        .metrics
        .set_counter("sched_context_switches", sched.context_switches);
    report
        .metrics
        .set_counter("sched_max_run_queue_depth", sched.max_run_queue_depth);
    report
        .metrics
        .set_counter("sched_worker_parks", sched.worker_parks);
    report
        .metrics
        .set_counter("sched_timer_cascades", sched.timer_cascades);
    report
        .metrics
        .set_counter("sched_timer_fires", sched.timer_fires);
    report
        .metrics
        .set_counter("sched_stack_high_water_bytes", sched.stack_high_water_bytes);
    report
        .metrics
        .set_counter("sched_runnable_wait_us", sched.runnable_wait_us_total);
    report
        .metrics
        .set_counter("sched_runnable_waits", sched.runnable_wait_count);
    report
        .metrics
        .set_counter("sched_stack_size_bytes", sched.stack_size_bytes);
    report
        .metrics
        .set_counter("sched_stacks_allocated", sched.stacks_allocated);
    report
        .metrics
        .set_counter("sched_stacks_pooled", sched.stacks_pooled);
    report
        .metrics
        .set_counter("sched_stacks_reused", sched.stacks_reused);
    report
        .metrics
        .set_counter("sched_stacks_madvised", sched.stacks_madvised);
    Ok(report)
}

/// Execute one transaction template; returns the commit latency. The
/// committed write set is recorded into the oracle inside the commit's
/// pre-lock-release window so oracle order equals serialization order.
fn run_one_txn(
    client: &Arc<fgl::ClientCore>,
    template: &crate::workload::TxnTemplate,
    object_size: usize,
    oracle: Option<&Oracle>,
    rng: &mut DetRng,
) -> Result<Duration> {
    let txn = client.begin()?;
    let mut writes: Vec<(ObjectId, Option<Vec<u8>>)> = Vec::new();
    for op in &template.ops {
        match op {
            Op::Read(o) => {
                client.read(txn, *o)?;
            }
            Op::Write(o) => {
                let mut value = vec![0u8; object_size];
                rng.fill_bytes(&mut value);
                client.write(txn, *o, &value)?;
                writes.push((*o, Some(value)));
            }
            Op::Resize(o) => {
                // Grow then shrink: exercises the structural (page-X)
                // path while leaving the committed value unchanged.
                client.resize(txn, *o, object_size + 8)?;
                client.resize(txn, *o, object_size)?;
            }
        }
    }
    let commit_start = Instant::now();
    client.commit_with(txn, || {
        if let Some(o) = oracle {
            o.commit_writes(&writes);
        }
    })?;
    Ok(commit_start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::populate;
    use crate::workload::WorkloadKind;
    use fgl::{System, SystemConfig};

    fn small_spec(kind: WorkloadKind) -> WorkloadSpec {
        let mut s = WorkloadSpec::new(kind);
        s.pages = 16;
        s.objects_per_page = 8;
        s.ops_per_txn = 4;
        s
    }

    #[test]
    fn single_client_run_commits_everything() {
        let sys = System::build(SystemConfig::default(), 1).unwrap();
        let spec = small_spec(WorkloadKind::Private);
        let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32).unwrap();
        let report = run_workload(&sys, &layout, None, &HarnessOptions::new(spec, 20)).unwrap();
        assert_eq!(report.commits, 20);
        assert_eq!(report.aborts, 0);
        assert_eq!(report.commit_latencies_us.len(), 20);
        // The unified metrics delta must cover the run: one commit
        // histogram sample per commit, and the folded-in counters.
        let commit_hist = report.metrics.hist(fgl::HistKind::Commit).unwrap();
        assert_eq!(commit_hist.count, 20);
        assert_eq!(report.metrics.counters["client_commits"], 20);
    }

    #[test]
    fn multi_committer_threads_share_one_client() {
        let sys = System::build(SystemConfig::default(), 2).unwrap();
        let spec = small_spec(WorkloadKind::Private);
        let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32).unwrap();
        let mut opts = HarnessOptions::new(spec, 10);
        opts.threads_per_client = 4;
        let report = run_workload(&sys, &layout, None, &opts).unwrap();
        // 2 clients × 4 threads × 10 txns, private pages ⇒ no aborts.
        assert_eq!(report.commits, 80);
        // Every ClientLog commit resolves through the group-commit path:
        // it either forced the private log or piggybacked on a cohort
        // member's force.
        let forced = report.metrics.counters["client_commits_forced"];
        let piggybacked = report.metrics.counters["client_commits_piggybacked"];
        assert_eq!(forced + piggybacked, 80);
    }

    #[test]
    fn multi_committer_run_with_oracle_verifies() {
        for group_commit in [true, false] {
            let cfg = SystemConfig::default().with_group_commit(group_commit);
            let sys = System::build(cfg, 2).unwrap();
            let spec = small_spec(WorkloadKind::Private);
            let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32).unwrap();
            let oracle = Oracle::new();
            oracle.seed(sys.client(0), &layout).unwrap();
            let mut opts = HarnessOptions::new(spec, 15);
            opts.threads_per_client = 4;
            let report = run_workload(&sys, &layout, Some(&oracle), &opts).unwrap();
            assert!(report.commits > 0);
            let verify = oracle.verify_via_reads(sys.client(0)).unwrap();
            assert!(
                verify.is_clean(),
                "group_commit={group_commit}: {:?}",
                verify.mismatches
            );
        }
    }

    #[test]
    fn multi_client_run_with_oracle_verifies() {
        let sys = System::build(SystemConfig::default(), 3).unwrap();
        let spec = small_spec(WorkloadKind::HotCold);
        let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32).unwrap();
        let oracle = Oracle::new();
        oracle.seed(sys.client(0), &layout).unwrap();
        let report =
            run_workload(&sys, &layout, Some(&oracle), &HarnessOptions::new(spec, 15)).unwrap();
        assert!(report.commits > 0);
        let verify = oracle.verify_via_reads(sys.client(1)).unwrap();
        assert!(
            verify.is_clean(),
            "oracle mismatch on {:?}",
            verify.mismatches
        );
    }

    #[test]
    fn hicon_concurrent_same_page_updates_verify() {
        let sys = System::build(SystemConfig::default(), 4).unwrap();
        let mut spec = small_spec(WorkloadKind::HiCon);
        spec.write_fraction = 0.8;
        spec.hot_pages = 2;
        let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32).unwrap();
        let oracle = Oracle::new();
        oracle.seed(sys.client(0), &layout).unwrap();
        let report =
            run_workload(&sys, &layout, Some(&oracle), &HarnessOptions::new(spec, 10)).unwrap();
        assert!(report.commits > 0);
        let verify = oracle.verify_via_reads(sys.client(0)).unwrap();
        assert!(
            verify.is_clean(),
            "oracle mismatch on {:?}",
            verify.mismatches
        );
    }

    #[test]
    fn event_scheduler_runs_more_clients_than_workers() {
        let sys = System::build(SystemConfig::default(), 8).unwrap();
        let spec = small_spec(WorkloadKind::Private);
        let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32).unwrap();
        let oracle = Oracle::new();
        oracle.seed(sys.client(0), &layout).unwrap();
        let mut opts = HarnessOptions::new(spec, 5);
        opts.scheduler = SchedulerKind::Event;
        let report = run_workload(&sys, &layout, Some(&oracle), &opts).unwrap();
        assert_eq!(report.commits, 40);
        assert_eq!(report.aborts, 0);
        // 8 committers multiplexed onto the fixed worker pool.
        assert!(
            report.driver_threads <= fgl_sched::default_workers(),
            "event mode used {} driver threads",
            report.driver_threads
        );
        let verify = oracle.verify_via_reads(sys.client(0)).unwrap();
        assert!(verify.is_clean(), "{:?}", verify.mismatches);
    }

    #[test]
    fn report_percentiles_are_ordered() {
        let r = RunReport {
            commits: 4,
            commit_latencies_us: vec![10, 20, 30, 40],
            ..Default::default()
        };
        assert!(r.latency_us(50.0) <= r.latency_us(95.0));
        assert_eq!(r.latency_us(0.0), 10);
        assert_eq!(r.latency_us(100.0), 40);
    }
}
