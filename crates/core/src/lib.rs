//! **fgl** — *Fine-granularity Locking and Client-Based Logging for
//! Distributed Architectures* (Panagos, Biliris, Jagadish, Rastogi —
//! EDBT 1996), reproduced as a Rust library.
//!
//! `fgl` implements a page-server DBMS in which every transactional
//! facility is provided locally at the client:
//!
//! * fine-granularity (object) locking with callback locking and lock
//!   de-escalation;
//! * **client-based logging**: each client has a private ARIES-style
//!   write-ahead log; commits force only the local log, never shipping
//!   pages or log records to the server;
//! * concurrent updates by different clients to *different objects on the
//!   same page*, reconciled by PSN-based page-copy merging;
//! * independent fuzzy checkpoints, private-log space reclamation, and
//!   restart recovery from client crashes, server crashes, and complex
//!   (simultaneous) crashes — private logs are never merged.
//!
//! # Quick start
//!
//! ```
//! use fgl::{System, SystemConfig};
//!
//! let sys = System::build(SystemConfig::default(), 2).unwrap();
//! let alice = sys.client(0);
//! let bob = sys.client(1);
//!
//! // Alice creates a page and an object, transactionally.
//! let t = alice.begin().unwrap();
//! let page = alice.create_page(t).unwrap();
//! let obj = alice.insert(t, page, b"hello").unwrap();
//! alice.commit(t).unwrap();
//!
//! // Bob reads it — the callback protocol moves the page across.
//! let t = bob.begin().unwrap();
//! assert_eq!(bob.read(t, obj).unwrap(), b"hello");
//! bob.commit(t).unwrap();
//! ```
//!
//! The [`System`] builder wires a [`ServerCore`] and N [`ClientCore`]s
//! over the counted in-process message fabric; every piece is also usable
//! on its own.

pub use fgl_client::{ClientCore, ClientRecoveryReport, ClientStats, RecoveryOptions};
pub use fgl_common::config::{
    CommitPolicy, LockGranularity, LoggingStrategyKind, SystemConfig, TransportKind, UpdatePolicy,
};
pub use fgl_common::{ClientId, FglError, Lsn, ObjectId, PageId, Psn, Result, SlotId, TxnId};
pub use fgl_locks::mode::{LockTarget, Mode, ObjMode};
pub use fgl_locks::DeadlockCoordinator;
pub use fgl_net::stats::{MsgKind, NetSim, NetSnapshot, NetStats};
pub use fgl_net::transport::socket::{RemoteServer, SocketServer};
pub use fgl_net::{PartitionedServer, ServerApi};
pub use fgl_obs::{
    CaptureSink, Event, HistKind, HistSnapshot, LogOwner, Metrics, RecoveryPhase, Snapshot,
};
pub use fgl_server::{RestartReport, ServerCore, ServerStats, ShardStats};
pub use fgl_storage::page::Page;

use fgl_storage::disk::{DiskBackend, MemDisk, SimDisk};
use std::sync::Arc;

/// A wired system: one *or more* page servers plus N clients sharing a
/// counted message fabric.
///
/// With `transport = sim` (the default) the clients call straight into
/// the [`ServerCore`] and the wiring is exactly what it always was. With
/// `transport = tcp` or `uds` the builder additionally stands up a
/// [`SocketServer`] on a loopback/temp endpoint and hands every client a
/// connected [`RemoteServer`] stub instead — same process, real frames
/// on a real socket, so the full codec and correlation machinery is
/// exercised by ordinary [`System`] tests.
///
/// With `cfg.server_instances = N > 1` the builder stands up N
/// independent server instances (instance `k` owns pages with
/// `PageId % N == k`, each with its own GLM shards, store partition,
/// DCT, server log and checkpoints), joins their wait graphs through a
/// [`fgl_locks::DeadlockCoordinator`], and hands every client one
/// [`PartitionedServer`] routing by page residue class — on either
/// transport. [`System::server`] stays the instance-0 handle so
/// single-server call sites keep working; [`System::servers`] holds all
/// of them.
pub struct System {
    /// Instance 0 — *the* server of a single-instance system, and the
    /// handle legacy call sites use.
    pub server: Arc<ServerCore>,
    /// Every server instance, in partition order (length
    /// `cfg.server_instances`; `servers[0]` is `server`).
    pub servers: Vec<Arc<ServerCore>>,
    pub clients: Vec<Arc<ClientCore>>,
    pub net: Arc<NetSim>,
    /// Present when [`System::build`] wired the latency-injecting disk —
    /// lets [`metrics_snapshot`](System::metrics_snapshot) fold I/O counts in.
    sim_disk: Option<Arc<SimDisk>>,
    /// Present under the socket transports.
    transport: Option<TransportHandle>,
}

/// Live socket-mode wiring: one accept loop **per server instance** plus
/// each client's connected stubs, with per-partition wire-stats sinks
/// recording real encoded frame sizes.
struct TransportHandle {
    remotes: Vec<Arc<RemoteServer>>,
    /// Real frame traffic per partition, index = instance.
    wires: Vec<Arc<NetStats>>,
    /// Declared after `remotes` so the stubs disconnect first and every
    /// connection thread exits on a clean EOF before the listeners stop.
    socks: Vec<SocketServer>,
}

impl TransportHandle {
    /// Connect one client to every partition's listener (partition order).
    fn connect(&mut self, id: ClientId, metrics: Arc<Metrics>) -> Result<Vec<Arc<RemoteServer>>> {
        let mut connected = Vec::with_capacity(self.socks.len());
        for (sock, wire) in self.socks.iter().zip(&self.wires) {
            let remote = if let Some(addr) = sock.local_addr() {
                RemoteServer::connect_tcp(
                    &addr.to_string(),
                    id,
                    wire.clone(),
                    Some(metrics.clone()),
                )?
            } else {
                let path = sock
                    .uds_path()
                    .expect("socket server has either an address or a path")
                    .to_path_buf();
                RemoteServer::connect_uds(&path, id, wire.clone(), Some(metrics.clone()))?
            };
            self.remotes.push(remote.clone());
            connected.push(remote);
        }
        Ok(connected)
    }
}

impl Drop for TransportHandle {
    fn drop(&mut self) {
        for r in &self.remotes {
            r.disconnect();
        }
    }
}

/// Wrap per-partition `ServerApi` handles into the single handle a
/// client holds: the bare backend for one instance, the router above it
/// for several.
fn route_partitions(parts: Vec<Arc<dyn ServerApi>>) -> Arc<dyn ServerApi> {
    if parts.len() == 1 {
        parts.into_iter().next().unwrap()
    } else {
        PartitionedServer::new(parts)
    }
}

/// A collision-free socket path for an in-process UDS system.
fn fresh_uds_path() -> std::path::PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "fgl-sys-{}-{}.sock",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

impl System {
    /// Build a system with `n_clients` clients over an in-memory server
    /// disk (with the configured simulated disk latency) and in-memory
    /// private logs with exact crash semantics.
    pub fn build(cfg: SystemConfig, n_clients: usize) -> Result<System> {
        cfg.validate()?;
        let sim = Arc::new(SimDisk::new(Arc::new(MemDisk::new()), cfg.disk_latency));
        let mut sys = Self::build_with_disk(cfg, n_clients, sim.clone())?;
        sys.sim_disk = Some(sim);
        Ok(sys)
    }

    /// Build over a caller-provided server disk backend (e.g. a
    /// `fgl_storage::disk::FileDisk`).
    pub fn build_with_disk(
        cfg: SystemConfig,
        n_clients: usize,
        disk: Arc<dyn DiskBackend>,
    ) -> Result<System> {
        cfg.validate()?;
        fgl_obs::ring::set_capacity(cfg.obs_ring_entries);
        if cfg.transport != TransportKind::Sim {
            return Self::build_socket(cfg, n_clients, disk);
        }
        let net = Arc::new(NetSim::new(cfg.net_latency));
        let disk_latency = cfg.disk_latency;
        let servers = Self::build_servers(&cfg, net.clone(), disk);
        let api = route_partitions(
            servers
                .iter()
                .map(|s| s.clone() as Arc<dyn ServerApi>)
                .collect(),
        );
        let clients = (0..n_clients)
            .map(|i| {
                ClientCore::with_log_store(
                    ClientId(i as u32 + 1),
                    api.clone(),
                    net.clone(),
                    Box::new(fgl_wal::store::SimLogStore::new(
                        Box::new(fgl_wal::store::MemLogStore::new()),
                        disk_latency,
                    )),
                )
            })
            .collect();
        Ok(System {
            server: servers[0].clone(),
            servers,
            clients,
            net,
            sim_disk: None,
            transport: None,
        })
    }

    /// Stand up `cfg.server_instances` server instances over one disk and
    /// one shared metrics registry; multi-instance systems additionally
    /// join every instance's wait graph through a deadlock coordinator so
    /// cycles spanning servers keep the youngest-victim policy.
    fn build_servers(
        cfg: &SystemConfig,
        net: Arc<NetSim>,
        disk: Arc<dyn DiskBackend>,
    ) -> Vec<Arc<ServerCore>> {
        let instances = cfg.server_instances.max(1);
        if instances == 1 {
            return vec![ServerCore::new(cfg.clone(), net, disk)];
        }
        let metrics = Arc::new(Metrics::new());
        let servers: Vec<Arc<ServerCore>> = (0..instances)
            .map(|k| {
                ServerCore::new_instance(
                    cfg.clone(),
                    net.clone(),
                    disk.clone(),
                    k,
                    instances,
                    metrics.clone(),
                )
            })
            .collect();
        let coord = DeadlockCoordinator::new();
        for s in &servers {
            s.attach_coordinator(&coord);
        }
        servers
    }

    /// Socket-mode wiring: same [`ServerCore`], but served over a real
    /// listener, with each client holding a connected [`RemoteServer`].
    ///
    /// The nominal fabric still counts every logical message — the stubs
    /// and the runtime keep calling `net.msg(..)` exactly as under sim —
    /// but injects zero latency, because the socket provides the real
    /// thing. Real encoded sizes land in the separate wire stats.
    fn build_socket(
        cfg: SystemConfig,
        n_clients: usize,
        disk: Arc<dyn DiskBackend>,
    ) -> Result<System> {
        let net = Arc::new(NetSim::new(std::time::Duration::ZERO));
        let disk_latency = cfg.disk_latency;
        let transport = cfg.transport;
        let servers = Self::build_servers(&cfg, net.clone(), disk);
        let mut socks = Vec::with_capacity(servers.len());
        let mut wires = Vec::with_capacity(servers.len());
        for server in &servers {
            let api: Arc<dyn ServerApi> = server.clone();
            socks.push(match transport {
                TransportKind::Tcp => SocketServer::serve_tcp(api, "127.0.0.1:0")?,
                TransportKind::Uds => SocketServer::serve_uds(api, &fresh_uds_path())?,
                TransportKind::Sim => unreachable!("sim transport is handled by build_with_disk"),
            });
            wires.push(Arc::new(NetStats::default()));
        }
        let mut handle = TransportHandle {
            remotes: Vec::with_capacity(n_clients * servers.len()),
            wires,
            socks,
        };
        let mut clients = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let id = ClientId(i as u32 + 1);
            let remotes = handle.connect(id, servers[0].metrics())?;
            let api = route_partitions(
                remotes
                    .into_iter()
                    .map(|r| r as Arc<dyn ServerApi>)
                    .collect(),
            );
            clients.push(ClientCore::with_log_store(
                id,
                api,
                net.clone(),
                Box::new(fgl_wal::store::SimLogStore::new(
                    Box::new(fgl_wal::store::MemLogStore::new()),
                    disk_latency,
                )),
            ));
        }
        Ok(System {
            server: servers[0].clone(),
            servers,
            clients,
            net,
            sim_disk: None,
            transport: Some(handle),
        })
    }

    /// The `i`-th client (zero-based).
    pub fn client(&self, i: usize) -> &Arc<ClientCore> {
        &self.clients[i]
    }

    /// The shared metrics registry (one per system, owned by the server).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.server.metrics()
    }

    /// One unified [`Snapshot`]: the registry's histograms and counters
    /// plus the four legacy stats surfaces — [`ServerStats`] (with its
    /// per-shard breakdown), the summed [`ClientStats`], the per-kind
    /// [`NetSnapshot`] and the simulated-disk I/O counts — folded in as
    /// named counters. Two of these subtract cleanly via
    /// [`Snapshot::delta_since`] to measure an interval.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.server.metrics().snapshot();

        // Server counters sum across instances; each instance also
        // reports under its own `srv{k}_*` namespace, with shard
        // counters nested as `srv{k}_shard{j}_*` — both axes explicit,
        // so multi-instance runs cannot collide shard names across
        // servers. Single-instance systems additionally keep the legacy
        // flat `shard{j}_*` names E11 consumers read.
        let per_instance: Vec<ServerStats> = self.servers.iter().map(|s| s.stats()).collect();
        let sum = |f: fn(&ServerStats) -> u64| per_instance.iter().map(f).sum::<u64>();
        snap.set_counter("server_lock_requests", sum(|s| s.lock_requests));
        snap.set_counter("server_page_fetches", sum(|s| s.page_fetches));
        snap.set_counter("server_pages_received", sum(|s| s.pages_received));
        snap.set_counter("server_pages_flushed", sum(|s| s.pages_flushed));
        snap.set_counter("server_replacement_records", sum(|s| s.replacement_records));
        snap.set_counter("server_checkpoints", sum(|s| s.server_checkpoints));
        snap.set_counter("server_commit_log_ships", sum(|s| s.commit_log_ships));
        snap.set_counter("server_merges", sum(|s| s.merges));
        let single = per_instance.len() == 1;
        for (k, s) in per_instance.iter().enumerate() {
            snap.set_counter(&format!("srv{k}_lock_requests"), s.lock_requests);
            snap.set_counter(&format!("srv{k}_page_fetches"), s.page_fetches);
            snap.set_counter(&format!("srv{k}_pages_received"), s.pages_received);
            snap.set_counter(&format!("srv{k}_commit_log_ships"), s.commit_log_ships);
            snap.set_counter(&format!("srv{k}_merges"), s.merges);
            for (j, sh) in s.per_shard.iter().enumerate() {
                snap.set_counter(&format!("srv{k}_shard{j}_lock_requests"), sh.lock_requests);
                snap.set_counter(&format!("srv{k}_shard{j}_page_fetches"), sh.page_fetches);
                snap.set_counter(&format!("srv{k}_shard{j}_merges"), sh.merges);
                if single {
                    snap.set_counter(&format!("shard{j}_lock_requests"), sh.lock_requests);
                    snap.set_counter(&format!("shard{j}_page_fetches"), sh.page_fetches);
                    snap.set_counter(&format!("shard{j}_merges"), sh.merges);
                }
            }
        }

        // Active-client set: clients that never ran a transaction report
        // all-zero stats and an empty WAL, so the population scans below
        // skip them with one relaxed atomic load instead of taking each
        // client's state mutex — at 100k mostly-idle simulated clients
        // the snapshot cost tracks the *active* count.
        let mut c = ClientStats::default();
        for client in self.clients.iter().filter(|c| c.is_touched()) {
            let cs = client.stats();
            c.commits += cs.commits;
            c.aborts += cs.aborts;
            c.deadlock_victims += cs.deadlock_victims;
            c.lock_timeouts += cs.lock_timeouts;
            c.local_grants += cs.local_grants;
            c.global_lock_requests += cs.global_lock_requests;
            c.pages_shipped += cs.pages_shipped;
            c.forced_flush_requests += cs.forced_flush_requests;
            c.checkpoints += cs.checkpoints;
            c.log_forces += cs.log_forces;
            c.log_bytes += cs.log_bytes;
            c.log_stall_events += cs.log_stall_events;
            c.commits_forced += cs.commits_forced;
            c.commits_piggybacked += cs.commits_piggybacked;
        }
        snap.set_counter("client_commits", c.commits);
        snap.set_counter("client_aborts", c.aborts);
        snap.set_counter("client_deadlock_victims", c.deadlock_victims);
        snap.set_counter("client_lock_timeouts", c.lock_timeouts);
        snap.set_counter("client_local_grants", c.local_grants);
        snap.set_counter("client_global_lock_requests", c.global_lock_requests);
        snap.set_counter("client_pages_shipped", c.pages_shipped);
        snap.set_counter("client_forced_flush_requests", c.forced_flush_requests);
        snap.set_counter("client_checkpoints", c.checkpoints);
        snap.set_counter("client_log_forces", c.log_forces);
        snap.set_counter("client_log_bytes", c.log_bytes);
        snap.set_counter("client_log_stall_events", c.log_stall_events);
        snap.set_counter("client_commits_forced", c.commits_forced);
        snap.set_counter("client_commits_piggybacked", c.commits_piggybacked);

        let n = self.net.snapshot();
        for (i, (&count, &bytes)) in n.counts.iter().zip(n.bytes.iter()).enumerate() {
            let name = NetSnapshot::kind_name(i);
            snap.set_counter(&format!("msg_{name}"), count);
            snap.set_counter(&format!("msg_{name}_bytes"), bytes);
        }
        snap.set_counter("net_total_messages", n.total_messages());
        snap.set_counter("net_total_bytes", n.total_bytes());

        // Socket transports additionally report REAL encoded frame
        // traffic next to the nominal accounting, same kind names under
        // a `wire_` prefix — E17 reads the ratio straight off these.
        if let Some(t) = &self.transport {
            let per_wire: Vec<NetSnapshot> = t.wires.iter().map(|w| w.snapshot()).collect();
            let w = per_wire
                .iter()
                .fold(NetSnapshot::default(), |acc, s| acc.merge(s));
            for (i, (&count, &bytes)) in w.counts.iter().zip(w.bytes.iter()).enumerate() {
                let name = NetSnapshot::kind_name(i);
                snap.set_counter(&format!("wire_{name}"), count);
                snap.set_counter(&format!("wire_{name}_bytes"), bytes);
            }
            snap.set_counter("wire_total_messages", w.total_messages());
            snap.set_counter("wire_total_bytes", w.total_bytes());
            if per_wire.len() > 1 {
                for (k, w) in per_wire.iter().enumerate() {
                    snap.set_counter(&format!("srv{k}_wire_total_messages"), w.total_messages());
                    snap.set_counter(&format!("srv{k}_wire_total_bytes"), w.total_bytes());
                }
            }
        }

        if let Some(disk) = &self.sim_disk {
            let (reads, writes, syncs) = disk.stats.snapshot();
            snap.set_counter("disk_reads", reads);
            snap.set_counter("disk_writes", writes);
            snap.set_counter("disk_syncs", syncs);
        }

        // Per-record-kind WAL byte accounting, summed across every client
        // log plus the server log (satellite obs for the strategy seam).
        let mut by_kind: std::collections::BTreeMap<&'static str, u64> = Default::default();
        for client in self.clients.iter().filter(|c| c.is_touched()) {
            for (kind, bytes) in client.wal_bytes_by_kind() {
                *by_kind.entry(kind).or_insert(0) += bytes;
            }
        }
        for server in &self.servers {
            for (kind, bytes) in server.wal_bytes_by_kind() {
                *by_kind.entry(kind).or_insert(0) += bytes;
            }
        }
        for (kind, bytes) in by_kind {
            snap.set_counter(&format!("wal_bytes_{kind}"), bytes);
        }

        // Flight-recorder pressure and the GLM contention profile: the
        // top-4 hottest pages by cumulative wait time, flattened into
        // rank-indexed counters so JSON consumers need no new schema.
        snap.set_counter("ring_dropped_events", fgl_obs::ring::dropped_events());
        snap.set_counter(
            "contention_pages_tracked",
            self.servers
                .iter()
                .map(|s| s.contention_pages_tracked() as u64)
                .sum(),
        );
        let mut hot: Vec<_> = self
            .servers
            .iter()
            .flat_map(|s| s.contention_top(4))
            .collect();
        hot.sort_by_key(|e| std::cmp::Reverse(e.1.wait_us));
        hot.truncate(4);
        for (rank, (page, c)) in hot.into_iter().enumerate() {
            snap.set_counter(&format!("hot_page_rank{rank}_page"), page.0);
            snap.set_counter(&format!("hot_page_rank{rank}_wait_us"), c.wait_us);
            snap.set_counter(&format!("hot_page_rank{rank}_waits"), c.waits);
            snap.set_counter(&format!("hot_page_rank{rank}_callbacks"), c.callbacks);
        }
        snap
    }

    /// Real encoded wire traffic, both directions (socket transports
    /// only — `None` under the in-process sim fabric).
    pub fn wire_snapshot(&self) -> Option<NetSnapshot> {
        self.transport.as_ref().map(|t| {
            t.wires
                .iter()
                .map(|w| w.snapshot())
                .fold(NetSnapshot::default(), |acc, s| acc.merge(&s))
        })
    }

    /// Attach one more client to a running system.
    pub fn add_client(&mut self) -> Arc<ClientCore> {
        let id = ClientId(self.clients.len() as u32 + 1);
        let metrics = self.server.metrics();
        let c = match &mut self.transport {
            None => {
                let api = route_partitions(
                    self.servers
                        .iter()
                        .map(|s| s.clone() as Arc<dyn ServerApi>)
                        .collect(),
                );
                ClientCore::new(id, api, self.net.clone())
            }
            Some(t) => {
                let remotes = t
                    .connect(id, metrics)
                    .expect("socket transport: connecting a new client failed");
                let api = route_partitions(
                    remotes
                        .into_iter()
                        .map(|r| r as Arc<dyn ServerApi>)
                        .collect(),
                );
                ClientCore::new(id, api, self.net.clone())
            }
        };
        self.clients.push(c.clone());
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn single_client_crud_roundtrip() {
        let sys = System::build(quiet_cfg(), 1).unwrap();
        let c = sys.client(0);
        let t = c.begin().unwrap();
        let page = c.create_page(t).unwrap();
        let a = c.insert(t, page, b"alpha").unwrap();
        let b = c.insert(t, page, b"beta!").unwrap();
        assert_eq!(c.read(t, a).unwrap(), b"alpha");
        c.write(t, a, b"ALPHA").unwrap();
        c.write_at(t, b, 0, b"B").unwrap();
        c.resize(t, b, 2).unwrap();
        assert_eq!(c.read(t, b).unwrap(), b"Be");
        c.remove(t, a).unwrap();
        assert!(c.read(t, a).is_err());
        c.commit(t).unwrap();
        // Next transaction still sees the committed state.
        let t2 = c.begin().unwrap();
        assert_eq!(c.read(t2, b).unwrap(), b"Be");
        c.commit(t2).unwrap();
    }

    #[test]
    fn abort_rolls_everything_back() {
        let sys = System::build(quiet_cfg(), 1).unwrap();
        let c = sys.client(0);
        let t = c.begin().unwrap();
        let page = c.create_page(t).unwrap();
        let a = c.insert(t, page, b"keep").unwrap();
        c.commit(t).unwrap();

        let t = c.begin().unwrap();
        c.write(t, a, b"temp").unwrap();
        let b = c.insert(t, page, b"gone").unwrap();
        c.abort(t).unwrap();

        let t = c.begin().unwrap();
        assert_eq!(c.read(t, a).unwrap(), b"keep");
        assert!(c.read(t, b).is_err(), "aborted insert must vanish");
        c.commit(t).unwrap();
    }

    #[test]
    fn savepoint_partial_rollback() {
        let sys = System::build(quiet_cfg(), 1).unwrap();
        let c = sys.client(0);
        let t = c.begin().unwrap();
        let page = c.create_page(t).unwrap();
        let a = c.insert(t, page, b"v0v0").unwrap();
        c.savepoint(t, "sp").unwrap();
        c.write(t, a, b"v1v1").unwrap();
        let extra = c.insert(t, page, b"extra").unwrap();
        c.rollback_to(t, "sp").unwrap();
        assert_eq!(c.read(t, a).unwrap(), b"v0v0");
        assert!(c.read(t, extra).is_err());
        // Transaction continues and commits the post-savepoint write.
        c.write(t, a, b"v2v2").unwrap();
        c.commit(t).unwrap();
        let t = c.begin().unwrap();
        assert_eq!(c.read(t, a).unwrap(), b"v2v2");
        c.commit(t).unwrap();
    }

    #[test]
    fn two_clients_share_data_via_callbacks() {
        let sys = System::build(quiet_cfg(), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let t = alice.begin().unwrap();
        let page = alice.create_page(t).unwrap();
        let obj = alice.insert(t, page, b"from-alice").unwrap();
        alice.commit(t).unwrap();

        // Bob reads (S request → alice downgrades, ships the page).
        let t = bob.begin().unwrap();
        assert_eq!(bob.read(t, obj).unwrap(), b"from-alice");
        bob.commit(t).unwrap();

        // Bob updates (X request → alice releases).
        let t = bob.begin().unwrap();
        bob.write(t, obj, b"from-bob!!").unwrap();
        bob.commit(t).unwrap();

        // Alice sees bob's committed update.
        let t = alice.begin().unwrap();
        assert_eq!(alice.read(t, obj).unwrap(), b"from-bob!!");
        alice.commit(t).unwrap();
    }

    #[test]
    fn concurrent_updates_to_different_objects_on_one_page() {
        let sys = System::build(quiet_cfg(), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let t = alice.begin().unwrap();
        let page = alice.create_page(t).unwrap();
        let oa = alice.insert(t, page, b"aaaa").unwrap();
        let ob = alice.insert(t, page, b"bbbb").unwrap();
        alice.commit(t).unwrap();

        // Both clients hold X locks on different objects of the same page
        // at the same time — the paper's headline concurrency.
        let ta = alice.begin().unwrap();
        let tb = bob.begin().unwrap();
        alice.write(ta, oa, b"AAAA").unwrap();
        bob.write(tb, ob, b"BBBB").unwrap();
        alice.commit(ta).unwrap();
        bob.commit(tb).unwrap();

        // A third view sees both updates merged.
        let t = alice.begin().unwrap();
        assert_eq!(alice.read(t, oa).unwrap(), b"AAAA");
        assert_eq!(alice.read(t, ob).unwrap(), b"BBBB");
        alice.commit(t).unwrap();
    }

    #[test]
    fn commit_ships_nothing_under_client_logging() {
        let sys = System::build(quiet_cfg(), 1).unwrap();
        let c = sys.client(0);
        let t = c.begin().unwrap();
        let page = c.create_page(t).unwrap();
        let obj = c.insert(t, page, b"data").unwrap();
        c.commit(t).unwrap();
        let before = sys.net.snapshot();
        let t = c.begin().unwrap();
        c.write(t, obj, b"more").unwrap();
        c.commit(t).unwrap();
        let delta = sys.net.snapshot().delta_since(&before);
        assert_eq!(
            delta.count(MsgKind::PageShip),
            0,
            "client-based logging must not ship pages at commit"
        );
        assert_eq!(delta.count(MsgKind::CommitLogShip), 0);
    }

    #[test]
    fn client_crash_recovery_restores_committed_state() {
        let sys = System::build(quiet_cfg(), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let t = alice.begin().unwrap();
        let page = alice.create_page(t).unwrap();
        let obj = alice.insert(t, page, b"committed!").unwrap();
        alice.commit(t).unwrap();

        // An uncommitted update is in flight when alice crashes. The
        // checkpoint forces the log, so the update's record survives the
        // crash and restart must roll it back.
        let t = alice.begin().unwrap();
        alice.write(t, obj, b"dirtydirty").unwrap();
        alice.checkpoint().unwrap();
        alice.crash();
        let report = alice.recover().unwrap();
        assert!(report.losers >= 1, "the in-flight txn must roll back");

        // Bob reads the committed value.
        let t = bob.begin().unwrap();
        assert_eq!(bob.read(t, obj).unwrap(), b"committed!");
        bob.commit(t).unwrap();
    }

    #[test]
    fn page_x_callbacks_to_one_holder_ship_as_one_batch() {
        let sys = System::build(quiet_cfg(), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let t = alice.begin().unwrap();
        let page = alice.create_page(t).unwrap();
        let oa = alice.insert(t, page, b"aaaa").unwrap();
        let ob = alice.insert(t, page, b"bbbb").unwrap();
        alice.commit(t).unwrap();
        let t = alice.begin().unwrap();
        alice.write(t, oa, b"AAAA").unwrap();
        alice.write(t, ob, b"BBBB").unwrap();
        alice.commit(t).unwrap();

        // Alice now caches X locks on both objects and a dirty copy of the
        // page. Bob's structural update needs page X, which calls back
        // *both* of alice's object locks — one batch message, one reply,
        // one shipped page copy carrying both committed updates.
        let before = sys.net.snapshot();
        let t = bob.begin().unwrap();
        bob.resize(t, oa, 2).unwrap();
        bob.commit(t).unwrap();
        let delta = sys.net.snapshot().delta_since(&before);
        assert_eq!(
            delta.count(MsgKind::Callback),
            1,
            "two callbacks to one holder must ship as one batch message"
        );
        assert_eq!(delta.count(MsgKind::CallbackReply), 1);

        // Bob's fetched copy observed both of alice's updates (the single
        // page copy in the batch reply was absorbed PSN-monotonically).
        let t = bob.begin().unwrap();
        assert_eq!(bob.read(t, oa).unwrap(), b"AA");
        assert_eq!(bob.read(t, ob).unwrap(), b"BBBB");
        bob.commit(t).unwrap();
    }

    #[test]
    fn crash_of_deferring_holder_does_not_strand_waiter() {
        let sys = System::build(quiet_cfg(), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let t = alice.begin().unwrap();
        let page = alice.create_page(t).unwrap();
        let oa = alice.insert(t, page, b"aaaa").unwrap();
        let ob = alice.insert(t, page, b"bbbb").unwrap();
        alice.commit(t).unwrap();

        // Alice's in-flight transaction holds X on both objects, so bob's
        // page-X request defers its whole callback batch behind her txn.
        let ta = alice.begin().unwrap();
        alice.write(ta, oa, b"dirt").unwrap();
        alice.write(ta, ob, b"dirt").unwrap();

        let bob2 = bob.clone();
        let waiter = std::thread::spawn(move || {
            let tb = bob2.begin().unwrap();
            bob2.resize(tb, oa, 2)?;
            bob2.commit(tb)
        });
        // Let bob park behind the deferred callbacks, then crash alice
        // mid-defer. Her exclusive locks survive the crash (§3.3), so the
        // grant stays pending until recovery resolves her loser txn and
        // releases them — at which point bob must wake, not time out.
        std::thread::sleep(std::time::Duration::from_millis(100));
        alice.crash();
        alice.recover().unwrap();
        waiter
            .join()
            .unwrap()
            .expect("waiter must be granted after the holder recovers");

        // Alice's uncommitted writes rolled back; bob's resize committed.
        let t = alice.begin().unwrap();
        assert_eq!(alice.read(t, oa).unwrap(), b"aa");
        assert_eq!(alice.read(t, ob).unwrap(), b"bbbb");
        alice.commit(t).unwrap();
    }

    #[test]
    fn group_commit_returns_only_durable_commits() {
        // Four concurrent committers on one client coalesce their log
        // forces (group commit); a commit that returned Ok must survive a
        // crash immediately after — the force it piggybacked on has to
        // cover its commit record, or this loses data.
        let sys = System::build(quiet_cfg(), 1).unwrap();
        let c = sys.client(0);
        let t = c.begin().unwrap();
        let page = c.create_page(t).unwrap();
        let objs: Vec<_> = (0..4)
            .map(|_| c.insert(t, page, b"....").unwrap())
            .collect();
        c.commit(t).unwrap();

        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = objs
            .iter()
            .map(|&obj| {
                let c = c.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let t = c.begin().unwrap();
                    c.write(t, obj, b"done").unwrap();
                    c.commit(t)
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap().expect("commit must succeed");
        }

        // Crash drops the log's non-durable tail. Every commit that
        // returned Ok above must still be there.
        c.crash();
        c.recover().unwrap();
        let t = c.begin().unwrap();
        for &obj in &objs {
            assert_eq!(
                c.read(t, obj).unwrap(),
                b"done",
                "a commit that returned Ok must be durable across a crash"
            );
        }
        c.commit(t).unwrap();
        let snap = sys.metrics_snapshot();
        let forced = snap
            .counters
            .get("client_commits_forced")
            .copied()
            .unwrap_or(0);
        let piggybacked = snap
            .counters
            .get("client_commits_piggybacked")
            .copied()
            .unwrap_or(0);
        assert_eq!(
            forced + piggybacked,
            6,
            "every commit is forced or piggybacked"
        );
    }

    fn strategy_cfg(kind: LoggingStrategyKind) -> SystemConfig {
        SystemConfig::default().with_logging_strategy(kind)
    }

    /// A committed update must survive a client crash + recovery under
    /// every logging strategy, and an in-flight one must roll back.
    #[test]
    fn every_strategy_commits_durably_and_rolls_back_losers() {
        for kind in LoggingStrategyKind::ALL {
            let sys = System::build(strategy_cfg(kind), 1).unwrap();
            let c = sys.client(0);
            let t = c.begin().unwrap();
            let page = c.create_page(t).unwrap();
            let obj = c.insert(t, page, b"durable!").unwrap();
            c.commit(t).unwrap();

            let t = c.begin().unwrap();
            c.write(t, obj, b"in-flite").unwrap();
            c.checkpoint().unwrap();
            c.crash();
            c.recover().unwrap();

            let t = c.begin().unwrap();
            assert_eq!(
                c.read(t, obj).unwrap(),
                b"durable!",
                "strategy {kind:?}: commit lost or loser not undone"
            );
            c.commit(t).unwrap();
        }
    }

    /// Rollback without a crash (plain abort) must work under the
    /// redo-only strategies, which undo from the in-memory stack rather
    /// than the log's undo chain.
    #[test]
    fn redo_only_abort_uses_memory_undo() {
        for kind in [LoggingStrategyKind::RedoOnly, LoggingStrategyKind::Hybrid] {
            let sys = System::build(strategy_cfg(kind), 1).unwrap();
            let c = sys.client(0);
            let t = c.begin().unwrap();
            let page = c.create_page(t).unwrap();
            let a = c.insert(t, page, b"keep").unwrap();
            c.commit(t).unwrap();

            let t = c.begin().unwrap();
            c.write(t, a, b"temp").unwrap();
            let b = c.insert(t, page, b"gone").unwrap();
            c.abort(t).unwrap();

            let t = c.begin().unwrap();
            assert_eq!(c.read(t, a).unwrap(), b"keep", "strategy {kind:?}");
            assert!(c.read(t, b).is_err(), "strategy {kind:?}: insert survived");
            c.commit(t).unwrap();
        }
    }

    /// REDO-only logging writes no before-images, so the same committed
    /// workload must produce a strictly smaller log than full ARIES.
    #[test]
    fn redo_only_logs_fewer_bytes_than_aries() {
        let run = |kind| {
            let sys = System::build(strategy_cfg(kind), 1).unwrap();
            let c = sys.client(0);
            let t = c.begin().unwrap();
            let page = c.create_page(t).unwrap();
            let obj = c.insert(t, page, &[7u8; 200]).unwrap();
            c.commit(t).unwrap();
            for _ in 0..20 {
                let t = c.begin().unwrap();
                c.write(t, obj, &[9u8; 200]).unwrap();
                c.commit(t).unwrap();
            }
            sys.client(0).stats().log_bytes
        };
        let aries = run(LoggingStrategyKind::ClientAries);
        let redo = run(LoggingStrategyKind::RedoOnly);
        assert!(
            redo < aries,
            "redo-only ({redo} B) must log less than aries ({aries} B)"
        );
    }

    /// The hybrid strategy picks physical (ARIES) logging for large
    /// payloads and redo-only for small ones, per transaction.
    #[test]
    fn hybrid_mixes_update_and_ext_records() {
        let sys = System::build(strategy_cfg(LoggingStrategyKind::Hybrid), 1).unwrap();
        let c = sys.client(0);
        let t = c.begin().unwrap();
        let page = c.create_page(t).unwrap();
        let small = c.insert(t, page, b"tiny").unwrap(); // <= threshold → redo-only
        let big = c.insert(t, page, &[1u8; 120]).unwrap(); // > threshold → physical
        c.commit(t).unwrap();
        for _ in 0..3 {
            let t = c.begin().unwrap();
            c.write(t, small, b"tidy").unwrap();
            c.commit(t).unwrap();
            let t = c.begin().unwrap();
            c.write(t, big, &[2u8; 120]).unwrap();
            c.commit(t).unwrap();
        }
        let snap = sys.metrics_snapshot();
        let ext = snap.counters.get("wal_bytes_ext").copied().unwrap_or(0);
        let upd = snap.counters.get("wal_bytes_update").copied().unwrap_or(0);
        assert!(ext > 0, "hybrid must emit ext (redo-only) records");
        assert!(upd > 0, "hybrid must emit physical update records");
    }

    /// wal_bytes_<kind> counters fold into the unified snapshot and cover
    /// the commit/update traffic of an ordinary ARIES run.
    #[test]
    fn metrics_snapshot_folds_wal_bytes_by_kind() {
        let sys = System::build(quiet_cfg(), 1).unwrap();
        let c = sys.client(0);
        let t = c.begin().unwrap();
        let page = c.create_page(t).unwrap();
        let obj = c.insert(t, page, b"data").unwrap();
        c.commit(t).unwrap();
        let t = c.begin().unwrap();
        c.write(t, obj, b"more").unwrap();
        c.commit(t).unwrap();
        let snap = sys.metrics_snapshot();
        for kind in ["begin", "update", "commit"] {
            let v = snap
                .counters
                .get(&format!("wal_bytes_{kind}"))
                .copied()
                .unwrap_or(0);
            assert!(v > 0, "wal_bytes_{kind} must be non-zero");
        }
    }

    /// Lazy client init: an idle client's hot maps stay unallocated and
    /// it stays out of the active set; the first `begin` pre-sizes the
    /// maps from config. Eager mode pays the footprint at construction.
    #[test]
    fn lazy_client_init_defers_and_presizes_hot_state() {
        let sys = System::build(quiet_cfg(), 2).unwrap();
        let (active, idle) = (sys.client(0), sys.client(1));
        assert!(!active.is_touched() && !idle.is_touched());
        assert_eq!(idle.hot_map_capacities(), (0, 0, 0));

        let t = active.begin().unwrap();
        let page = active.create_page(t).unwrap();
        let obj = active.insert(t, page, b"data").unwrap();
        active.commit(t).unwrap();
        let _ = obj;

        assert!(active.is_touched(), "begin marks the client active");
        assert!(!idle.is_touched(), "idle client stays out of the set");
        let (dpt, txns, in_transit) = active.hot_map_capacities();
        assert!(
            dpt >= quiet_cfg().client_cache_pages,
            "dpt pre-sized from client_cache_pages, got {dpt}"
        );
        assert!(txns >= 8 && in_transit >= 8);
        assert_eq!(idle.hot_map_capacities(), (0, 0, 0));

        // Eager mode: the same footprint exists before any transaction.
        let eager = System::build(quiet_cfg().with_lazy_client_init(false), 1).unwrap();
        let (dpt, txns, in_transit) = eager.client(0).hot_map_capacities();
        assert!(dpt >= quiet_cfg().client_cache_pages && txns >= 8 && in_transit >= 8);
    }

    /// The config is shared behind one `Arc`, not cloned per client.
    #[test]
    fn config_is_shared_not_cloned() {
        let sys = System::build(quiet_cfg(), 3).unwrap();
        let shared = sys.server.config_shared();
        // 1 (server) + 3 (clients) + 1 (this handle); sanity-bound it.
        assert!(Arc::strong_count(&shared) >= 5);
        assert!(std::ptr::eq(sys.server.config(), sys.client(2).config()));
    }

    /// The full sharing workload of `two_clients_share_data_via_callbacks`,
    /// but over real sockets: frames, correlation IDs, reverse RPCs and
    /// the wire-stats surface all get exercised without a second process.
    #[test]
    fn socket_transport_shares_data_and_counts_wire_bytes() {
        for kind in [TransportKind::Uds, TransportKind::Tcp] {
            let sys = System::build(quiet_cfg().with_transport(kind), 2).unwrap();
            let (alice, bob) = (sys.client(0), sys.client(1));
            let t = alice.begin().unwrap();
            let page = alice.create_page(t).unwrap();
            let obj = alice.insert(t, page, b"from-alice").unwrap();
            alice.commit(t).unwrap();

            let t = bob.begin().unwrap();
            assert_eq!(bob.read(t, obj).unwrap(), b"from-alice", "{kind:?}");
            bob.commit(t).unwrap();

            let t = bob.begin().unwrap();
            bob.write(t, obj, b"from-bob!!").unwrap();
            bob.commit(t).unwrap();

            let t = alice.begin().unwrap();
            assert_eq!(alice.read(t, obj).unwrap(), b"from-bob!!", "{kind:?}");
            alice.commit(t).unwrap();

            let wire = sys.wire_snapshot().expect("socket mode exposes wire stats");
            assert!(wire.total_messages() > 0, "{kind:?}: no frames counted");
            let snap = sys.metrics_snapshot();
            let wire_bytes = snap.counters.get("wire_total_bytes").copied().unwrap_or(0);
            let nominal = snap.counters.get("net_total_bytes").copied().unwrap_or(0);
            assert!(
                wire_bytes > 0,
                "{kind:?}: wire bytes must fold into snapshot"
            );
            assert!(
                nominal > 0,
                "{kind:?}: nominal accounting must keep running"
            );
        }
    }

    /// §3.3 over a socket: a crashed client re-registers over the same
    /// live connection, replays its private log and rolls back losers.
    #[test]
    fn socket_transport_client_crash_recovery() {
        let sys = System::build(quiet_cfg().with_transport(TransportKind::Uds), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let t = alice.begin().unwrap();
        let page = alice.create_page(t).unwrap();
        let obj = alice.insert(t, page, b"committed!").unwrap();
        alice.commit(t).unwrap();

        let t = alice.begin().unwrap();
        alice.write(t, obj, b"dirtydirty").unwrap();
        alice.checkpoint().unwrap();
        alice.crash();
        let report = alice.recover().unwrap();
        assert!(report.losers >= 1, "the in-flight txn must roll back");

        let t = bob.begin().unwrap();
        assert_eq!(bob.read(t, obj).unwrap(), b"committed!");
        bob.commit(t).unwrap();
    }

    #[test]
    fn server_crash_recovery_with_operational_clients() {
        let sys = System::build(quiet_cfg(), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let t = alice.begin().unwrap();
        let page = alice.create_page(t).unwrap();
        let oa = alice.insert(t, page, b"aaaa").unwrap();
        let ob = alice.insert(t, page, b"bbbb").unwrap();
        alice.commit(t).unwrap();
        // Bob takes over object b and commits an update.
        let t = bob.begin().unwrap();
        bob.write(t, ob, b"BOB!").unwrap();
        bob.commit(t).unwrap();

        sys.server.crash();
        let report = sys.server.restart_recovery().unwrap();
        let _ = report;

        // Committed state is intact after restart.
        let t = alice.begin().unwrap();
        assert_eq!(alice.read(t, oa).unwrap(), b"aaaa");
        assert_eq!(alice.read(t, ob).unwrap(), b"BOB!");
        alice.commit(t).unwrap();
    }

    /// Allocate one page per partition: with the shared round-robin
    /// allocation cursor the first two `create_page` calls land on
    /// different residue classes.
    fn two_pages_two_partitions(
        sys: &System,
        client: &Arc<ClientCore>,
    ) -> (fgl_common::PageId, fgl_common::PageId) {
        let t = client.begin().unwrap();
        let pa = client.create_page(t).unwrap();
        let pb = client.create_page(t).unwrap();
        client.commit(t).unwrap();
        assert_eq!(sys.servers.len(), 2);
        assert_ne!(
            pa.0 % 2,
            pb.0 % 2,
            "round-robin allocation must spread partitions"
        );
        assert!(sys.servers[(pa.0 % 2) as usize].owns_page(pa));
        assert!(sys.servers[(pb.0 % 2) as usize].owns_page(pb));
        (pa, pb)
    }

    /// Tentpole smoke: two server instances, a transaction spanning both,
    /// callback-mediated sharing across clients — all through one routed
    /// `ServerApi` handle.
    #[test]
    fn multi_instance_clients_share_across_partitions() {
        let sys = System::build(quiet_cfg().with_server_instances(2), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let (pa, pb) = two_pages_two_partitions(&sys, alice);

        // One transaction writes both partitions, committing atomically
        // from the client's single WAL force.
        let t = alice.begin().unwrap();
        let oa = alice.insert(t, pa, b"part-a").unwrap();
        let ob = alice.insert(t, pb, b"part-b").unwrap();
        alice.commit(t).unwrap();

        // Bob takes both over via callbacks, updating cross-partition.
        let t = bob.begin().unwrap();
        bob.write(t, oa, b"BOB-a!").unwrap();
        bob.write(t, ob, b"BOB-b!").unwrap();
        bob.commit(t).unwrap();

        let t = alice.begin().unwrap();
        assert_eq!(alice.read(t, oa).unwrap(), b"BOB-a!");
        assert_eq!(alice.read(t, ob).unwrap(), b"BOB-b!");
        alice.commit(t).unwrap();

        // Both instances actually served lock traffic.
        let snap = sys.metrics_snapshot();
        for k in 0..2 {
            let served = snap
                .counters
                .get(&format!("srv{k}_lock_requests"))
                .copied()
                .unwrap_or(0);
            assert!(served > 0, "instance {k} saw no lock traffic");
        }
    }

    /// Satellite 2: multi-instance shard counters nest as
    /// `srv{k}_shard{j}_*`; the flat legacy `shard{j}_*` names are
    /// reserved for single-instance systems; per-instance counters sum to
    /// the global `server_*` axis.
    #[test]
    fn multi_instance_metrics_nest_per_server_shards() {
        let sys = System::build(
            quiet_cfg().with_server_instances(2).with_server_shards(2),
            1,
        )
        .unwrap();
        let c = sys.client(0);
        let (pa, pb) = two_pages_two_partitions(&sys, c);
        let t = c.begin().unwrap();
        c.insert(t, pa, b"aaaa").unwrap();
        c.insert(t, pb, b"bbbb").unwrap();
        c.commit(t).unwrap();

        let snap = sys.metrics_snapshot();
        for k in 0..2 {
            for j in 0..2 {
                assert!(
                    snap.counters
                        .contains_key(&format!("srv{k}_shard{j}_lock_requests")),
                    "missing srv{k}_shard{j}_lock_requests"
                );
            }
        }
        assert!(
            !snap.counters.contains_key("shard0_lock_requests"),
            "flat shard names must not leak out of single-instance mode"
        );
        let total = snap.counters.get("server_lock_requests").copied().unwrap();
        let per: u64 = (0..2)
            .map(|k| {
                snap.counters
                    .get(&format!("srv{k}_lock_requests"))
                    .copied()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, per, "global axis must equal the instance sum");
    }

    /// The router composes with the socket transport: two server
    /// processes' worth of listeners, each with its own wire accounting.
    #[test]
    fn multi_instance_socket_transport_routes_frames() {
        let cfg = quiet_cfg()
            .with_transport(TransportKind::Uds)
            .with_server_instances(2);
        let sys = System::build(cfg, 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));

        // Socket mode gives each client its own allocation cursor, so
        // alice's first two pages still alternate partitions.
        let (pa, pb) = two_pages_two_partitions(&sys, alice);
        let t = alice.begin().unwrap();
        let oa = alice.insert(t, pa, b"sock-a").unwrap();
        let ob = alice.insert(t, pb, b"sock-b").unwrap();
        alice.commit(t).unwrap();

        let t = bob.begin().unwrap();
        assert_eq!(bob.read(t, oa).unwrap(), b"sock-a");
        assert_eq!(bob.read(t, ob).unwrap(), b"sock-b");
        bob.commit(t).unwrap();

        let snap = sys.metrics_snapshot();
        for k in 0..2 {
            let frames = snap
                .counters
                .get(&format!("srv{k}_wire_total_messages"))
                .copied()
                .unwrap_or(0);
            assert!(frames > 0, "partition {k} listener saw no frames");
        }
        let merged = sys.wire_snapshot().unwrap();
        let per: u64 = (0..2)
            .map(|k| {
                snap.counters
                    .get(&format!("srv{k}_wire_total_messages"))
                    .copied()
                    .unwrap()
            })
            .sum();
        assert_eq!(merged.total_messages(), per);
    }

    /// A deadlock cycle spanning two server instances: each instance's
    /// local wait graph holds one edge, only the coordinator's merged
    /// search can close the cycle — and it must kill the youngest
    /// transaction, exactly as a single-server cycle would.
    #[test]
    fn cross_server_deadlock_picks_youngest_victim() {
        let sys = System::build(quiet_cfg().with_server_instances(2), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let (pa, pb) = two_pages_two_partitions(&sys, alice);
        let t = alice.begin().unwrap();
        let oa = alice.insert(t, pa, b"aaaa").unwrap();
        let ob = alice.insert(t, pb, b"bbbb").unwrap();
        alice.commit(t).unwrap();

        // ta holds X on partition A's object and wants partition B's;
        // tb holds the opposite — a cycle no single instance can see.
        let ta = alice.begin().unwrap();
        let tb = bob.begin().unwrap();
        alice.write(ta, oa, b"AAAA").unwrap();
        bob.write(tb, ob, b"BBBB").unwrap();

        // Same youngest-victim rule the local search applies.
        let expected = if (ta.local_seq(), ta.0) > (tb.local_seq(), tb.0) {
            ta
        } else {
            tb
        };

        let barrier = std::sync::Barrier::new(2);
        let cross = |c: &Arc<ClientCore>, t, o| -> Result<()> {
            barrier.wait();
            c.write(t, o, b"SWAP")?;
            c.commit(t)
        };
        let (ra, rb) = std::thread::scope(|s| {
            let ha = s.spawn(|| cross(alice, ta, ob));
            let hb = s.spawn(|| cross(bob, tb, oa));
            (ha.join().unwrap(), hb.join().unwrap())
        });

        let (victim_res, survivor_res) = if expected == ta { (ra, rb) } else { (rb, ra) };
        let err = victim_res.expect_err("the youngest transaction must die");
        assert!(err.is_transaction_abort(), "unexpected error: {err:?}");
        survivor_res.expect("the older transaction must commit");

        // Killed by detection, not by the timeout backstop.
        let (a, b) = (alice.stats(), bob.stats());
        assert_eq!(a.deadlock_victims + b.deadlock_victims, 1);
        assert_eq!(a.lock_timeouts + b.lock_timeouts, 0);
    }

    /// One partition restarts (§3.4 gather against only the clients that
    /// touched it) while the other keeps serving uninterrupted.
    #[test]
    fn partition_restart_while_others_serve() {
        let sys = System::build(quiet_cfg().with_server_instances(2), 2).unwrap();
        let (alice, bob) = (sys.client(0), sys.client(1));
        let (pa, pb) = two_pages_two_partitions(&sys, alice);
        let t = alice.begin().unwrap();
        let oa = alice.insert(t, pa, b"stay").unwrap();
        let ob = alice.insert(t, pb, b"stay").unwrap();
        alice.commit(t).unwrap();

        let down = (pa.0 % 2) as usize;
        let live = 1 - down;
        sys.servers[down].crash();

        // The other partition keeps serving while its sibling is down.
        let t = bob.begin().unwrap();
        bob.write(t, ob, b"live").unwrap();
        bob.commit(t).unwrap();
        assert!(sys.servers[live].owns_page(pb));

        // The crashed partition recovers independently, gathering only
        // its own residue class from the clients that touched it.
        sys.servers[down].restart_recovery().unwrap();

        let t = alice.begin().unwrap();
        assert_eq!(alice.read(t, oa).unwrap(), b"stay");
        assert_eq!(alice.read(t, ob).unwrap(), b"live");
        alice.commit(t).unwrap();
    }
}
