//! System-wide configuration.
//!
//! The configuration doubles as the ablation surface: the baselines the
//! paper argues against in §3.1 and §4 (page-level locking, the
//! update-token scheme, ARIES/CSA-style server-based logging) are selected
//! here rather than implemented as separate systems, so every experiment
//! runs the same code paths except for the policy under study.

use crate::error::{FglError, Result};
use std::time::Duration;

/// Granularity of concurrency control (§2, §3.1, §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockGranularity {
    /// Object-level locks with page-level intention locks — the paper's
    /// primary setting.
    Object,
    /// Page-level locks only — the shared-disk / \[17\] baseline.
    Page,
    /// Adaptive (\[3\]): clients acquire page locks until a conflict forces
    /// de-escalation to object locks on that page.
    Adaptive,
}

/// How concurrent updates by different clients to the same page are
/// reconciled (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Multiple outstanding updates; the server (and callbacks) merge page
    /// copies — the paper's approach.
    MergeCopies,
    /// An exclusive "update token" (realized as a page-level X lock on any
    /// update) serializes updaters — the \[17\]/\[18\] baseline the paper calls
    /// communication-intensive.
    UpdateToken,
}

/// Which logging/recovery strategy the clients run (the `LoggingStrategy`
/// seam). Orthogonal to [`CommitPolicy`]: strategies other than the
/// default require `CommitPolicy::ClientLog`, because they reshape the
/// private-log record stream that the server-log baselines ship verbatim.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoggingStrategyKind {
    /// The paper's client-based ARIES: physical before/after images,
    /// three-pass (analysis/redo/undo) restart — the default.
    #[default]
    ClientAries,
    /// REDO-only logging with single-pass restart (Sauer & Härder,
    /// arXiv 1409.3682): update records carry no before-image; undo
    /// information lives in memory and is spilled to the log only when an
    /// uncommitted dirty page leaves the client.
    RedoOnly,
    /// Adaptive command/physical hybrid (Yao et al., arXiv 1503.03653):
    /// each transaction picks redo-only ("command-sized") or full physical
    /// records at its first update, based on payload size.
    Hybrid,
    /// No-force write-behind baseline: commit records are not forced
    /// individually; a deferred batched force makes whole cohorts durable
    /// at once (commit still blocks until its record is covered).
    WriteBehind,
}

impl LoggingStrategyKind {
    /// Stable snake_case name used for metrics keys and CLI/env parsing.
    pub fn name(&self) -> &'static str {
        match self {
            LoggingStrategyKind::ClientAries => "client_aries",
            LoggingStrategyKind::RedoOnly => "redo_only",
            LoggingStrategyKind::Hybrid => "hybrid",
            LoggingStrategyKind::WriteBehind => "write_behind",
        }
    }

    /// All strategies, in shootout order.
    pub const ALL: [LoggingStrategyKind; 4] = [
        LoggingStrategyKind::ClientAries,
        LoggingStrategyKind::RedoOnly,
        LoggingStrategyKind::Hybrid,
        LoggingStrategyKind::WriteBehind,
    ];
}

impl std::str::FromStr for LoggingStrategyKind {
    type Err = FglError;

    fn from_str(s: &str) -> Result<Self> {
        match s.replace('-', "_").as_str() {
            "client_aries" | "aries" => Ok(LoggingStrategyKind::ClientAries),
            "redo_only" => Ok(LoggingStrategyKind::RedoOnly),
            "hybrid" => Ok(LoggingStrategyKind::Hybrid),
            "write_behind" => Ok(LoggingStrategyKind::WriteBehind),
            other => Err(FglError::Config(format!(
                "unknown logging strategy {other:?} (expected client_aries, \
                 redo_only, hybrid, or write_behind)"
            ))),
        }
    }
}

/// Which transport carries the client↔server protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// The in-process counted fabric: requests are direct method calls,
    /// deterministic and byte-accounted — the default.
    #[default]
    Sim,
    /// Real TCP sockets (loopback in the harness): length-prefixed frames
    /// over one connection per client.
    Tcp,
    /// Unix-domain sockets, same framing as TCP.
    Uds,
}

impl TransportKind {
    /// Stable snake_case name used for metrics keys and CLI/env parsing.
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Sim => "sim",
            TransportKind::Tcp => "tcp",
            TransportKind::Uds => "uds",
        }
    }

    /// All transports, in comparison order (E17).
    pub const ALL: [TransportKind; 3] =
        [TransportKind::Sim, TransportKind::Tcp, TransportKind::Uds];
}

impl std::str::FromStr for TransportKind {
    type Err = FglError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "sim" => Ok(TransportKind::Sim),
            "tcp" => Ok(TransportKind::Tcp),
            "uds" | "unix" => Ok(TransportKind::Uds),
            other => Err(FglError::Config(format!(
                "unknown transport {other:?} (expected sim, tcp, or uds)"
            ))),
        }
    }
}

/// Where log records live and what commit ships (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitPolicy {
    /// Client-based logging: force the *private* log at commit; nothing is
    /// shipped to the server — the paper's approach.
    ClientLog,
    /// ARIES/CSA-shape baseline: ship all log records to the server at
    /// commit; the server forces its global log. Client crash recovery is
    /// then performed from the server log.
    ServerLog,
    /// Versant-shape baseline: ship all *modified pages* to the server at
    /// commit in addition to server logging.
    ShipPagesAtCommit,
}

/// Tunable parameters of a running system.
///
/// Defaults model a small workstation network: 4 KiB pages, modest caches,
/// and zero injected latency (pure algorithmic costs); benchmarks override
/// what they sweep.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Size of a database page in bytes.
    pub page_size: usize,
    /// Number of page frames in each client cache.
    pub client_cache_pages: usize,
    /// Number of page frames in the server buffer pool.
    pub server_cache_pages: usize,
    /// Capacity of each client's private log in bytes (circular).
    pub client_log_bytes: u64,
    /// Capacity of the server log in bytes (circular).
    pub server_log_bytes: u64,
    /// Lock granularity policy.
    pub granularity: LockGranularity,
    /// Concurrent-update reconciliation policy.
    pub update_policy: UpdatePolicy,
    /// Commit/logging policy.
    pub commit_policy: CommitPolicy,
    /// Client logging/recovery strategy (the `LoggingStrategy` seam).
    pub logging_strategy: LoggingStrategyKind,
    /// A client takes a fuzzy checkpoint after this many log records.
    pub client_checkpoint_every: u64,
    /// The server takes a fuzzy checkpoint after this many log records.
    pub server_checkpoint_every: u64,
    /// Lock-wait timeout backstop (deadlocks are normally found by the
    /// waits-for graph at the server).
    pub lock_timeout: Duration,
    /// Simulated latency added to every message delivery (one way).
    pub net_latency: Duration,
    /// Simulated latency added to every disk I/O (log force, page write).
    pub disk_latency: Duration,
    /// Number of independent server shards. Pages are partitioned by
    /// `PageId % server_shards`; each shard owns its slice of the lock
    /// table, buffer pool and DCT so requests on different pages never
    /// contend. `1` reproduces the unsharded server.
    pub server_shards: usize,
    /// Number of independent server *instances* (partitioned scale-out).
    /// Pages are partitioned across instances by `PageId %
    /// server_instances`; each instance is a full `ServerCore` — its own
    /// GLM shards, store partition, DCT, server log, checkpoints and §4.1
    /// commit-log ship — and clients route requests through a
    /// `PartitionedServer`. `1` reproduces the single-server system.
    pub server_instances: usize,
    /// Ship callbacks emitted by one GLM decision as one batch message
    /// per destination client, delivered to distinct holders in parallel
    /// (a grant blocked on N holders resolves after max(RTT) instead of
    /// sum(RTT)). `false` reproduces the one-callback-one-round-trip
    /// protocol for ablation.
    pub callback_batching: bool,
    /// Group commit: concurrent committers on one client coalesce into a
    /// single private-log force — a committer whose commit record is
    /// already covered by a cohort member's force piggybacks instead of
    /// forcing again. `false` forces once per commit.
    pub group_commit: bool,
    /// Per-thread flight-recorder ring capacity (events retained before
    /// the oldest is evicted). Raise it for trace-assembly runs that need
    /// the whole event window; evictions are counted in the
    /// `ring_dropped_events` metric either way.
    pub obs_ring_entries: usize,
    /// Defer building each client's heavyweight state (pre-sized cache
    /// frame table, hot transaction/DPT maps) until its first `begin`.
    /// With 100k simulated clients of which only a subset transact, the
    /// idle ones then cost almost nothing. `false` builds everything at
    /// construction — the pre-scaling behavior, kept for determinism
    /// ablation (state timing must never change protocol traffic).
    pub lazy_client_init: bool,
    /// Which transport carries the protocol: the in-process counted
    /// fabric (deterministic default) or real sockets (TCP/UDS) speaking
    /// the `fgl-net` frame codec. Socket transports ignore `net_latency`
    /// (the wire supplies its own) and cap `page_size` at 32 KiB (frame
    /// page-length fields are 16-bit).
    pub transport: TransportKind,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            page_size: 4096,
            client_cache_pages: 64,
            server_cache_pages: 256,
            client_log_bytes: 8 * 1024 * 1024,
            server_log_bytes: 32 * 1024 * 1024,
            granularity: LockGranularity::Object,
            update_policy: UpdatePolicy::MergeCopies,
            commit_policy: CommitPolicy::ClientLog,
            logging_strategy: LoggingStrategyKind::ClientAries,
            client_checkpoint_every: 2_000,
            server_checkpoint_every: 4_000,
            lock_timeout: Duration::from_secs(5),
            net_latency: Duration::ZERO,
            disk_latency: Duration::ZERO,
            server_shards: 1,
            server_instances: 1,
            callback_batching: true,
            group_commit: true,
            obs_ring_entries: 256,
            lazy_client_init: true,
            transport: TransportKind::Sim,
        }
    }
}

impl SystemConfig {
    /// Validate internal consistency. Called by the system builder.
    pub fn validate(&self) -> Result<()> {
        // Page offsets are 16-bit, which caps the page size at 64 KiB.
        if self.page_size < 128 || self.page_size > 1 << 16 {
            return Err(FglError::Config(format!(
                "page_size {} out of supported range [128, 64KiB]",
                self.page_size
            )));
        }
        if !self.page_size.is_power_of_two() {
            return Err(FglError::Config("page_size must be a power of two".into()));
        }
        if self.client_cache_pages == 0 || self.server_cache_pages == 0 {
            return Err(FglError::Config("cache sizes must be non-zero".into()));
        }
        if self.client_log_bytes < 64 * 1024 {
            return Err(FglError::Config(
                "client log must be at least 64 KiB".into(),
            ));
        }
        if self.server_log_bytes < 64 * 1024 {
            return Err(FglError::Config(
                "server log must be at least 64 KiB".into(),
            ));
        }
        if self.lock_timeout < Duration::from_millis(10) {
            return Err(FglError::Config("lock_timeout below 10ms".into()));
        }
        if self.server_shards == 0 || self.server_shards > 256 {
            return Err(FglError::Config(format!(
                "server_shards {} out of supported range [1, 256]",
                self.server_shards
            )));
        }
        if self.server_instances == 0 || self.server_instances > 64 {
            return Err(FglError::Config(format!(
                "server_instances {} out of supported range [1, 64]",
                self.server_instances
            )));
        }
        if self.obs_ring_entries < 16 || self.obs_ring_entries > 1 << 20 {
            return Err(FglError::Config(format!(
                "obs_ring_entries {} out of supported range [16, 1M]",
                self.obs_ring_entries
            )));
        }
        if self.transport != TransportKind::Sim && self.page_size > 32 * 1024 {
            return Err(FglError::Config(format!(
                "page_size {} exceeds the 32 KiB socket-transport cap \
                 (callback-frame page-length fields are 16-bit)",
                self.page_size
            )));
        }
        if self.logging_strategy != LoggingStrategyKind::ClientAries
            && self.commit_policy != CommitPolicy::ClientLog
        {
            return Err(FglError::Config(format!(
                "logging_strategy {:?} requires CommitPolicy::ClientLog \
                 (server-log baselines ship the default record stream)",
                self.logging_strategy
            )));
        }
        Ok(())
    }

    /// Builder-style setter for the lock granularity.
    pub fn with_granularity(mut self, g: LockGranularity) -> Self {
        self.granularity = g;
        self
    }

    /// Builder-style setter for the update policy.
    pub fn with_update_policy(mut self, p: UpdatePolicy) -> Self {
        self.update_policy = p;
        self
    }

    /// Builder-style setter for the commit policy.
    pub fn with_commit_policy(mut self, p: CommitPolicy) -> Self {
        self.commit_policy = p;
        self
    }

    /// Builder-style setter for the logging strategy.
    pub fn with_logging_strategy(mut self, s: LoggingStrategyKind) -> Self {
        self.logging_strategy = s;
        self
    }

    /// Builder-style setter for the server shard count.
    pub fn with_server_shards(mut self, n: usize) -> Self {
        self.server_shards = n;
        self
    }

    /// Builder-style setter for the server instance (partition) count.
    pub fn with_server_instances(mut self, n: usize) -> Self {
        self.server_instances = n;
        self
    }

    /// Builder-style setter for per-destination callback batching.
    pub fn with_callback_batching(mut self, on: bool) -> Self {
        self.callback_batching = on;
        self
    }

    /// Builder-style setter for group commit.
    pub fn with_group_commit(mut self, on: bool) -> Self {
        self.group_commit = on;
        self
    }

    /// Builder-style setter for the flight-recorder ring capacity.
    pub fn with_obs_ring_entries(mut self, entries: usize) -> Self {
        self.obs_ring_entries = entries;
        self
    }

    /// Builder-style setter for lazy per-client state construction.
    pub fn with_lazy_client_init(mut self, on: bool) -> Self {
        self.lazy_client_init = on;
        self
    }

    /// Builder-style setter for the transport backend.
    pub fn with_transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SystemConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_tiny_and_odd_page_sizes() {
        let mut c = SystemConfig {
            page_size: 64,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.page_size = 5000;
        assert!(c.validate().is_err());
        c.page_size = 8192;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_caches_and_tiny_logs() {
        let c = SystemConfig {
            client_cache_pages: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = SystemConfig {
            client_log_bytes: 1024,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn obs_ring_entries_bounds() {
        assert_eq!(SystemConfig::default().obs_ring_entries, 256);
        let mut c = SystemConfig::default().with_obs_ring_entries(8);
        assert!(c.validate().is_err());
        c.obs_ring_entries = (1 << 20) + 1;
        assert!(c.validate().is_err());
        c.obs_ring_entries = 65_536;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_setters_chain() {
        let c = SystemConfig::default()
            .with_granularity(LockGranularity::Page)
            .with_update_policy(UpdatePolicy::UpdateToken)
            .with_commit_policy(CommitPolicy::ServerLog)
            .with_server_shards(4)
            .with_callback_batching(false)
            .with_group_commit(false);
        assert_eq!(c.granularity, LockGranularity::Page);
        assert_eq!(c.update_policy, UpdatePolicy::UpdateToken);
        assert_eq!(c.commit_policy, CommitPolicy::ServerLog);
        assert_eq!(c.server_shards, 4);
        assert!(!c.callback_batching);
        assert!(!c.group_commit);
        let d = SystemConfig::default();
        assert!(d.callback_batching);
        assert!(d.group_commit);
        assert!(d.lazy_client_init);
        assert!(!d.clone().with_lazy_client_init(false).lazy_client_init);
    }

    #[test]
    fn logging_strategy_parses_and_defaults() {
        assert_eq!(
            SystemConfig::default().logging_strategy,
            LoggingStrategyKind::ClientAries
        );
        for k in LoggingStrategyKind::ALL {
            assert_eq!(k.name().parse::<LoggingStrategyKind>().unwrap(), k);
        }
        assert_eq!(
            "redo-only".parse::<LoggingStrategyKind>().unwrap(),
            LoggingStrategyKind::RedoOnly
        );
        assert!("paranoid".parse::<LoggingStrategyKind>().is_err());
    }

    #[test]
    fn non_default_strategy_requires_client_log() {
        let c = SystemConfig::default()
            .with_logging_strategy(LoggingStrategyKind::RedoOnly)
            .with_commit_policy(CommitPolicy::ServerLog);
        assert!(c.validate().is_err());
        let c = SystemConfig::default().with_logging_strategy(LoggingStrategyKind::WriteBehind);
        c.validate().unwrap();
    }

    #[test]
    fn transport_parses_and_defaults() {
        assert_eq!(SystemConfig::default().transport, TransportKind::Sim);
        for t in TransportKind::ALL {
            assert_eq!(t.name().parse::<TransportKind>().unwrap(), t);
        }
        assert_eq!("unix".parse::<TransportKind>().unwrap(), TransportKind::Uds);
        assert!("carrier-pigeon".parse::<TransportKind>().is_err());
    }

    #[test]
    fn socket_transport_caps_page_size() {
        let big = SystemConfig {
            page_size: 64 * 1024,
            ..Default::default()
        };
        big.validate().unwrap();
        let big_uds = big.clone().with_transport(TransportKind::Uds);
        assert!(big_uds.validate().is_err());
        let ok = SystemConfig::default().with_transport(TransportKind::Tcp);
        ok.validate().unwrap();
    }

    #[test]
    fn rejects_zero_or_excessive_instances() {
        assert_eq!(SystemConfig::default().server_instances, 1);
        let mut c = SystemConfig {
            server_instances: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.server_instances = 65;
        assert!(c.validate().is_err());
        c.server_instances = 4;
        assert!(c.validate().is_ok());
        assert_eq!(
            SystemConfig::default()
                .with_server_instances(2)
                .server_instances,
            2
        );
    }

    #[test]
    fn rejects_zero_or_excessive_shards() {
        let mut c = SystemConfig {
            server_shards: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.server_shards = 512;
        assert!(c.validate().is_err());
        c.server_shards = 8;
        assert!(c.validate().is_ok());
    }
}
