//! Common identifiers, error types and configuration shared by every crate
//! of the `fgl` system — a reproduction of *"Fine-granularity Locking and
//! Client-Based Logging for Distributed Architectures"* (Panagos, Biliris,
//! Jagadish, Rastogi — EDBT 1996).
//!
//! The crate is deliberately dependency-light: everything above it
//! (storage, WAL, lock managers, client, server) shares these vocabulary
//! types.

pub mod config;
pub mod error;
pub mod ids;
pub mod rng;

pub use config::{
    CommitPolicy, LockGranularity, LoggingStrategyKind, SystemConfig, TransportKind, UpdatePolicy,
};
pub use error::{FglError, Result};
pub use ids::{ClientId, Lsn, ObjectId, PageId, Psn, SlotId, TxnId};
