//! Common identifiers, error types and configuration shared by every crate
//! of the `fgl` system — a reproduction of *"Fine-granularity Locking and
//! Client-Based Logging for Distributed Architectures"* (Panagos, Biliris,
//! Jagadish, Rastogi — EDBT 1996).
//!
//! The crate is deliberately dependency-light: everything above it
//! (storage, WAL, lock managers, client, server) shares these vocabulary
//! types.

pub mod config;
pub mod error;
pub mod ids;
pub mod rng;

pub use config::{CommitPolicy, LockGranularity, SystemConfig, UpdatePolicy};
pub use error::{FglError, Result};
pub use ids::{ClientId, Lsn, ObjectId, PageId, Psn, SlotId, TxnId};

/// Protocol tracing for debugging: set `FGL_TRACE=1` to emit events on
/// stderr. Compiled in, gated by a once-checked env var.
pub fn trace_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("FGL_TRACE").is_some())
}

/// Emit one trace event if tracing is on.
#[macro_export]
macro_rules! fgl_trace {
    ($($arg:tt)*) => {
        if $crate::trace_enabled() {
            eprintln!("[fgl] {}", format!($($arg)*));
        }
    };
}
