//! Strongly-typed identifiers used throughout the system.
//!
//! The paper's vocabulary (§2):
//! * **PSN** — *page sequence number*, stored in every page header and
//!   incremented on every modification; the merge procedure produces
//!   `max(PSN_i, PSN_j) + 1` so that PSNs written into log records for the
//!   same object by different clients are monotone.
//! * **LSN** — *log sequence number*; by assumption the byte address of a
//!   log record in a client's private log file.
//! * Objects live inside pages; an [`ObjectId`] is a (page, slot) pair,
//!   mirroring classic page-server OODBs where object ids embed the page.

use std::fmt;

/// Identifier of a database page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

/// Slot index of an object within its page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u16);

/// Identifier of an object: the page holding it plus the slot inside that
/// page. Page-server systems ship whole pages, so the page component is the
/// unit of transfer while the object is the unit of locking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId {
    pub page: PageId,
    pub slot: SlotId,
}

/// Identifier of a client workstation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

/// Globally unique transaction identifier.
///
/// Transactions execute entirely at the client that started them (§2), so
/// uniqueness is achieved by embedding the client id in the high bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// Log sequence number: the address of a log record in a private log file.
/// `Lsn(0)` is reserved as "nil" (no record).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// Page sequence number (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Psn(pub u64);

impl PageId {
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl SlotId {
    pub const fn as_u16(self) -> u16 {
        self.0
    }
}

impl ObjectId {
    pub const fn new(page: PageId, slot: SlotId) -> Self {
        ObjectId { page, slot }
    }
}

impl ClientId {
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl TxnId {
    /// Compose a transaction id from the owning client and a local sequence
    /// number. The client occupies the top 32 bits so ids from different
    /// clients never collide and *older* transactions (smaller local
    /// sequence) compare smaller within one client.
    pub const fn compose(client: ClientId, local_seq: u32) -> Self {
        TxnId(((client.0 as u64) << 32) | local_seq as u64)
    }

    /// The client that started this transaction.
    pub const fn client(self) -> ClientId {
        ClientId((self.0 >> 32) as u32)
    }

    /// The client-local sequence number.
    pub const fn local_seq(self) -> u32 {
        self.0 as u32
    }
}

impl Lsn {
    /// The nil LSN: "no log record".
    pub const NIL: Lsn = Lsn(0);

    pub const fn is_nil(self) -> bool {
        self.0 == 0
    }

    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl Psn {
    /// PSN value of a freshly formatted, never-updated page.
    pub const ZERO: Psn = Psn(0);

    pub const fn next(self) -> Psn {
        Psn(self.0 + 1)
    }

    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The merge rule of §2: one greater than the maximum of the two copies'
    /// PSNs, which keeps PSNs strictly increasing even when both copies
    /// carry the same value.
    pub fn merge(a: Psn, b: Psn) -> Psn {
        Psn(a.0.max(b.0) + 1)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}.{:?}", self.page, self.slot)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.client().0, self.local_seq())
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nil() {
            write!(f, "LSN(nil)")
        } else {
            write!(f, "LSN({})", self.0)
        }
    }
}

impl fmt::Debug for Psn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PSN({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_composition_roundtrips() {
        let t = TxnId::compose(ClientId(7), 42);
        assert_eq!(t.client(), ClientId(7));
        assert_eq!(t.local_seq(), 42);
    }

    #[test]
    fn txn_ids_from_one_client_order_by_age() {
        let older = TxnId::compose(ClientId(3), 1);
        let younger = TxnId::compose(ClientId(3), 2);
        assert!(older < younger);
    }

    #[test]
    fn psn_merge_is_strictly_increasing() {
        // Even when both copies carry the same PSN (concurrent updaters),
        // the merged PSN must exceed both (§2).
        let merged = Psn::merge(Psn(5), Psn(5));
        assert_eq!(merged, Psn(6));
        let merged = Psn::merge(Psn(2), Psn(9));
        assert_eq!(merged, Psn(10));
    }

    #[test]
    fn nil_lsn_is_zero() {
        assert!(Lsn::NIL.is_nil());
        assert!(!Lsn(1).is_nil());
        assert_eq!(Lsn::default(), Lsn::NIL);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(format!("{}", PageId(3)), "P3");
        assert_eq!(format!("{}", ObjectId::new(PageId(3), SlotId(1))), "P3.s1");
        assert_eq!(format!("{}", TxnId::compose(ClientId(2), 5)), "T2.5");
    }
}
