//! Error handling for the whole system.

use crate::ids::{ObjectId, PageId, TxnId};
use std::fmt;
use std::io;

/// Convenient result alias used across all `fgl` crates.
pub type Result<T> = std::result::Result<T, FglError>;

/// The unified error type.
///
/// Transaction-visible outcomes (deadlock victim, explicit abort) are
/// errors so they propagate naturally out of operation call chains; the
/// client runtime converts them into a rollback.
#[derive(Debug)]
pub enum FglError {
    /// Underlying I/O failure (log disk, database disk).
    Io(io::Error),
    /// A page that was expected to exist could not be found.
    PageNotFound(PageId),
    /// An object that was expected to exist could not be found on its page.
    ObjectNotFound(ObjectId),
    /// Not enough free space on a page for an allocation or resize.
    PageFull {
        page: PageId,
        needed: usize,
        free: usize,
    },
    /// The transaction was chosen as a deadlock victim and must roll back.
    DeadlockVictim(TxnId),
    /// A lock request timed out (backstop for undetected distributed waits).
    LockTimeout(TxnId),
    /// The transaction was aborted (by the user or by the system).
    TxnAborted(TxnId),
    /// Operation on a transaction in the wrong state (e.g. update after commit).
    InvalidTxnState { txn: TxnId, state: &'static str },
    /// Named savepoint does not exist in the transaction.
    UnknownSavepoint(String),
    /// The client's private log is full and reclamation could not free space.
    LogFull,
    /// Corruption detected while decoding a page or log record.
    Corrupt(String),
    /// The peer (server or client) is down or the channel is closed.
    Disconnected(String),
    /// Violation of a protocol invariant — indicates a bug, surfaced loudly.
    Protocol(String),
    /// Configuration rejected.
    Config(String),
}

impl fmt::Display for FglError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FglError::Io(e) => write!(f, "i/o error: {e}"),
            FglError::PageNotFound(p) => write!(f, "page {p} not found"),
            FglError::ObjectNotFound(o) => write!(f, "object {o} not found"),
            FglError::PageFull { page, needed, free } => {
                write!(f, "page {page} full: needed {needed} bytes, {free} free")
            }
            FglError::DeadlockVictim(t) => write!(f, "transaction {t} chosen as deadlock victim"),
            FglError::LockTimeout(t) => write!(f, "lock request of transaction {t} timed out"),
            FglError::TxnAborted(t) => write!(f, "transaction {t} aborted"),
            FglError::InvalidTxnState { txn, state } => {
                write!(f, "transaction {txn} in invalid state: {state}")
            }
            FglError::UnknownSavepoint(name) => write!(f, "unknown savepoint {name:?}"),
            FglError::LogFull => write!(f, "private log full"),
            FglError::Corrupt(msg) => write!(f, "corruption detected: {msg}"),
            FglError::Disconnected(who) => write!(f, "disconnected: {who}"),
            FglError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            FglError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for FglError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FglError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FglError {
    fn from(e: io::Error) -> Self {
        FglError::Io(e)
    }
}

impl FglError {
    /// True for errors that terminate the transaction but leave the system
    /// healthy: the caller should roll back and may retry.
    pub fn is_transaction_abort(&self) -> bool {
        matches!(
            self,
            FglError::DeadlockVictim(_) | FglError::LockTimeout(_) | FglError::TxnAborted(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    #[test]
    fn abort_classification() {
        let t = TxnId::compose(ClientId(1), 1);
        assert!(FglError::DeadlockVictim(t).is_transaction_abort());
        assert!(FglError::LockTimeout(t).is_transaction_abort());
        assert!(FglError::TxnAborted(t).is_transaction_abort());
        assert!(!FglError::LogFull.is_transaction_abort());
        assert!(!FglError::PageNotFound(PageId(1)).is_transaction_abort());
    }

    #[test]
    fn io_error_wraps_with_source() {
        let e: FglError = io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }
}
