//! A tiny deterministic PRNG (SplitMix64 + xoshiro256**) used by the
//! workload generators and property tests.
//!
//! Experiments must be reproducible run-to-run regardless of thread
//! scheduling, so each simulated client derives its own stream from a
//! master seed instead of sharing a global generator.

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed the generator. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        DetRng { s }
    }

    /// Derive an independent stream for a sub-component (e.g. a client).
    pub fn fork(&mut self, stream: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.gen_range((hi - lo) as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Fill a byte slice with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(12345);
        let mut b = DetRng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = DetRng::new(7);
        for n in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.gen_range(n) < n);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = DetRng::new(99);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut master1 = DetRng::new(42);
        let mut master2 = DetRng::new(42);
        let mut f1 = master1.fork(3);
        let mut f2 = master2.fork(3);
        for _ in 0..50 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        let mut other = DetRng::new(42).fork(4);
        assert_ne!(f1.next_u64(), other.next_u64());
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = DetRng::new(5);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
