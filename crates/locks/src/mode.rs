//! Lock modes, compatibility, and the lock-target vocabulary.

use fgl_common::{ObjectId, PageId};

/// Object-level lock mode (the paper's fine granularity, §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjMode {
    S,
    X,
}

impl ObjMode {
    /// Is a holder in `self` compatible with another holder in `other`?
    pub fn compatible(self, other: ObjMode) -> bool {
        matches!((self, other), (ObjMode::S, ObjMode::S))
    }

    /// Does a held `self` already cover a request for `req`?
    pub fn covers(self, req: ObjMode) -> bool {
        self >= req
    }

    /// The page-level intention mode implied by an object request.
    pub fn intent(self) -> Mode {
        match self {
            ObjMode::S => Mode::IS,
            ObjMode::X => Mode::IX,
        }
    }

    pub fn as_page_mode(self) -> Mode {
        match self {
            ObjMode::S => Mode::S,
            ObjMode::X => Mode::X,
        }
    }
}

/// Page-level lock mode, including intents (standard hierarchy with SIX).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    IS,
    IX,
    S,
    SIX,
    X,
}

impl Mode {
    /// Standard hierarchical compatibility matrix (Gray's, with SIX).
    pub fn compatible(self, other: Mode) -> bool {
        use Mode::*;
        matches!(
            (self, other),
            (IS, IS)
                | (IS, IX)
                | (IS, S)
                | (IS, SIX)
                | (IX, IS)
                | (IX, IX)
                | (S, IS)
                | (S, S)
                | (SIX, IS)
        )
    }

    /// Least upper bound of two held modes (the lock table keeps one mode
    /// per client per page): IS < {IX, S} < SIX < X, lub(IX, S) = SIX.
    pub fn lub(self, other: Mode) -> Mode {
        use Mode::*;
        match (self, other) {
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
            (S, IX) | (IX, S) => SIX,
            (S, _) | (_, S) => S,
            (IX, _) | (_, IX) => IX,
            (IS, IS) => IS,
        }
    }

    /// Does a held `self` cover a request for `req`?
    pub fn covers(self, req: Mode) -> bool {
        self.lub(req) == self
    }

    /// True for the non-intent modes that actually read/write the page.
    pub fn is_real(self) -> bool {
        matches!(self, Mode::S | Mode::X)
    }
}

/// What a client asks the global lock manager for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// A fine-granularity object lock (§2). Carries its implied page
    /// intent.
    Object(ObjectId, ObjMode),
    /// A page lock: page-granularity configurations, structural
    /// (non-mergeable) updates (§3.1), and the initial request of the
    /// adaptive scheme.
    Page(PageId, ObjMode),
    /// Adaptive request (\[3\]): ask for the page, but when a page-level
    /// conflict exists, de-escalate the holders and fall back to the
    /// embedded object request instead.
    PageAdaptive(PageId, ObjMode, ObjectId),
}

impl LockTarget {
    pub fn page(&self) -> PageId {
        match self {
            LockTarget::Object(o, _) => o.page,
            LockTarget::Page(p, _) => *p,
            LockTarget::PageAdaptive(p, _, _) => *p,
        }
    }

    pub fn mode(&self) -> ObjMode {
        match self {
            LockTarget::Object(_, m)
            | LockTarget::Page(_, m)
            | LockTarget::PageAdaptive(_, m, _) => *m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::SlotId;

    #[test]
    fn obj_mode_compat() {
        assert!(ObjMode::S.compatible(ObjMode::S));
        assert!(!ObjMode::S.compatible(ObjMode::X));
        assert!(!ObjMode::X.compatible(ObjMode::S));
        assert!(!ObjMode::X.compatible(ObjMode::X));
    }

    #[test]
    fn obj_mode_covers() {
        assert!(ObjMode::X.covers(ObjMode::S));
        assert!(ObjMode::X.covers(ObjMode::X));
        assert!(ObjMode::S.covers(ObjMode::S));
        assert!(!ObjMode::S.covers(ObjMode::X));
    }

    #[test]
    fn page_mode_compat_matrix() {
        use Mode::*;
        let all = [IS, IX, S, SIX, X];
        let expected = [
            // IS  IX    S     SIX    X
            [true, true, true, true, false],     // IS
            [true, true, false, false, false],   // IX
            [true, false, true, false, false],   // S
            [true, false, false, false, false],  // SIX
            [false, false, false, false, false], // X
        ];
        for (i, &a) in all.iter().enumerate() {
            for (j, &b) in all.iter().enumerate() {
                assert_eq!(a.compatible(b), expected[i][j], "{a:?} vs {b:?}");
                // Symmetry.
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    #[test]
    fn lub_is_commutative_and_covering() {
        use Mode::*;
        let all = [IS, IX, S, SIX, X];
        for &a in &all {
            for &b in &all {
                assert_eq!(a.lub(b), b.lub(a));
                assert!(a.lub(b).covers(a));
                assert!(a.lub(b).covers(b));
            }
        }
        assert_eq!(S.lub(IX), SIX);
        assert_eq!(IS.lub(IX), IX);
        assert_eq!(IS.lub(S), S);
        assert_eq!(SIX.lub(X), X);
        assert_eq!(SIX.lub(S), SIX);
    }

    #[test]
    fn intents() {
        assert_eq!(ObjMode::S.intent(), Mode::IS);
        assert_eq!(ObjMode::X.intent(), Mode::IX);
    }

    #[test]
    fn target_accessors() {
        let o = ObjectId::new(PageId(4), SlotId(2));
        assert_eq!(LockTarget::Object(o, ObjMode::X).page(), PageId(4));
        assert_eq!(LockTarget::Page(PageId(9), ObjMode::S).page(), PageId(9));
        assert_eq!(
            LockTarget::PageAdaptive(PageId(4), ObjMode::X, o).mode(),
            ObjMode::X
        );
    }
}
