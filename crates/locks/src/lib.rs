//! Lock management for the `fgl` page server (§2, §3.2).
//!
//! * [`mode`] — lock modes (S/X plus the IS/IX intents) and their
//!   compatibility, and the [`mode::LockTarget`] vocabulary shared by the
//!   client and server.
//! * [`glm`] — the server's **global lock manager**: grants locks to
//!   clients (inter-transaction lock caching), produces **callback**
//!   actions on conflicts (callback locking, [11, 13]), triggers lock
//!   **de-escalation** on page-level conflicts (§3.2), and detects
//!   distributed deadlocks through a waits-for graph fed by deferred
//!   callback replies.
//! * [`llm`] — each client's **local lock manager**: caches granted locks
//!   across transactions, grants compatible requests locally, tracks which
//!   locks active transactions are using, and answers callbacks
//!   (immediately, or deferred until the using transaction terminates).
//!
//! The managers are pure state machines: no I/O, no channels. The server
//! and client runtimes drive them and ship the produced actions over the
//! network layer, which keeps every protocol rule unit-testable.

pub mod contention;
pub mod coordinator;
pub mod glm;
pub mod llm;
pub mod mode;
pub mod waitgraph;

pub use contention::{ContentionProfiler, PageContention};
pub use coordinator::{AbortHook, DeadlockCoordinator};
pub use glm::{CallbackAction, CallbackKind, CallbackReply, GlmCore, GlmEvent, LockOutcome};
pub use llm::{LlmCore, LocalDecision};
pub use mode::{LockTarget, Mode, ObjMode};
pub use waitgraph::WaitGraph;
