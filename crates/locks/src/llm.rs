//! Each client's **local lock manager** (LLM).
//!
//! §2: *"Each client has a local lock manager (LLM) that caches all
//! acquired locks and forwards the lock requests that cannot be granted
//! locally to the server."* Locks are retained across transaction
//! boundaries (inter-transaction caching) and given up only when the
//! server calls them back.
//!
//! The LLM also implements the client half of the callback protocol:
//!
//! * callbacks on locks no active transaction uses are honored
//!   immediately;
//! * callbacks on in-use locks are **deferred** until the using
//!   transactions terminate (strict 2PL), reporting the blockers so the
//!   GLM can detect deadlocks;
//! * **de-escalation** (§3.2) is always immediate: the LLM retains object
//!   locks for exactly the objects its active transactions have accessed
//!   (it keeps that access list for this purpose) and drops the page lock.
//!
//! While a callback is pending on a resource, new local acquisitions of
//! that resource are refused with [`LocalDecision::BlockedByCallback`] so
//! a stream of local transactions cannot starve the remote requester.

use crate::glm::{CallbackKind, CallbackReply};
use crate::mode::{LockTarget, ObjMode};
use fgl_common::config::{LockGranularity, UpdatePolicy};
use fgl_common::{ObjectId, PageId, TxnId};
use std::collections::HashMap;

/// Outcome of a local acquisition attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalDecision {
    /// Covered by a cached lock; usage registered.
    LocallyGranted,
    /// Forward this request to the server's GLM.
    NeedGlobal(LockTarget),
    /// A pending callback claims this resource; retry after the callback
    /// completes (the client runtime waits on its callback daemon).
    BlockedByCallback,
}

/// Lockable resource from the LLM's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Res {
    Page(PageId),
    Object(ObjectId),
}

/// The local lock manager. Plain state machine; the client runtime wraps
/// it in its own mutex.
pub struct LlmCore {
    granularity: LockGranularity,
    update_policy: UpdatePolicy,
    /// Cached page-level locks (real S/X — intents are a GLM concern).
    page_locks: HashMap<PageId, ObjMode>,
    /// Cached object-level locks.
    object_locks: HashMap<ObjectId, ObjMode>,
    /// Per active transaction: resources in use with the max mode used.
    txn_use: HashMap<TxnId, HashMap<Res, ObjMode>>,
    /// Callbacks deferred until their blocking transactions finish.
    deferred: Vec<CallbackKind>,
    /// Outstanding global lock requests: the request was sent to (or
    /// granted by) the GLM but the grant is not yet installed locally. A
    /// callback that overlaps one of these must defer — answering `Done`
    /// would let the server revoke a grant the application thread is
    /// about to rely on.
    inflight: HashMap<TxnId, LockTarget>,
}

impl LlmCore {
    pub fn new(granularity: LockGranularity, update_policy: UpdatePolicy) -> Self {
        LlmCore {
            granularity,
            update_policy,
            page_locks: HashMap::new(),
            object_locks: HashMap::new(),
            txn_use: HashMap::new(),
            deferred: Vec::new(),
            inflight: HashMap::new(),
        }
    }

    /// Register an outstanding global request for `txn` (call before
    /// contacting the server; overwrites any previous registration).
    pub fn begin_global_request(&mut self, txn: TxnId, target: LockTarget) {
        self.inflight.insert(txn, target);
    }

    /// The global request concluded (grant installed, or failed).
    pub fn end_global_request(&mut self, txn: TxnId) {
        self.inflight.remove(&txn);
    }

    /// Transactions with an in-flight global request overlapping the
    /// called-back resource. `min` filters downgrades (only X-mode
    /// requests block a downgrade).
    fn inflight_blockers(
        &self,
        page: PageId,
        slot: Option<fgl_common::SlotId>,
        min: ObjMode,
    ) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .inflight
            .iter()
            .filter(|(_, t)| {
                if t.page() != page || t.mode() < min {
                    return false;
                }
                match (t, slot) {
                    (LockTarget::Object(o, _), Some(s)) => o.slot == s,
                    // Page-level requests overlap everything on the page;
                    // object requests overlap page-level callbacks.
                    _ => true,
                }
            })
            .map(|(txn, _)| *txn)
            .collect();
        out.sort();
        out
    }

    /// The lock target the configured policies require for accessing
    /// `object` in `mode`. Structural (non-mergeable) updates need the
    /// whole page exclusively (§3.1); so does any update under the
    /// update-token baseline.
    pub fn target_for(&self, object: ObjectId, mode: ObjMode, structural: bool) -> LockTarget {
        if structural || (mode == ObjMode::X && self.update_policy == UpdatePolicy::UpdateToken) {
            return LockTarget::Page(object.page, ObjMode::X);
        }
        match self.granularity {
            LockGranularity::Object => LockTarget::Object(object, mode),
            LockGranularity::Page => LockTarget::Page(object.page, mode),
            LockGranularity::Adaptive => LockTarget::PageAdaptive(object.page, mode, object),
        }
    }

    fn register_use(&mut self, txn: TxnId, res: Res, mode: ObjMode) {
        let uses = self.txn_use.entry(txn).or_default();
        let m = uses.entry(res).or_insert(mode);
        if mode > *m {
            *m = mode;
        }
    }

    /// Does `txn` already use `res` at or above `min`?
    fn txn_uses(&self, txn: TxnId, res: Res, min: ObjMode) -> bool {
        self.txn_use
            .get(&txn)
            .and_then(|uses| uses.get(&res))
            .map(|m| *m >= min)
            .unwrap_or(false)
    }

    /// Does `txn` use the page itself or any object on it at/above `min`?
    fn txn_uses_page(&self, txn: TxnId, page: PageId, min: ObjMode) -> bool {
        self.txn_use
            .get(&txn)
            .map(|uses| {
                uses.iter().any(|(r, m)| {
                    *m >= min
                        && match r {
                            Res::Page(p) => *p == page,
                            Res::Object(o) => o.page == page,
                        }
                })
            })
            .unwrap_or(false)
    }

    /// Does any pending callback block `txn` acquiring `object` in `mode`?
    ///
    /// A transaction that is itself a *blocker* of the deferred callback
    /// (it already uses the resource) is exempt: the callback waits for
    /// it, so blocking its further accesses would deadlock the client
    /// against itself. Strict 2PL keeps the extended use correct —
    /// `end_txn` re-evaluates the blockers before completing the callback.
    fn callback_blocks(
        &self,
        txn: TxnId,
        object: ObjectId,
        mode: ObjMode,
        target: &LockTarget,
    ) -> bool {
        let page = object.page;
        self.deferred.iter().any(|kind| match kind {
            CallbackKind::ReleaseObject(o) => {
                *o == object && !self.txn_uses(txn, Res::Object(object), ObjMode::S)
            }
            CallbackKind::DowngradeObject(o) => {
                *o == object
                    && mode == ObjMode::X
                    && !self.txn_uses(txn, Res::Object(object), ObjMode::X)
            }
            CallbackKind::ReleasePage(p) => {
                *p == page && !self.txn_uses_page(txn, page, ObjMode::S)
            }
            CallbackKind::DowngradePage(p) => {
                *p == page
                    && (mode == ObjMode::X || matches!(target, LockTarget::Page(_, ObjMode::X)))
                    && !self.txn_uses_page(txn, page, ObjMode::X)
            }
            CallbackKind::DeEscalatePage(_) => false,
        })
    }

    /// Try to satisfy an access to `object` in `mode` for `txn`.
    /// `structural` marks non-mergeable updates (§3.1).
    pub fn acquire(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        mode: ObjMode,
        structural: bool,
    ) -> LocalDecision {
        let target = self.target_for(object, mode, structural);
        if self.callback_blocks(txn, object, mode, &target) {
            return LocalDecision::BlockedByCallback;
        }
        let covered = match &target {
            LockTarget::Object(o, m) => {
                self.object_locks
                    .get(o)
                    .map(|h| h.covers(*m))
                    .unwrap_or(false)
                    || self
                        .page_locks
                        .get(&o.page)
                        .map(|h| h.covers(*m))
                        .unwrap_or(false)
            }
            LockTarget::Page(p, m) | LockTarget::PageAdaptive(p, m, _) => self
                .page_locks
                .get(p)
                .map(|h| h.covers(*m))
                .unwrap_or(false),
        };
        if covered {
            self.register_use(txn, Res::Object(object), mode);
            if matches!(target, LockTarget::Page(..)) {
                self.register_use(txn, Res::Page(object.page), target.mode());
            }
            LocalDecision::LocallyGranted
        } else {
            LocalDecision::NeedGlobal(target)
        }
    }

    /// The server granted a (possibly adaptive-converted) target.
    pub fn global_granted(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        mode: ObjMode,
        granted: LockTarget,
    ) {
        match granted {
            LockTarget::Object(o, m) => {
                let e = self.object_locks.entry(o).or_insert(m);
                if m > *e {
                    *e = m;
                }
            }
            LockTarget::Page(p, m) | LockTarget::PageAdaptive(p, m, _) => {
                let e = self.page_locks.entry(p).or_insert(m);
                if m > *e {
                    *e = m;
                }
                self.register_use(txn, Res::Page(p), m);
            }
        }
        self.register_use(txn, Res::Object(object), mode);
    }

    /// Install a page lock granted out-of-band (page allocation grants
    /// the creator the page exclusively).
    pub fn grant_page_lock(&mut self, txn: TxnId, page: PageId, mode: ObjMode) {
        let e = self.page_locks.entry(page).or_insert(mode);
        if mode > *e {
            *e = mode;
        }
        self.register_use(txn, Res::Page(page), mode);
    }

    /// Register object usage after the fact (an insert learns its object
    /// id only once the slot is chosen; the usage pin makes de-escalation
    /// retain the new object's lock).
    pub fn register_object_use(&mut self, txn: TxnId, object: ObjectId, mode: ObjMode) {
        self.register_use(txn, Res::Object(object), mode);
    }

    /// Transactions currently using a resource at or above `min`.
    fn users(&self, res: Res, min: ObjMode) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .txn_use
            .iter()
            .filter(|(_, uses)| uses.get(&res).map(|m| *m >= min).unwrap_or(false))
            .map(|(t, _)| *t)
            .collect();
        out.sort();
        out
    }

    /// Transactions using the page itself or any object on it at or above
    /// `min`.
    fn page_users(&self, page: PageId, min: ObjMode) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .txn_use
            .iter()
            .filter(|(_, uses)| {
                uses.iter().any(|(r, m)| {
                    *m >= min
                        && match r {
                            Res::Page(p) => *p == page,
                            Res::Object(o) => o.page == page,
                        }
                })
            })
            .map(|(t, _)| *t)
            .collect();
        out.sort();
        out
    }

    /// Objects of `page` accessed by active transactions, with the max
    /// mode — what de-escalation retains (§3.2: "each LLM maintains a list
    /// of the objects accessed by local transactions").
    pub fn accessed_objects(&self, page: PageId) -> Vec<(ObjectId, ObjMode)> {
        let mut acc: HashMap<ObjectId, ObjMode> = HashMap::new();
        for uses in self.txn_use.values() {
            for (r, m) in uses {
                if let Res::Object(o) = r {
                    if o.page == page {
                        let e = acc.entry(*o).or_insert(*m);
                        if *m > *e {
                            *e = *m;
                        }
                    }
                }
            }
        }
        let mut out: Vec<(ObjectId, ObjMode)> = acc.into_iter().collect();
        out.sort_by_key(|(o, _)| (o.page.0, o.slot.0));
        out
    }

    /// Handle a callback from the server. Returns the reply and, when the
    /// reply is `Done`, has already applied the lock-state change.
    pub fn handle_callback(&mut self, kind: CallbackKind) -> CallbackReply {
        match kind {
            CallbackKind::ReleaseObject(o) => {
                let mut blockers = self.users(Res::Object(o), ObjMode::S);
                blockers.extend(self.inflight_blockers(o.page, Some(o.slot), ObjMode::S));
                blockers.sort();
                blockers.dedup();
                if blockers.is_empty() {
                    self.object_locks.remove(&o);
                    CallbackReply::Done { retained: vec![] }
                } else {
                    self.deferred.push(kind);
                    CallbackReply::Deferred { blockers }
                }
            }
            CallbackKind::DowngradeObject(o) => {
                let mut blockers = self.users(Res::Object(o), ObjMode::X);
                blockers.extend(self.inflight_blockers(o.page, Some(o.slot), ObjMode::X));
                blockers.sort();
                blockers.dedup();
                if blockers.is_empty() {
                    if let Some(m) = self.object_locks.get_mut(&o) {
                        *m = ObjMode::S;
                    }
                    CallbackReply::Done { retained: vec![] }
                } else {
                    self.deferred.push(kind);
                    CallbackReply::Deferred { blockers }
                }
            }
            CallbackKind::ReleasePage(p) => {
                let mut blockers = self.page_users(p, ObjMode::S);
                blockers.extend(self.inflight_blockers(p, None, ObjMode::S));
                blockers.sort();
                blockers.dedup();
                if blockers.is_empty() {
                    self.page_locks.remove(&p);
                    self.object_locks.retain(|o, _| o.page != p);
                    CallbackReply::Done { retained: vec![] }
                } else {
                    self.deferred.push(kind);
                    CallbackReply::Deferred { blockers }
                }
            }
            CallbackKind::DowngradePage(p) => {
                let mut blockers = self.page_users(p, ObjMode::X);
                blockers.extend(self.inflight_blockers(p, None, ObjMode::X));
                blockers.sort();
                blockers.dedup();
                if blockers.is_empty() {
                    if let Some(m) = self.page_locks.get_mut(&p) {
                        *m = ObjMode::S;
                    }
                    CallbackReply::Done { retained: vec![] }
                } else {
                    self.deferred.push(kind);
                    CallbackReply::Deferred { blockers }
                }
            }
            CallbackKind::DeEscalatePage(p) => {
                // A page-lock grant may be in flight (granted by the GLM,
                // not yet installed here): de-escalating now would void
                // it. Defer until the requesting transaction settles.
                let blockers = self.inflight_blockers(p, None, ObjMode::S);
                if !blockers.is_empty() {
                    self.deferred.push(kind);
                    return CallbackReply::Deferred { blockers };
                }
                // Otherwise immediate: keep object locks for the objects
                // in use, at the page lock's mode ceiling.
                let page_mode = self.page_locks.remove(&p).unwrap_or(ObjMode::S);
                let mut retained = self.accessed_objects(p);
                for (_, m) in retained.iter_mut() {
                    if *m > page_mode {
                        *m = page_mode;
                    }
                }
                for (o, m) in &retained {
                    let e = self.object_locks.entry(*o).or_insert(*m);
                    if *m > *e {
                        *e = *m;
                    }
                }
                CallbackReply::Done { retained }
            }
        }
    }

    /// A transaction terminated (commit or abort): its usage pins vanish;
    /// any deferred callback whose blockers are now gone completes. The
    /// returned `(kind, reply)` pairs must be forwarded to the server.
    pub fn end_txn(&mut self, txn: TxnId) -> Vec<(CallbackKind, CallbackReply)> {
        self.txn_use.remove(&txn);
        let pending = std::mem::take(&mut self.deferred);
        let mut completions = Vec::new();
        for kind in pending {
            let still_blocked = match kind {
                CallbackKind::ReleaseObject(o) => {
                    !self.users(Res::Object(o), ObjMode::S).is_empty()
                        || !self
                            .inflight_blockers(o.page, Some(o.slot), ObjMode::S)
                            .is_empty()
                }
                CallbackKind::DowngradeObject(o) => {
                    !self.users(Res::Object(o), ObjMode::X).is_empty()
                        || !self
                            .inflight_blockers(o.page, Some(o.slot), ObjMode::X)
                            .is_empty()
                }
                CallbackKind::ReleasePage(p) => {
                    !self.page_users(p, ObjMode::S).is_empty()
                        || !self.inflight_blockers(p, None, ObjMode::S).is_empty()
                }
                CallbackKind::DowngradePage(p) => {
                    !self.page_users(p, ObjMode::X).is_empty()
                        || !self.inflight_blockers(p, None, ObjMode::X).is_empty()
                }
                CallbackKind::DeEscalatePage(p) => {
                    !self.inflight_blockers(p, None, ObjMode::S).is_empty()
                }
            };
            if still_blocked {
                self.deferred.push(kind);
            } else {
                // Re-run the handler; with no blockers it applies and
                // returns Done.
                let reply = self.handle_callback(kind);
                debug_assert!(matches!(reply, CallbackReply::Done { .. }));
                completions.push((kind, reply));
            }
        }
        completions
    }

    /// Cached mode for an object, considering a covering page lock.
    pub fn cached_mode(&self, object: ObjectId) -> Option<ObjMode> {
        match (
            self.object_locks.get(&object),
            self.page_locks.get(&object.page),
        ) {
            (Some(&a), Some(&b)) => Some(a.max(b)),
            (Some(&a), None) => Some(a),
            (None, Some(&b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Does the client hold any lock touching `page`?
    pub fn holds_any_on_page(&self, page: PageId) -> bool {
        self.page_locks.contains_key(&page) || self.object_locks.keys().any(|o| o.page == page)
    }

    /// All cached locks, as GLM targets (reported to the server during its
    /// restart recovery, §3.4).
    pub fn all_locks(&self) -> Vec<LockTarget> {
        let mut out: Vec<LockTarget> = self
            .page_locks
            .iter()
            .map(|(&p, &m)| LockTarget::Page(p, m))
            .chain(
                self.object_locks
                    .iter()
                    .map(|(&o, &m)| LockTarget::Object(o, m)),
            )
            .collect();
        out.sort_by_key(|t| (t.page().0, format!("{t:?}")));
        out
    }

    /// Crash: volatile lock tables are lost (§3.3).
    pub fn clear(&mut self) {
        self.page_locks.clear();
        self.object_locks.clear();
        self.txn_use.clear();
        self.deferred.clear();
        self.inflight.clear();
    }

    /// Restart recovery reinstalls the exclusive locks held before the
    /// failure (§3.3).
    pub fn reinstall_exclusive(&mut self, locks: &[LockTarget]) {
        for l in locks {
            match l {
                LockTarget::Object(o, ObjMode::X) => {
                    self.object_locks.insert(*o, ObjMode::X);
                }
                LockTarget::Page(p, ObjMode::X) => {
                    self.page_locks.insert(*p, ObjMode::X);
                }
                _ => {}
            }
        }
    }

    /// Active transactions known to the LLM (diagnostics).
    pub fn active_txns(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self.txn_use.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::{ClientId, SlotId};

    const C: ClientId = ClientId(1);

    fn t(n: u32) -> TxnId {
        TxnId::compose(C, n)
    }

    fn obj(p: u64, s: u16) -> ObjectId {
        ObjectId::new(PageId(p), SlotId(s))
    }

    fn llm() -> LlmCore {
        LlmCore::new(LockGranularity::Object, UpdatePolicy::MergeCopies)
    }

    #[test]
    fn cold_cache_needs_global() {
        let mut l = llm();
        assert_eq!(
            l.acquire(t(1), obj(1, 0), ObjMode::S, false),
            LocalDecision::NeedGlobal(LockTarget::Object(obj(1, 0), ObjMode::S))
        );
    }

    #[test]
    fn cached_lock_grants_locally_across_txns() {
        let mut l = llm();
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::X,
            LockTarget::Object(obj(1, 0), ObjMode::X),
        );
        l.end_txn(t(1));
        // A later transaction reuses the cached X lock, for S or X.
        assert_eq!(
            l.acquire(t(2), obj(1, 0), ObjMode::S, false),
            LocalDecision::LocallyGranted
        );
        assert_eq!(
            l.acquire(t(2), obj(1, 0), ObjMode::X, false),
            LocalDecision::LocallyGranted
        );
    }

    #[test]
    fn cached_s_does_not_cover_x() {
        let mut l = llm();
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::S,
            LockTarget::Object(obj(1, 0), ObjMode::S),
        );
        assert_eq!(
            l.acquire(t(1), obj(1, 0), ObjMode::X, false),
            LocalDecision::NeedGlobal(LockTarget::Object(obj(1, 0), ObjMode::X))
        );
    }

    #[test]
    fn page_lock_covers_objects_on_page() {
        let mut l = LlmCore::new(LockGranularity::Adaptive, UpdatePolicy::MergeCopies);
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::X,
            LockTarget::PageAdaptive(PageId(1), ObjMode::X, obj(1, 0)),
        );
        assert_eq!(
            l.acquire(t(1), obj(1, 5), ObjMode::X, false),
            LocalDecision::LocallyGranted
        );
        assert_eq!(
            l.acquire(t(1), obj(2, 0), ObjMode::S, false),
            LocalDecision::NeedGlobal(LockTarget::PageAdaptive(PageId(2), ObjMode::S, obj(2, 0)))
        );
    }

    #[test]
    fn structural_updates_need_page_x() {
        let mut l = llm();
        assert_eq!(
            l.acquire(t(1), obj(1, 0), ObjMode::X, true),
            LocalDecision::NeedGlobal(LockTarget::Page(PageId(1), ObjMode::X))
        );
    }

    #[test]
    fn update_token_policy_escalates_writes() {
        let mut l = LlmCore::new(LockGranularity::Object, UpdatePolicy::UpdateToken);
        assert_eq!(
            l.acquire(t(1), obj(1, 0), ObjMode::X, false),
            LocalDecision::NeedGlobal(LockTarget::Page(PageId(1), ObjMode::X))
        );
        // Reads stay fine-grained.
        assert_eq!(
            l.acquire(t(1), obj(1, 0), ObjMode::S, false),
            LocalDecision::NeedGlobal(LockTarget::Object(obj(1, 0), ObjMode::S))
        );
    }

    #[test]
    fn callback_on_unused_lock_is_immediate() {
        let mut l = llm();
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::X,
            LockTarget::Object(obj(1, 0), ObjMode::X),
        );
        l.end_txn(t(1));
        let r = l.handle_callback(CallbackKind::ReleaseObject(obj(1, 0)));
        assert_eq!(r, CallbackReply::Done { retained: vec![] });
        assert_eq!(l.cached_mode(obj(1, 0)), None);
    }

    #[test]
    fn callback_on_in_use_lock_defers_until_end() {
        let mut l = llm();
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::X,
            LockTarget::Object(obj(1, 0), ObjMode::X),
        );
        let r = l.handle_callback(CallbackKind::ReleaseObject(obj(1, 0)));
        assert_eq!(
            r,
            CallbackReply::Deferred {
                blockers: vec![t(1)]
            }
        );
        // While deferred, new acquisitions are blocked.
        assert_eq!(
            l.acquire(t(2), obj(1, 0), ObjMode::S, false),
            LocalDecision::BlockedByCallback
        );
        // Transaction ends: the callback completes.
        let completions = l.end_txn(t(1));
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].0, CallbackKind::ReleaseObject(obj(1, 0)));
        assert_eq!(l.cached_mode(obj(1, 0)), None);
    }

    #[test]
    fn downgrade_callback_defers_only_on_x_use() {
        let mut l = llm();
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::X,
            LockTarget::Object(obj(1, 0), ObjMode::X),
        );
        l.end_txn(t(1));
        // Reader uses it in S: downgrade X->S can proceed immediately.
        assert_eq!(
            l.acquire(t(2), obj(1, 0), ObjMode::S, false),
            LocalDecision::LocallyGranted
        );
        let r = l.handle_callback(CallbackKind::DowngradeObject(obj(1, 0)));
        assert_eq!(r, CallbackReply::Done { retained: vec![] });
        assert_eq!(l.cached_mode(obj(1, 0)), Some(ObjMode::S));
    }

    #[test]
    fn deescalation_retains_in_use_objects() {
        let mut l = LlmCore::new(LockGranularity::Adaptive, UpdatePolicy::MergeCopies);
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::X,
            LockTarget::PageAdaptive(PageId(1), ObjMode::X, obj(1, 0)),
        );
        // txn also reads object 2 via the page lock.
        assert_eq!(
            l.acquire(t(1), obj(1, 2), ObjMode::S, false),
            LocalDecision::LocallyGranted
        );
        let r = l.handle_callback(CallbackKind::DeEscalatePage(PageId(1)));
        assert_eq!(
            r,
            CallbackReply::Done {
                retained: vec![(obj(1, 0), ObjMode::X), (obj(1, 2), ObjMode::S)]
            }
        );
        // Page lock gone, object locks remain.
        assert_eq!(l.cached_mode(obj(1, 0)), Some(ObjMode::X));
        assert_eq!(l.cached_mode(obj(1, 2)), Some(ObjMode::S));
        assert_eq!(l.cached_mode(obj(1, 9)), None);
    }

    #[test]
    fn release_page_defers_on_any_use() {
        let mut l = LlmCore::new(LockGranularity::Page, UpdatePolicy::MergeCopies);
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::S,
            LockTarget::Page(PageId(1), ObjMode::S),
        );
        let r = l.handle_callback(CallbackKind::ReleasePage(PageId(1)));
        assert_eq!(
            r,
            CallbackReply::Deferred {
                blockers: vec![t(1)]
            }
        );
        let completions = l.end_txn(t(1));
        assert_eq!(completions.len(), 1);
        assert!(!l.holds_any_on_page(PageId(1)));
    }

    #[test]
    fn crash_clear_and_reinstall() {
        let mut l = llm();
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::X,
            LockTarget::Object(obj(1, 0), ObjMode::X),
        );
        l.global_granted(
            t(1),
            obj(2, 0),
            ObjMode::S,
            LockTarget::Object(obj(2, 0), ObjMode::S),
        );
        l.clear();
        assert_eq!(l.cached_mode(obj(1, 0)), None);
        l.reinstall_exclusive(&[
            LockTarget::Object(obj(1, 0), ObjMode::X),
            LockTarget::Page(PageId(3), ObjMode::X),
        ]);
        assert_eq!(l.cached_mode(obj(1, 0)), Some(ObjMode::X));
        assert_eq!(l.cached_mode(obj(3, 7)), Some(ObjMode::X));
    }

    #[test]
    fn all_locks_reports_everything() {
        let mut l = llm();
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::X,
            LockTarget::Object(obj(1, 0), ObjMode::X),
        );
        l.global_granted(
            t(1),
            obj(2, 0),
            ObjMode::S,
            LockTarget::Page(PageId(2), ObjMode::S),
        );
        let locks = l.all_locks();
        assert_eq!(locks.len(), 2);
        assert!(locks.contains(&LockTarget::Object(obj(1, 0), ObjMode::X)));
        assert!(locks.contains(&LockTarget::Page(PageId(2), ObjMode::S)));
    }

    #[test]
    fn inflight_request_defers_callbacks() {
        let mut l = llm();
        // txn 1 has an X request in flight for object (1,0): a release
        // callback racing the grant must defer, not comply.
        l.begin_global_request(t(1), LockTarget::Object(obj(1, 0), ObjMode::X));
        let r = l.handle_callback(CallbackKind::ReleaseObject(obj(1, 0)));
        assert_eq!(
            r,
            CallbackReply::Deferred {
                blockers: vec![t(1)]
            }
        );
        // Grant lands; usage registered; request concluded.
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::X,
            LockTarget::Object(obj(1, 0), ObjMode::X),
        );
        l.end_global_request(t(1));
        // Transaction ends: the deferred callback now completes.
        let completions = l.end_txn(t(1));
        assert_eq!(completions.len(), 1);
        assert_eq!(l.cached_mode(obj(1, 0)), None);
    }

    #[test]
    fn inflight_on_other_object_does_not_defer() {
        let mut l = llm();
        l.global_granted(
            t(9),
            obj(1, 1),
            ObjMode::X,
            LockTarget::Object(obj(1, 1), ObjMode::X),
        );
        l.end_txn(t(9));
        l.begin_global_request(t(1), LockTarget::Object(obj(1, 0), ObjMode::X));
        // Callback for a different slot: unaffected by the in-flight
        // request.
        let r = l.handle_callback(CallbackKind::ReleaseObject(obj(1, 1)));
        assert_eq!(r, CallbackReply::Done { retained: vec![] });
    }

    #[test]
    fn inflight_page_request_defers_page_callbacks() {
        let mut l = LlmCore::new(LockGranularity::Page, UpdatePolicy::MergeCopies);
        l.begin_global_request(t(1), LockTarget::Page(PageId(1), ObjMode::X));
        let r = l.handle_callback(CallbackKind::ReleasePage(PageId(1)));
        assert_eq!(
            r,
            CallbackReply::Deferred {
                blockers: vec![t(1)]
            }
        );
        // S-mode inflight does not block a downgrade.
        let mut l2 = LlmCore::new(LockGranularity::Page, UpdatePolicy::MergeCopies);
        l2.begin_global_request(t(2), LockTarget::Page(PageId(1), ObjMode::S));
        let r = l2.handle_callback(CallbackKind::DowngradePage(PageId(1)));
        assert_eq!(r, CallbackReply::Done { retained: vec![] });
    }

    #[test]
    fn deferred_callback_with_two_blockers_waits_for_both() {
        let mut l = llm();
        l.global_granted(
            t(1),
            obj(1, 0),
            ObjMode::S,
            LockTarget::Object(obj(1, 0), ObjMode::S),
        );
        l.acquire(t(2), obj(1, 0), ObjMode::S, false);
        let r = l.handle_callback(CallbackKind::ReleaseObject(obj(1, 0)));
        assert_eq!(
            r,
            CallbackReply::Deferred {
                blockers: vec![t(1), t(2)]
            }
        );
        assert!(l.end_txn(t(1)).is_empty(), "t2 still blocks");
        let completions = l.end_txn(t(2));
        assert_eq!(completions.len(), 1);
    }
}
