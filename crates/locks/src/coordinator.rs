//! Cross-instance deadlock coordination for the multi-server page
//! service.
//!
//! Each server instance keeps its own process-local [`WaitGraph`] exactly
//! as before; a deadlock cycle can nonetheless thread through pages owned
//! by *different instances* (txn A waits on a page of instance 0 while
//! txn B waits on a page of instance 1). The [`DeadlockCoordinator`] is
//! the lightweight merge point: every member graph exports its waits-for
//! edges, the coordinator unions them on demand, and the cycle search —
//! the very same youngest-victim DFS the single-instance graph runs —
//! executes over the merged adjacency. Victims are therefore chosen by
//! the same `(local_seq, raw id)` policy regardless of how many
//! instances the cycle spans, which keeps the sim fabric deterministic.
//!
//! Merges are keyed on a **deferral epoch**: every member-graph mutation
//! bumps a shared counter, and the merged adjacency is cached until the
//! epoch moves. A detection pass that races no mutation reuses the last
//! merge instead of re-exporting every graph.
//!
//! Victim teardown crosses instances through registered **abort hooks**:
//! the instance whose GLM detected the cycle handles its local waiters as
//! usual and then asks the coordinator to broadcast, which invokes every
//! *other* member's hook (registered by the server runtime; the hook
//! hunts the victim's parked waiter on that instance and cancels it).
//! Hooks run with no coordinator lock held, so they may re-enter the
//! coordinator freely.
//!
//! Locking order: `cache → members → graph.inner`. Graphs never call
//! into the coordinator while holding their inner lock (mutations only
//! touch the epoch atomic), so the order is acyclic.

use crate::waitgraph::{victim_in, WaitGraph};
use fgl_common::TxnId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cross-instance victim teardown callback. Invoked with no coordinator
/// lock held; must be idempotent (the victim may already be gone).
pub type AbortHook = Box<dyn Fn(TxnId) + Send + Sync>;

struct Member {
    graph: Arc<WaitGraph>,
    abort: AbortHook,
}

struct MergedCache {
    /// Epoch the cached adjacency was merged at; `u64::MAX` = never.
    epoch: u64,
    adj: HashMap<TxnId, HashSet<TxnId>>,
}

/// The merge point for N instances' waits-for graphs. One per system;
/// instances register their graph plus an abort hook at wiring time.
pub struct DeadlockCoordinator {
    members: Mutex<Vec<Arc<Member>>>,
    /// Bumped by every member-graph mutation (deferral registered, queue
    /// republished, waiter removed, …) — the merge invalidation key.
    epoch: AtomicU64,
    merge_passes: AtomicU64,
    cache: Mutex<MergedCache>,
}

impl Default for DeadlockCoordinator {
    fn default() -> Self {
        DeadlockCoordinator {
            members: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
            merge_passes: AtomicU64::new(0),
            cache: Mutex::new(MergedCache {
                epoch: u64::MAX,
                adj: HashMap::new(),
            }),
        }
    }
}

impl DeadlockCoordinator {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Enroll one instance: its wait graph joins the merged cycle search
    /// (the graph's own `find_victim` starts delegating here), and
    /// `abort` is invoked for victims detected by *other* members.
    /// Returns the member id the instance passes to
    /// [`Self::broadcast_abort`] to skip itself.
    pub fn register(self: &Arc<Self>, graph: Arc<WaitGraph>, abort: AbortHook) -> usize {
        graph.attach_coordinator(self.clone());
        let mut members = self.members.lock();
        members.push(Arc::new(Member { graph, abort }));
        self.epoch.fetch_add(1, Ordering::Release);
        members.len() - 1
    }

    /// Current deferral epoch (diagnostics).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of full merge passes run so far (diagnostics — detection
    /// passes between mutations reuse the cached merge).
    pub fn merge_passes(&self) -> u64 {
        self.merge_passes.load(Ordering::Relaxed)
    }

    /// A member graph mutated: invalidate the cached merge.
    pub(crate) fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The merged cycle search: union every member's exported edges
    /// (cached per epoch) and run the shared youngest-victim DFS.
    pub(crate) fn find_victim(&self, start: TxnId) -> Option<TxnId> {
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut cache = self.cache.lock();
        if cache.epoch != epoch {
            let members: Vec<Arc<Member>> = self.members.lock().clone();
            let mut adj: HashMap<TxnId, HashSet<TxnId>> = HashMap::new();
            for m in &members {
                m.graph.export_edges_into(&mut adj);
            }
            cache.epoch = epoch;
            cache.adj = adj;
            self.merge_passes.fetch_add(1, Ordering::Relaxed);
        }
        victim_in(&cache.adj, start)
    }

    /// Tear the victim down on every member except `except` (the
    /// instance that detected the cycle handles its own waiters inline).
    /// Hooks run outside every coordinator lock and must be idempotent.
    pub fn broadcast_abort(&self, victim: TxnId, except: usize) {
        let members: Vec<Arc<Member>> = self.members.lock().clone();
        for (i, m) in members.iter().enumerate() {
            if i != except {
                (m.abort)(victim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::{ClientId, PageId};
    use std::sync::atomic::AtomicUsize;

    fn t(c: u32, seq: u32) -> TxnId {
        TxnId::compose(ClientId(c), seq)
    }

    #[test]
    fn merges_edges_across_member_graphs() {
        let coord = DeadlockCoordinator::new();
        let g0 = Arc::new(WaitGraph::new());
        let g1 = Arc::new(WaitGraph::new());
        coord.register(g0.clone(), Box::new(|_| {}));
        coord.register(g1.clone(), Box::new(|_| {}));
        // Half the cycle lives in each instance's graph: neither local
        // graph alone contains it.
        g0.add_deferrals(t(1, 5), &[t(2, 9)]);
        g1.add_deferrals(t(2, 9), &[t(1, 5)]);
        assert_eq!(g0.find_victim(t(1, 5)), Some(t(2, 9)), "youngest dies");
        assert_eq!(g1.find_victim(t(2, 9)), Some(t(2, 9)));
    }

    #[test]
    fn queue_edges_merge_too() {
        let coord = DeadlockCoordinator::new();
        let g0 = Arc::new(WaitGraph::new());
        let g1 = Arc::new(WaitGraph::new());
        coord.register(g0.clone(), Box::new(|_| {}));
        coord.register(g1.clone(), Box::new(|_| {}));
        g0.add_deferrals(t(1, 1), &[t(2, 2)]);
        g1.publish_queue_edges(PageId(7), vec![(t(2, 2), t(1, 1))]);
        assert_eq!(g0.find_victim(t(1, 1)), Some(t(2, 2)));
        // Removing the queue contribution breaks the cycle.
        g1.publish_queue_edges(PageId(7), Vec::new());
        assert_eq!(g0.find_victim(t(1, 1)), None);
    }

    #[test]
    fn epoch_caches_merges_between_mutations() {
        let coord = DeadlockCoordinator::new();
        let g0 = Arc::new(WaitGraph::new());
        coord.register(g0.clone(), Box::new(|_| {}));
        g0.add_deferrals(t(1, 1), &[t(2, 2)]);
        let _ = g0.find_victim(t(1, 1));
        let after_first = coord.merge_passes();
        let _ = g0.find_victim(t(1, 1));
        assert_eq!(
            coord.merge_passes(),
            after_first,
            "no mutation between passes → cached merge reused"
        );
        g0.add_deferrals(t(2, 2), &[t(1, 1)]);
        let _ = g0.find_victim(t(1, 1));
        assert_eq!(coord.merge_passes(), after_first + 1);
    }

    #[test]
    fn broadcast_abort_skips_the_detecting_member() {
        let calls = Arc::new(AtomicUsize::new(0));
        let coord = DeadlockCoordinator::new();
        let g0 = Arc::new(WaitGraph::new());
        let g1 = Arc::new(WaitGraph::new());
        let c0 = calls.clone();
        let me = coord.register(
            g0,
            Box::new(move |_| {
                c0.fetch_add(100, Ordering::SeqCst);
            }),
        );
        let c1 = calls.clone();
        coord.register(
            g1,
            Box::new(move |_| {
                c1.fetch_add(1, Ordering::SeqCst);
            }),
        );
        coord.broadcast_abort(t(1, 1), me);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "only the non-detecting member's hook runs"
        );
    }
}
