//! Lock-contention profiler: which pages are hot, and how hot.
//!
//! The GLM sees every queued wait and every callback it issues, but its
//! own state is transient — once a grant resolves, the wait is gone. This
//! profiler accumulates, per page, the **cumulative wait time** of
//! requests that queued on it and the **callback fan-out** it caused, so
//! the server can answer "which page's callback storm stalled the run?"
//! with a top-N ranking instead of a global histogram.
//!
//! Pure state machine like the rest of the crate: the caller supplies
//! timestamps (`now_us`), so tests can drive it with a manual clock and
//! the crate stays free of clock/obs dependencies.

use crate::mode::LockTarget;
use fgl_common::{PageId, TxnId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Accumulated contention for one page.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageContention {
    /// Total µs transactions spent queued on this page.
    pub wait_us: u64,
    /// Number of waits that queued on this page.
    pub waits: u64,
    /// Callbacks issued for this page.
    pub callbacks: u64,
}

/// Per-page contention accumulator (see module docs).
#[derive(Default)]
pub struct ContentionProfiler {
    /// txn → (page it is queued on, queue-entry timestamp). A txn waits
    /// on at most one target at a time.
    inflight: Mutex<HashMap<TxnId, (PageId, u64)>>,
    pages: Mutex<HashMap<PageId, PageContention>>,
}

impl ContentionProfiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// A request queued behind a conflict.
    pub fn on_queue(&self, txn: TxnId, target: &LockTarget, now_us: u64) {
        self.inflight.lock().insert(txn, (target.page(), now_us));
    }

    /// The queued request resolved (grant, victim or cancel). Idempotent
    /// and a no-op for txns that never queued.
    pub fn on_resolve(&self, txn: TxnId, now_us: u64) {
        let Some((page, since)) = self.inflight.lock().remove(&txn) else {
            return;
        };
        let mut pages = self.pages.lock();
        let c = pages.entry(page).or_default();
        c.wait_us += now_us.saturating_sub(since);
        c.waits += 1;
    }

    /// A callback went out for `page`.
    pub fn on_callback(&self, page: PageId) {
        self.pages.lock().entry(page).or_default().callbacks += 1;
    }

    /// Number of distinct pages that ever saw a wait or a callback.
    pub fn pages_tracked(&self) -> usize {
        self.pages.lock().len()
    }

    /// The `n` hottest pages by cumulative wait time (callback fan-out
    /// breaks ties), hottest first.
    pub fn top_n(&self, n: usize) -> Vec<(PageId, PageContention)> {
        let mut v: Vec<(PageId, PageContention)> =
            self.pages.lock().iter().map(|(p, c)| (*p, *c)).collect();
        v.sort_by(|a, b| {
            (b.1.wait_us, b.1.callbacks, b.1.waits)
                .cmp(&(a.1.wait_us, a.1.callbacks, a.1.waits))
                .then(a.0 .0.cmp(&b.0 .0))
        });
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::ObjMode;
    use fgl_common::{ObjectId, SlotId};

    fn page_target(p: u64) -> LockTarget {
        LockTarget::Object(
            ObjectId {
                page: PageId(p),
                slot: SlotId(0),
            },
            ObjMode::X,
        )
    }

    #[test]
    fn ranks_by_cumulative_wait() {
        let prof = ContentionProfiler::new();
        prof.on_queue(TxnId(1), &page_target(10), 100);
        prof.on_resolve(TxnId(1), 400); // page 10: 300us
        prof.on_queue(TxnId(2), &page_target(20), 100);
        prof.on_resolve(TxnId(2), 200); // page 20: 100us
        prof.on_queue(TxnId(3), &page_target(10), 500);
        prof.on_resolve(TxnId(3), 600); // page 10: +100us
        prof.on_callback(PageId(20));
        let top = prof.top_n(2);
        assert_eq!(top[0].0, PageId(10));
        assert_eq!(
            top[0].1,
            PageContention {
                wait_us: 400,
                waits: 2,
                callbacks: 0
            }
        );
        assert_eq!(top[1].0, PageId(20));
        assert_eq!(top[1].1.callbacks, 1);
        assert_eq!(prof.pages_tracked(), 2);
    }

    #[test]
    fn resolve_without_queue_is_a_noop() {
        let prof = ContentionProfiler::new();
        prof.on_resolve(TxnId(9), 1000);
        prof.on_resolve(TxnId(9), 2000);
        assert_eq!(prof.pages_tracked(), 0);
        assert!(prof.top_n(4).is_empty());
    }
}
