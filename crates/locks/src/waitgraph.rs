//! The process-global **waits-for graph** backing distributed deadlock
//! detection.
//!
//! With the server's hot path sharded by page partition, each shard owns
//! an independent [`GlmCore`](crate::glm::GlmCore) slice of the lock
//! table — but a deadlock cycle can thread through pages living on
//! *different* shards (txn A waits on a page in shard 0 while txn B waits
//! on a page in shard 1). Detection therefore runs on one shared graph
//! that every shard feeds:
//!
//! * **deferral edges** — waiter txn → blocking txns named in deferred
//!   callback replies — are written directly;
//! * **queue edges** — a waiter behind an earlier conflicting waiter in a
//!   page's FIFO queue waits for that waiter's transaction — are
//!   *republished per page* whenever a shard mutates that page's waiter
//!   queue. A page maps to exactly one shard, so publications never race
//!   on the same key.
//!
//! Locking discipline: a shard always acquires its own lock-table mutex
//! **before** touching the graph, and the graph never calls back into a
//! shard — the ordering `shard → graph` is acyclic, so cross-shard
//! detection adds no deadlock risk of its own. The victim policy is the
//! one the unsharded GLM used: the youngest cycle member, by
//! `(local_seq, raw id)`.

use crate::coordinator::DeadlockCoordinator;
use fgl_common::{PageId, TxnId};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

#[derive(Default)]
struct Inner {
    /// Stored deferral edges: waiting txn → blocking txns.
    deferral: HashMap<TxnId, HashSet<TxnId>>,
    /// Queue-order edges, keyed by the page whose waiter queue induced
    /// them (waiter txn → earlier conflicting waiter's txn).
    queue: HashMap<PageId, Vec<(TxnId, TxnId)>>,
}

/// Shared waits-for graph. One instance per server, shared by all GLM
/// shards through an `Arc`.
#[derive(Default)]
pub struct WaitGraph {
    inner: Mutex<Inner>,
    /// When this graph belongs to one instance of a multi-server system,
    /// cycle searches delegate to the coordinator's merged adjacency.
    /// Stored outside `inner` so it survives [`WaitGraph::clear`] across
    /// a server crash.
    coordinator: OnceLock<Arc<DeadlockCoordinator>>,
}

/// The youngest-victim cycle search shared by the single-instance graph
/// and the cross-instance coordinator: DFS from `start` over `adj`; on a
/// cycle through `start`, pick the youngest member (largest local
/// sequence, tie-broken by raw id).
pub(crate) fn victim_in(adj: &HashMap<TxnId, HashSet<TxnId>>, start: TxnId) -> Option<TxnId> {
    let mut stack = vec![(start, vec![start])];
    let mut visited: HashSet<TxnId> = HashSet::new();
    while let Some((node, path)) = stack.pop() {
        if let Some(nexts) = adj.get(&node) {
            for &n in nexts {
                if n == start {
                    return path.iter().copied().max_by_key(|t| (t.local_seq(), t.0));
                }
                if visited.insert(n) {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push((n, p));
                }
            }
        }
    }
    None
}

impl WaitGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record deferral edges `txn → b` for every blocker (self-edges are
    /// dropped).
    pub fn add_deferrals(&self, txn: TxnId, blockers: &[TxnId]) {
        let mut inner = self.inner.lock();
        let e = inner.deferral.entry(txn).or_default();
        for b in blockers {
            if *b != txn {
                e.insert(*b);
            }
        }
        drop(inner);
        self.bump();
    }

    /// A queued request was granted: the txn no longer waits, so its
    /// outgoing deferral edges go away (it may still block others).
    pub fn remove_waiter_row(&self, txn: TxnId) {
        self.inner.lock().deferral.remove(&txn);
        self.bump();
    }

    /// Forget a transaction entirely (abort, timeout, deadlock victim):
    /// drop its outgoing edges and remove it from every blocker set.
    pub fn forget_txn(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        inner.deferral.remove(&txn);
        for edges in inner.deferral.values_mut() {
            edges.remove(&txn);
        }
        drop(inner);
        self.bump();
    }

    /// Replace the queue edges contributed by `page` (the owning shard
    /// calls this after any waiter-queue change; an empty list clears the
    /// page's contribution).
    pub fn publish_queue_edges(&self, page: PageId, edges: Vec<(TxnId, TxnId)>) {
        let mut inner = self.inner.lock();
        if edges.is_empty() {
            inner.queue.remove(&page);
        } else {
            inner.queue.insert(page, edges);
        }
        drop(inner);
        self.bump();
    }

    /// Find a deadlock victim for a cycle through `start`. Standalone,
    /// the search runs over this graph's own edges; attached to a
    /// [`DeadlockCoordinator`], it runs over the merged adjacency of
    /// every member instance so cycles spanning servers are caught by
    /// the same youngest-victim policy.
    pub fn find_victim(&self, start: TxnId) -> Option<TxnId> {
        if let Some(coord) = self.coordinator.get() {
            return coord.find_victim(start);
        }
        let mut graph = HashMap::new();
        self.export_edges_into(&mut graph);
        victim_in(&graph, start)
    }

    /// Union this graph's deferral and queue edges into `adj` (the
    /// coordinator's merge step; also the local search's snapshot).
    pub(crate) fn export_edges_into(&self, adj: &mut HashMap<TxnId, HashSet<TxnId>>) {
        let inner = self.inner.lock();
        for (&from, tos) in &inner.deferral {
            adj.entry(from).or_default().extend(tos.iter().copied());
        }
        for edges in inner.queue.values() {
            for &(from, to) in edges {
                adj.entry(from).or_default().insert(to);
            }
        }
    }

    /// Join a multi-server system's merged cycle search. Idempotent;
    /// only the first attachment sticks.
    pub(crate) fn attach_coordinator(&self, coord: Arc<DeadlockCoordinator>) {
        let _ = self.coordinator.set(coord);
    }

    /// Drop every edge — a server crash wipes all volatile lock state,
    /// the graph included. The coordinator attachment survives: the
    /// restarted instance re-joins the merged search with an empty
    /// contribution.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.deferral.clear();
        inner.queue.clear();
        drop(inner);
        self.bump();
    }

    fn bump(&self) {
        if let Some(coord) = self.coordinator.get() {
            coord.bump_epoch();
        }
    }

    /// Diagnostics: number of distinct waiting transactions with stored
    /// deferral edges plus pages contributing queue edges.
    pub fn edge_sources(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.deferral.len(), inner.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::ClientId;

    fn t(c: u32, seq: u32) -> TxnId {
        TxnId::compose(ClientId(c), seq)
    }

    #[test]
    fn no_edges_no_victim() {
        let g = WaitGraph::new();
        assert_eq!(g.find_victim(t(1, 1)), None);
    }

    #[test]
    fn deferral_cycle_picks_youngest() {
        let g = WaitGraph::new();
        g.add_deferrals(t(1, 10), &[t(2, 99)]);
        g.add_deferrals(t(2, 99), &[t(1, 10)]);
        assert_eq!(g.find_victim(t(1, 10)), Some(t(2, 99)));
    }

    #[test]
    fn cycle_spanning_deferral_and_queue_edges() {
        let g = WaitGraph::new();
        // t1 -> t2 via a deferral, t2 -> t1 via a queue edge on another
        // page — the cross-shard shape.
        g.add_deferrals(t(1, 5), &[t(2, 7)]);
        g.publish_queue_edges(PageId(9), vec![(t(2, 7), t(1, 5))]);
        assert_eq!(g.find_victim(t(1, 5)), Some(t(2, 7)));
    }

    #[test]
    fn forget_breaks_cycle() {
        let g = WaitGraph::new();
        g.add_deferrals(t(1, 1), &[t(2, 2)]);
        g.add_deferrals(t(2, 2), &[t(1, 1)]);
        g.forget_txn(t(2, 2));
        assert_eq!(g.find_victim(t(1, 1)), None);
    }

    #[test]
    fn republish_replaces_page_contribution() {
        let g = WaitGraph::new();
        g.publish_queue_edges(PageId(1), vec![(t(1, 1), t(2, 2))]);
        g.add_deferrals(t(2, 2), &[t(1, 1)]);
        assert!(g.find_victim(t(1, 1)).is_some());
        g.publish_queue_edges(PageId(1), Vec::new());
        assert_eq!(g.find_victim(t(1, 1)), None);
    }
}
