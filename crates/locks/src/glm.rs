//! The server's **global lock manager** (GLM).
//!
//! The GLM grants locks to *clients* (inter-transaction lock caching, §2):
//! once a client holds a lock, its LLM re-grants it locally until the
//! server calls it back. Conflicts therefore turn into **callback
//! actions** sent to the holding clients (callback locking \[11, 13\]):
//!
//! * object-level conflict, S requested → holder *downgrades* X→S (§3.2);
//! * object-level conflict, X requested → holders *release* (§3.2);
//! * page-level conflict → holders **de-escalate** their page locks into
//!   object locks for the objects their transactions actually use (§3.2);
//! * page-granularity configurations use release/downgrade of page locks
//!   instead (the \[17\]-style baseline).
//!
//! A callback may be *deferred* when the holder's transaction is still
//! using the lock (strict two-phase locking); the deferral reply names the
//! blocking transactions, which feed the **waits-for graph** used for
//! distributed deadlock detection. Victims are the youngest transactions
//! in a cycle.
//!
//! The GLM is a pure state machine: every entry point returns the list of
//! [`GlmEvent`]s (callbacks to send, grants to deliver, victims to abort)
//! for the server runtime to act on.

use crate::mode::{LockTarget, Mode, ObjMode};
use crate::waitgraph::WaitGraph;
use fgl_common::{ClientId, ObjectId, PageId, SlotId, TxnId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A callback request the server must send to a client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CallbackAction {
    pub to: ClientId,
    pub kind: CallbackKind,
}

/// What the called-back client is asked to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CallbackKind {
    /// Release an object lock entirely (conflicting X request).
    ReleaseObject(ObjectId),
    /// Downgrade an object X lock to S (conflicting S request).
    DowngradeObject(ObjectId),
    /// Release a page lock (page-granularity X request).
    ReleasePage(PageId),
    /// Downgrade a page X lock to S (page-granularity S request).
    DowngradePage(PageId),
    /// Replace a page lock by object locks for the objects in use (§3.2).
    DeEscalatePage(PageId),
}

impl CallbackKind {
    pub fn page(&self) -> PageId {
        match self {
            CallbackKind::ReleaseObject(o) | CallbackKind::DowngradeObject(o) => o.page,
            CallbackKind::ReleasePage(p)
            | CallbackKind::DowngradePage(p)
            | CallbackKind::DeEscalatePage(p) => *p,
        }
    }
}

/// A client's answer to a callback.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallbackReply {
    /// The client complied. For de-escalation, `retained` lists the object
    /// locks it kept for its in-progress transactions.
    Done { retained: Vec<(ObjectId, ObjMode)> },
    /// The lock is in use by the named transactions; the client will
    /// comply when they terminate.
    Deferred { blockers: Vec<TxnId> },
}

/// Immediate outcome of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// Granted synchronously. `first_exclusive_on_page` is true when this
    /// grant is the client's first exclusive lock touching the page — the
    /// §3.2 trigger for inserting a DCT entry.
    Granted { first_exclusive_on_page: bool },
    /// Queued; a later [`GlmEvent::Grant`] will deliver it.
    Queued,
}

/// Asynchronous effects for the server runtime to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlmEvent {
    /// Send a callback request to a client.
    SendCallback(CallbackAction),
    /// A queued request is now granted.
    Grant {
        client: ClientId,
        txn: TxnId,
        target: LockTarget,
        first_exclusive_on_page: bool,
    },
    /// Deadlock: tell this client to abort this transaction.
    AbortTxn { client: ClientId, txn: TxnId },
}

#[derive(Clone, Debug)]
struct Waiter {
    client: ClientId,
    txn: TxnId,
    target: LockTarget,
}

#[derive(Default)]
struct PageLocks {
    /// One page-level mode per client (lub of page lock and object
    /// intents).
    page_holders: HashMap<ClientId, Mode>,
    /// Object-level holders per slot.
    object_holders: HashMap<SlotId, HashMap<ClientId, ObjMode>>,
    waiters: VecDeque<Waiter>,
    /// Callbacks already sent and not yet answered (dedup).
    outstanding: HashSet<CallbackAction>,
}

impl PageLocks {
    fn is_empty(&self) -> bool {
        self.page_holders.is_empty()
            && self.object_holders.values().all(|m| m.is_empty())
            && self.waiters.is_empty()
            && self.outstanding.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conflict {
    /// Another client's page-level lock conflicts.
    PageLevel(ClientId, Mode),
    /// Another client's object lock conflicts.
    ObjLevel(ClientId, SlotId, ObjMode),
}

/// The global lock manager — one instance per server shard (pages are
/// partitioned across shards by the runtime; the unsharded server is the
/// one-shard case).
#[derive(Default)]
pub struct GlmCore {
    pages: HashMap<PageId, PageLocks>,
    /// Waits-for graph (deferral + queue edges). Shared across every GLM
    /// shard of a server so deadlock cycles spanning shards are detected;
    /// a standalone `GlmCore::new()` owns a private instance.
    graph: Arc<WaitGraph>,
    /// Clients currently marked crashed (their callbacks queue at the
    /// server runtime; the GLM only needs it to skip S-lock grants held
    /// by ghosts).
    crashed: HashSet<ClientId>,
}

impl GlmCore {
    pub fn new() -> Self {
        Self::default()
    }

    /// A shard-local lock table feeding the given shared waits-for graph.
    pub fn with_graph(graph: Arc<WaitGraph>) -> Self {
        GlmCore {
            graph,
            ..Self::default()
        }
    }

    // ---- conflict computation -------------------------------------------

    /// The page-level mode a target occupies while *held*.
    fn held_page_mode(target: &LockTarget) -> Mode {
        match target {
            LockTarget::Object(_, m) => m.intent(),
            LockTarget::Page(_, m) | LockTarget::PageAdaptive(_, m, _) => m.as_page_mode(),
        }
    }

    fn conflicts_for(
        &self,
        entry: &PageLocks,
        client: ClientId,
        target: &LockTarget,
    ) -> Vec<Conflict> {
        let mut out = Vec::new();
        // The mode the client's page entry would take if granted: its
        // current holding folded with the request (e.g. IX + page-S =
        // SIX). Conflicts are judged against this effective mode.
        let own = entry.page_holders.get(&client).copied();
        match target {
            LockTarget::Object(o, m) => {
                let intent = match own {
                    Some(pm) => pm.lub(m.intent()),
                    None => m.intent(),
                };
                for (&h, &pm) in &entry.page_holders {
                    if h != client && !pm.compatible(intent) {
                        out.push(Conflict::PageLevel(h, pm));
                    }
                }
                if let Some(holders) = entry.object_holders.get(&o.slot) {
                    for (&h, &om) in holders {
                        if h != client && !om.compatible(*m) {
                            out.push(Conflict::ObjLevel(h, o.slot, om));
                        }
                    }
                }
            }
            LockTarget::Page(_, m) | LockTarget::PageAdaptive(_, m, _) => {
                let pm_req = match own {
                    Some(pm) => pm.lub(m.as_page_mode()),
                    None => m.as_page_mode(),
                };
                for (&h, &pm) in &entry.page_holders {
                    if h != client && !pm.compatible(pm_req) {
                        out.push(Conflict::PageLevel(h, pm));
                    }
                }
                for (&slot, holders) in &entry.object_holders {
                    for (&h, &om) in holders {
                        if h != client && !pm_req.compatible(om.intent()) {
                            out.push(Conflict::ObjLevel(h, slot, om));
                        }
                    }
                }
            }
        }
        out
    }

    /// Map conflicts to the callback actions that would clear them.
    fn callbacks_for(target: &LockTarget, conflicts: &[Conflict]) -> Vec<CallbackAction> {
        let page = target.page();
        let mode = target.mode();
        let mut out = Vec::new();
        for c in conflicts {
            let action = match (target, c) {
                // Fine-granularity: page-level conflicts de-escalate (§3.2).
                (LockTarget::Object(..), Conflict::PageLevel(h, _)) => CallbackAction {
                    to: *h,
                    kind: CallbackKind::DeEscalatePage(page),
                },
                (LockTarget::Object(o, m), Conflict::ObjLevel(h, _, _)) => CallbackAction {
                    to: *h,
                    kind: if *m == ObjMode::X {
                        CallbackKind::ReleaseObject(*o)
                    } else {
                        CallbackKind::DowngradeObject(*o)
                    },
                },
                // Page-granularity requests.
                (
                    LockTarget::Page(..) | LockTarget::PageAdaptive(..),
                    Conflict::PageLevel(h, pm),
                ) => CallbackAction {
                    to: *h,
                    kind: if mode == ObjMode::S && *pm == Mode::X {
                        CallbackKind::DowngradePage(page)
                    } else {
                        CallbackKind::ReleasePage(page)
                    },
                },
                (
                    LockTarget::Page(..) | LockTarget::PageAdaptive(..),
                    Conflict::ObjLevel(h, slot, om),
                ) => {
                    let obj = ObjectId::new(page, *slot);
                    CallbackAction {
                        to: *h,
                        kind: if mode == ObjMode::S && *om == ObjMode::X {
                            CallbackKind::DowngradeObject(obj)
                        } else {
                            CallbackKind::ReleaseObject(obj)
                        },
                    }
                }
            };
            out.push(action);
        }
        out.sort_by_key(|a| (a.to.0, format!("{:?}", a.kind)));
        out.dedup();
        out
    }

    // ---- grants ----------------------------------------------------------

    fn do_grant(&mut self, client: ClientId, target: &LockTarget) -> bool {
        let page_id = target.page();
        let had_exclusive = self.client_has_exclusive_on_page(client, page_id);
        let entry = self.pages.entry(page_id).or_default();
        match target {
            LockTarget::Object(o, m) => {
                let holders = entry.object_holders.entry(o.slot).or_default();
                let cur = holders.get(&client).copied();
                let newm = match cur {
                    Some(existing) if existing.covers(*m) => existing,
                    _ => *m,
                };
                holders.insert(client, newm);
                let pm = entry.page_holders.entry(client).or_insert(Mode::IS);
                *pm = pm.lub(m.intent());
            }
            LockTarget::Page(_, m) | LockTarget::PageAdaptive(_, m, _) => {
                let pm = entry.page_holders.entry(client).or_insert(Mode::IS);
                *pm = pm.lub(m.as_page_mode());
            }
        }
        let has_exclusive = self.client_has_exclusive_on_page(client, page_id);
        !had_exclusive && has_exclusive
    }

    /// Does the client hold any exclusive lock touching the page (object X
    /// or page X)? §3.2 uses this for DCT insertion/removal.
    pub fn client_has_exclusive_on_page(&self, client: ClientId, page: PageId) -> bool {
        let Some(entry) = self.pages.get(&page) else {
            return false;
        };
        if entry.page_holders.get(&client) == Some(&Mode::X) {
            return true;
        }
        entry
            .object_holders
            .values()
            .any(|h| h.get(&client) == Some(&ObjMode::X))
    }

    // ---- public entry points ----------------------------------------------

    /// Request a lock for `txn` at `client`. Returns the immediate
    /// outcome, the *effective* target (adaptive requests convert to their
    /// embedded object lock on conflict), and the events to act on.
    pub fn lock(
        &mut self,
        client: ClientId,
        txn: TxnId,
        target: LockTarget,
    ) -> (LockOutcome, LockTarget, Vec<GlmEvent>) {
        let page = target.page();
        self.pages.entry(page).or_default();
        let conflicts = {
            let e = self.pages.get(&page).unwrap();
            self.conflicts_for(e, client, &target)
        };
        // Adaptive: fall back to the embedded object lock on any conflict.
        let effective = match (&target, conflicts.is_empty()) {
            (LockTarget::PageAdaptive(_, m, o), false) => LockTarget::Object(*o, *m),
            _ => target,
        };
        let conflicts = {
            let e = self.pages.get(&page).unwrap();
            self.conflicts_for(e, client, &effective)
        };
        // FIFO fairness: do not overtake an earlier queued waiter whose
        // target conflicts with ours.
        let blocked_by_waiter = self
            .pages
            .get(&page)
            .unwrap()
            .waiters
            .iter()
            .any(|w| w.client != client && Self::targets_conflict(&w.target, &effective));
        if conflicts.is_empty() && !blocked_by_waiter {
            let first_x = self.do_grant(client, &effective);
            return (
                LockOutcome::Granted {
                    first_exclusive_on_page: first_x,
                },
                effective,
                Vec::new(),
            );
        }
        let callbacks = Self::callbacks_for(&effective, &conflicts);
        let entry = self.pages.get_mut(&page).unwrap();
        entry.waiters.push_back(Waiter {
            client,
            txn,
            target: effective,
        });
        let mut events = Vec::new();
        for cb in callbacks {
            if entry.outstanding.insert(cb) {
                events.push(GlmEvent::SendCallback(cb));
            }
        }
        self.publish_queue_edges(page);
        // Queue-order edges may have closed a cycle right away.
        if let Some(victim) = self.find_deadlock_victim(txn) {
            events.push(GlmEvent::AbortTxn {
                client: victim.client(),
                txn: victim,
            });
            events.extend(self.cancel_wait(victim));
            if victim == txn {
                return (
                    LockOutcome::Queued,
                    effective,
                    self.suppress_crashed(events),
                );
            }
        }
        (
            LockOutcome::Queued,
            effective,
            self.suppress_crashed(events),
        )
    }

    /// Drop `SendCallback` events addressed to crashed clients: they stay
    /// outstanding and are delivered via [`Self::pending_callbacks_for`]
    /// once the client recovers (§3.3: callbacks queue until recovery).
    fn suppress_crashed(&self, events: Vec<GlmEvent>) -> Vec<GlmEvent> {
        if self.crashed.is_empty() {
            return events;
        }
        events
            .into_iter()
            .filter(|e| match e {
                GlmEvent::SendCallback(cb) => !self.crashed.contains(&cb.to),
                _ => true,
            })
            .collect()
    }

    fn targets_conflict(a: &LockTarget, b: &LockTarget) -> bool {
        if a.page() != b.page() {
            return false;
        }
        match (a, b) {
            (LockTarget::Object(oa, ma), LockTarget::Object(ob, mb)) => {
                if oa.slot == ob.slot {
                    !ma.compatible(*mb)
                } else {
                    false
                }
            }
            _ => !Self::held_page_mode(a).compatible(Self::held_page_mode(b)),
        }
    }

    /// Process a client's reply to a callback.
    pub fn callback_reply(
        &mut self,
        from: ClientId,
        kind: CallbackKind,
        reply: CallbackReply,
    ) -> Vec<GlmEvent> {
        let page = kind.page();
        let action = CallbackAction { to: from, kind };
        let mut events = Vec::new();
        match reply {
            CallbackReply::Done { retained } => {
                if let Some(entry) = self.pages.get_mut(&page) {
                    entry.outstanding.remove(&action);
                }
                self.apply_done(from, kind, &retained);
                events.extend(self.re_evaluate(page));
            }
            CallbackReply::Deferred { blockers } => {
                // The callback stays outstanding; record waits-for edges
                // for every waiter whose pending callback set contains
                // this action, then look for cycles.
                let waiting: Vec<(TxnId, ClientId)> = {
                    let Some(entry) = self.pages.get(&page) else {
                        return events;
                    };
                    entry
                        .waiters
                        .iter()
                        .filter(|w| {
                            let conflicts = self.conflicts_for(entry, w.client, &w.target);
                            Self::callbacks_for(&w.target, &conflicts).contains(&action)
                        })
                        .map(|w| (w.txn, w.client))
                        .collect()
                };
                for (wtxn, _) in &waiting {
                    self.graph.add_deferrals(*wtxn, &blockers);
                }
                for (wtxn, _) in &waiting {
                    if let Some(victim) = self.find_deadlock_victim(*wtxn) {
                        let victim_client = victim.client();
                        events.push(GlmEvent::AbortTxn {
                            client: victim_client,
                            txn: victim,
                        });
                        events.extend(self.cancel_wait(victim));
                    }
                }
            }
        }
        self.suppress_crashed(events)
    }

    /// Process one client's merged reply to a callback batch in a single
    /// pass: every `Done` outcome applies its state change first, then
    /// each touched page re-evaluates once, then `Deferred` outcomes
    /// record their waits-for edges against the post-batch state. A grant
    /// blocked on N holders of one page thus resolves from one merged
    /// reply instead of N interleaved re-evaluations.
    pub fn callback_reply_batch(
        &mut self,
        from: ClientId,
        replies: Vec<(CallbackKind, CallbackReply)>,
    ) -> Vec<GlmEvent> {
        let mut events = Vec::new();
        let mut touched: Vec<PageId> = Vec::new();
        let mut deferred: Vec<(CallbackKind, Vec<TxnId>)> = Vec::new();
        for (kind, reply) in replies {
            match reply {
                CallbackReply::Done { retained } => {
                    let page = kind.page();
                    let action = CallbackAction { to: from, kind };
                    if let Some(entry) = self.pages.get_mut(&page) {
                        entry.outstanding.remove(&action);
                    }
                    self.apply_done(from, kind, &retained);
                    if !touched.contains(&page) {
                        touched.push(page);
                    }
                }
                CallbackReply::Deferred { blockers } => deferred.push((kind, blockers)),
            }
        }
        for page in touched {
            events.extend(self.re_evaluate(page));
        }
        for (kind, blockers) in deferred {
            events.extend(self.callback_reply(from, kind, CallbackReply::Deferred { blockers }));
        }
        self.suppress_crashed(events)
    }

    fn apply_done(&mut self, from: ClientId, kind: CallbackKind, retained: &[(ObjectId, ObjMode)]) {
        let page = kind.page();
        let Some(entry) = self.pages.get_mut(&page) else {
            return;
        };
        match kind {
            CallbackKind::ReleaseObject(o) => {
                if let Some(h) = entry.object_holders.get_mut(&o.slot) {
                    h.remove(&from);
                }
            }
            CallbackKind::DowngradeObject(o) => {
                // Precondition-checked: a stale reply (the holder lost or
                // changed the lock since the callback was sent) must not
                // rewrite the current state.
                if let Some(h) = entry.object_holders.get_mut(&o.slot) {
                    if let Some(m) = h.get_mut(&from) {
                        if *m == ObjMode::X {
                            *m = ObjMode::S;
                        }
                    }
                }
            }
            CallbackKind::ReleasePage(_) => {
                entry.page_holders.remove(&from);
                for h in entry.object_holders.values_mut() {
                    h.remove(&from);
                }
            }
            CallbackKind::DowngradePage(_) => {
                // Same precondition rule: only a real page X downgrades.
                if let Some(m) = entry.page_holders.get_mut(&from) {
                    if *m == Mode::X {
                        *m = Mode::S;
                    }
                }
            }
            CallbackKind::DeEscalatePage(_) => {
                // Only the page-level lock de-escalates. Object locks the
                // client acquired explicitly (and still caches in its LLM)
                // must survive, or the two lock tables diverge — the
                // client would keep granting locally against locks the
                // server no longer tracks. `retained` adds the object
                // locks that had been covered implicitly by the page lock.
                entry.page_holders.remove(&from);
                for (o, m) in retained {
                    let e = entry
                        .object_holders
                        .entry(o.slot)
                        .or_default()
                        .entry(from)
                        .or_insert(*m);
                    if *m > *e {
                        *e = *m;
                    }
                }
            }
        }
        self.recompute_intent(page, from);
    }

    /// Recompute a client's page-holder mode from its object locks (after
    /// releases/downgrades), unless it holds a real page lock.
    fn recompute_intent(&mut self, page: PageId, client: ClientId) {
        let Some(entry) = self.pages.get_mut(&page) else {
            return;
        };
        let real = matches!(
            entry.page_holders.get(&client),
            Some(Mode::S) | Some(Mode::X)
        );
        if real {
            return;
        }
        let mut intent: Option<Mode> = None;
        for holders in entry.object_holders.values() {
            if let Some(m) = holders.get(&client) {
                let i = m.intent();
                intent = Some(match intent {
                    None => i,
                    Some(prev) => prev.lub(i),
                });
            }
        }
        match intent {
            Some(i) => {
                entry.page_holders.insert(client, i);
            }
            None => {
                entry.page_holders.remove(&client);
            }
        }
        if self.pages.get(&page).map(|e| e.is_empty()).unwrap_or(false) {
            self.pages.remove(&page);
        }
    }

    /// Re-check waiters of a page after any state change.
    fn re_evaluate(&mut self, page: PageId) -> Vec<GlmEvent> {
        let mut events = Vec::new();
        loop {
            let Some(entry) = self.pages.get(&page) else {
                return events;
            };
            // Find the first grantable waiter respecting FIFO fairness.
            let mut grant_idx = None;
            for (i, w) in entry.waiters.iter().enumerate() {
                let conflicts = self.conflicts_for(entry, w.client, &w.target);
                let blocked_by_earlier = entry
                    .waiters
                    .iter()
                    .take(i)
                    .any(|w2| Self::targets_conflict(&w2.target, &w.target));
                if conflicts.is_empty() && !blocked_by_earlier {
                    grant_idx = Some(i);
                    break;
                }
            }
            match grant_idx {
                Some(i) => {
                    let w = self
                        .pages
                        .get_mut(&page)
                        .unwrap()
                        .waiters
                        .remove(i)
                        .unwrap();
                    self.graph.remove_waiter_row(w.txn);
                    let first_x = self.do_grant(w.client, &w.target);
                    events.push(GlmEvent::Grant {
                        client: w.client,
                        txn: w.txn,
                        target: w.target,
                        first_exclusive_on_page: first_x,
                    });
                }
                None => break,
            }
        }
        // Send any callbacks still needed by the remaining waiters.
        let Some(entry) = self.pages.get(&page) else {
            return events;
        };
        let mut to_send = Vec::new();
        for w in &entry.waiters {
            let conflicts = self.conflicts_for(entry, w.client, &w.target);
            for cb in Self::callbacks_for(&w.target, &conflicts) {
                to_send.push(cb);
            }
        }
        let entry = self.pages.get_mut(&page).unwrap();
        for cb in to_send {
            if entry.outstanding.insert(cb) {
                events.push(GlmEvent::SendCallback(cb));
            }
        }
        if entry.is_empty() {
            self.pages.remove(&page);
        }
        self.publish_queue_edges(page);
        events
    }

    /// Remove a waiter (timeout, abort, deadlock victim).
    pub fn cancel_wait(&mut self, txn: TxnId) -> Vec<GlmEvent> {
        self.graph.forget_txn(txn);
        let mut touched = Vec::new();
        for (pid, entry) in self.pages.iter_mut() {
            let before = entry.waiters.len();
            entry.waiters.retain(|w| w.txn != txn);
            if entry.waiters.len() != before {
                touched.push(*pid);
            }
        }
        let mut events = Vec::new();
        for pid in touched {
            events.extend(self.re_evaluate(pid));
        }
        self.suppress_crashed(events)
    }

    // ---- deadlock detection ------------------------------------------------

    /// Republish this page's **queue edges** to the shared waits-for
    /// graph: a waiter behind an earlier conflicting waiter waits for
    /// that waiter's transaction. Without the queue edges, cycles that
    /// thread through FIFO ordering are invisible until the timeout
    /// backstop fires. Called after every waiter-queue change; a page
    /// belongs to exactly one shard, so publications never race.
    fn publish_queue_edges(&self, page: PageId) {
        let edges = match self.pages.get(&page) {
            Some(entry) => {
                let ws: Vec<&Waiter> = entry.waiters.iter().collect();
                let mut out = Vec::new();
                for (i, w) in ws.iter().enumerate() {
                    for earlier in ws.iter().take(i) {
                        if earlier.client != w.client
                            && Self::targets_conflict(&earlier.target, &w.target)
                        {
                            out.push((w.txn, earlier.txn));
                        }
                    }
                }
                out
            }
            None => Vec::new(),
        };
        self.graph.publish_queue_edges(page, edges);
    }

    /// Cycle search over the shared graph (deferral edges from every
    /// shard plus the republished queue edges); the youngest cycle member
    /// (largest local sequence, tie-broken by raw id) is the victim.
    fn find_deadlock_victim(&self, start: TxnId) -> Option<TxnId> {
        self.graph.find_victim(start)
    }

    // ---- voluntary release / crash handling ---------------------------------

    /// Release one object lock held by a client (e.g. after recovery).
    pub fn release_object(&mut self, client: ClientId, o: ObjectId) -> Vec<GlmEvent> {
        if let Some(entry) = self.pages.get_mut(&o.page) {
            if let Some(h) = entry.object_holders.get_mut(&o.slot) {
                h.remove(&client);
            }
        }
        self.recompute_intent(o.page, client);
        let events = self.re_evaluate(o.page);
        self.suppress_crashed(events)
    }

    /// Release every lock the client holds (clean disconnect / tests).
    pub fn release_all(&mut self, client: ClientId) -> Vec<GlmEvent> {
        let pages: Vec<PageId> = self.pages.keys().copied().collect();
        let mut events = Vec::new();
        for p in pages {
            if let Some(entry) = self.pages.get_mut(&p) {
                entry.page_holders.remove(&client);
                for h in entry.object_holders.values_mut() {
                    h.remove(&client);
                }
                entry.object_holders.retain(|_, h| !h.is_empty());
                entry.outstanding.retain(|cb| cb.to != client);
            }
            events.extend(self.re_evaluate(p));
        }
        self.suppress_crashed(events)
    }

    /// Client crash (§3.3): *release all shared locks held by the crashed
    /// client*; exclusive locks are retained until its restart recovery
    /// completes. Its waiters disappear with it.
    pub fn crash_client(&mut self, client: ClientId) -> Vec<GlmEvent> {
        self.crashed.insert(client);
        let pages: Vec<PageId> = self.pages.keys().copied().collect();
        let mut events = Vec::new();
        // Drop its waiters and their edges first.
        let its_txns: Vec<TxnId> = self
            .pages
            .values()
            .flat_map(|e| e.waiters.iter())
            .filter(|w| w.client == client)
            .map(|w| w.txn)
            .collect();
        for t in its_txns {
            events.extend(self.cancel_wait(t));
        }
        for p in pages {
            if let Some(entry) = self.pages.get_mut(&p) {
                // Shared locks go; X stays. Page S released; page X stays.
                match entry.page_holders.get(&client) {
                    Some(Mode::S) | Some(Mode::IS) => {
                        entry.page_holders.remove(&client);
                    }
                    _ => {}
                }
                for h in entry.object_holders.values_mut() {
                    if h.get(&client) == Some(&ObjMode::S) {
                        h.remove(&client);
                    }
                }
                // Outstanding callbacks to the crashed client will be
                // re-issued (queued by the server runtime) once it
                // recovers; forget that they were sent.
                entry.outstanding.retain(|cb| cb.to != client);
            }
            self.recompute_intent(p, client);
            let evs = self.re_evaluate(p);
            events.extend(evs);
        }
        self.suppress_crashed(events)
    }

    /// Callbacks addressed to a (previously crashed) client that were
    /// suppressed while it was down.
    pub fn pending_callbacks_for(&self, client: ClientId) -> Vec<CallbackAction> {
        self.pages
            .values()
            .flat_map(|e| e.outstanding.iter())
            .filter(|cb| cb.to == client)
            .copied()
            .collect()
    }

    /// Mark a crashed client recovered.
    pub fn client_recovered(&mut self, client: ClientId) {
        self.crashed.remove(&client);
    }

    /// Every exclusive lock a client holds (page X and object X) — what a
    /// recovering client reinstalls in its LLM (§3.3).
    pub fn exclusive_locks(&self, client: ClientId) -> Vec<LockTarget> {
        let mut out = Vec::new();
        for (&pid, entry) in &self.pages {
            if entry.page_holders.get(&client) == Some(&Mode::X) {
                out.push(LockTarget::Page(pid, ObjMode::X));
            }
            for (&slot, holders) in &entry.object_holders {
                if holders.get(&client) == Some(&ObjMode::X) {
                    out.push(LockTarget::Object(ObjectId::new(pid, slot), ObjMode::X));
                }
            }
        }
        out.sort_by_key(|t| (t.page().0, format!("{t:?}")));
        out
    }

    /// Rebuild a holder entry from a client's reported LLM table (server
    /// restart recovery, §3.4).
    pub fn install_holder(&mut self, client: ClientId, target: LockTarget) {
        self.do_grant(client, &target);
    }

    /// Number of pages with any lock state (diagnostics).
    pub fn tracked_pages(&self) -> usize {
        self.pages.len()
    }

    /// Snapshot of a client's locks on a page: (page mode, object locks).
    pub fn client_locks_on_page(
        &self,
        client: ClientId,
        page: PageId,
    ) -> (Option<Mode>, Vec<(SlotId, ObjMode)>) {
        let Some(entry) = self.pages.get(&page) else {
            return (None, Vec::new());
        };
        let pm = entry.page_holders.get(&client).copied();
        let mut objs: Vec<(SlotId, ObjMode)> = entry
            .object_holders
            .iter()
            .filter_map(|(&s, h)| h.get(&client).map(|&m| (s, m)))
            .collect();
        objs.sort_by_key(|(s, _)| s.0);
        (pm, objs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ClientId = ClientId(1);
    const C2: ClientId = ClientId(2);
    const C3: ClientId = ClientId(3);

    fn t(c: ClientId, n: u32) -> TxnId {
        TxnId::compose(c, n)
    }

    fn obj(p: u64, s: u16) -> ObjectId {
        ObjectId::new(PageId(p), SlotId(s))
    }

    fn granted(outcome: LockOutcome) -> bool {
        matches!(outcome, LockOutcome::Granted { .. })
    }

    #[test]
    fn uncontended_object_locks_grant_immediately() {
        let mut g = GlmCore::new();
        let (o, _t, ev) = g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::S));
        assert!(granted(o));
        assert!(ev.is_empty());
        // Different objects on the same page: no conflict.
        let (o, _t, _) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 1), ObjMode::X));
        assert!(granted(o));
    }

    #[test]
    fn first_exclusive_on_page_flag() {
        let mut g = GlmCore::new();
        let (o, _t, _) = g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::S));
        assert_eq!(
            o,
            LockOutcome::Granted {
                first_exclusive_on_page: false
            }
        );
        let (o, _t, _) = g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 1), ObjMode::X));
        assert_eq!(
            o,
            LockOutcome::Granted {
                first_exclusive_on_page: true
            }
        );
        // Second X on the same page: not "first" anymore.
        let (o, _t, _) = g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 2), ObjMode::X));
        assert_eq!(
            o,
            LockOutcome::Granted {
                first_exclusive_on_page: false
            }
        );
    }

    #[test]
    fn shared_requests_coexist() {
        let mut g = GlmCore::new();
        for (c, n) in [(C1, 1), (C2, 1), (C3, 1)] {
            let (o, _t, _) = g.lock(c, t(c, n), LockTarget::Object(obj(1, 0), ObjMode::S));
            assert!(granted(o));
        }
    }

    #[test]
    fn x_request_triggers_release_callback_then_grant() {
        let mut g = GlmCore::new();
        let (o, _t, _) = g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::S));
        assert!(granted(o));
        let (o, _t, ev) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        assert_eq!(
            ev,
            vec![GlmEvent::SendCallback(CallbackAction {
                to: C1,
                kind: CallbackKind::ReleaseObject(obj(1, 0)),
            })]
        );
        // C1 complies.
        let ev = g.callback_reply(
            C1,
            CallbackKind::ReleaseObject(obj(1, 0)),
            CallbackReply::Done { retained: vec![] },
        );
        assert!(matches!(
            ev.as_slice(),
            [GlmEvent::Grant { client, txn, first_exclusive_on_page: true, .. }]
                if *client == C2 && *txn == t(C2, 1)
        ));
    }

    #[test]
    fn s_request_downgrades_x_holder() {
        let mut g = GlmCore::new();
        let (o, _t, _) = g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert!(granted(o));
        let (o, _t, ev) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 0), ObjMode::S));
        assert_eq!(o, LockOutcome::Queued);
        assert_eq!(
            ev,
            vec![GlmEvent::SendCallback(CallbackAction {
                to: C1,
                kind: CallbackKind::DowngradeObject(obj(1, 0)),
            })]
        );
        let ev = g.callback_reply(
            C1,
            CallbackKind::DowngradeObject(obj(1, 0)),
            CallbackReply::Done { retained: vec![] },
        );
        assert!(matches!(ev.as_slice(), [GlmEvent::Grant { client, .. }] if *client == C2));
        // Both now hold S.
        let (_, objs) = g.client_locks_on_page(C1, PageId(1));
        assert_eq!(objs, vec![(SlotId(0), ObjMode::S)]);
        let (_, objs) = g.client_locks_on_page(C2, PageId(1));
        assert_eq!(objs, vec![(SlotId(0), ObjMode::S)]);
    }

    #[test]
    fn page_lock_conflict_deescalates_holder() {
        let mut g = GlmCore::new();
        // C1 takes a whole-page X lock (e.g. structural update).
        let (o, _t, _) = g.lock(C1, t(C1, 1), LockTarget::Page(PageId(1), ObjMode::X));
        assert!(granted(o));
        // C2 wants an object on that page.
        let (o, _t, ev) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 3), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        assert_eq!(
            ev,
            vec![GlmEvent::SendCallback(CallbackAction {
                to: C1,
                kind: CallbackKind::DeEscalatePage(PageId(1)),
            })]
        );
        // C1 de-escalates, retaining an X lock on object 0 only.
        let ev = g.callback_reply(
            C1,
            CallbackKind::DeEscalatePage(PageId(1)),
            CallbackReply::Done {
                retained: vec![(obj(1, 0), ObjMode::X)],
            },
        );
        assert!(matches!(ev.as_slice(), [GlmEvent::Grant { client, .. }] if *client == C2));
        let (pm, objs) = g.client_locks_on_page(C1, PageId(1));
        assert_eq!(pm, Some(Mode::IX));
        assert_eq!(objs, vec![(SlotId(0), ObjMode::X)]);
    }

    #[test]
    fn deescalation_retaining_conflicting_object_keeps_waiter_blocked() {
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Page(PageId(1), ObjMode::X));
        let (_, _t2, _) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        // C1 retains X on the very object C2 wants.
        let ev = g.callback_reply(
            C1,
            CallbackKind::DeEscalatePage(PageId(1)),
            CallbackReply::Done {
                retained: vec![(obj(1, 0), ObjMode::X)],
            },
        );
        // No grant; instead a follow-up object callback.
        assert_eq!(
            ev,
            vec![GlmEvent::SendCallback(CallbackAction {
                to: C1,
                kind: CallbackKind::ReleaseObject(obj(1, 0)),
            })]
        );
        let ev = g.callback_reply(
            C1,
            CallbackKind::ReleaseObject(obj(1, 0)),
            CallbackReply::Done { retained: vec![] },
        );
        assert!(matches!(ev.as_slice(), [GlmEvent::Grant { client, .. }] if *client == C2));
    }

    #[test]
    fn adaptive_request_falls_back_to_object_lock_on_conflict() {
        let mut g = GlmCore::new();
        // C1 holds an adaptive page lock.
        let (o, _t, _) = g.lock(
            C1,
            t(C1, 1),
            LockTarget::PageAdaptive(PageId(1), ObjMode::X, obj(1, 0)),
        );
        assert!(granted(o));
        let (pm, _) = g.client_locks_on_page(C1, PageId(1));
        assert_eq!(pm, Some(Mode::X));
        // C2 adaptive-requests a different object: conflict at page level,
        // falls back to object lock, C1 de-escalates.
        let (o, _t, ev) = g.lock(
            C2,
            t(C2, 1),
            LockTarget::PageAdaptive(PageId(1), ObjMode::X, obj(1, 1)),
        );
        assert_eq!(o, LockOutcome::Queued);
        assert_eq!(
            ev,
            vec![GlmEvent::SendCallback(CallbackAction {
                to: C1,
                kind: CallbackKind::DeEscalatePage(PageId(1)),
            })]
        );
        let ev = g.callback_reply(
            C1,
            CallbackKind::DeEscalatePage(PageId(1)),
            CallbackReply::Done {
                retained: vec![(obj(1, 0), ObjMode::X)],
            },
        );
        // C2's converted object request is granted.
        assert!(matches!(
            ev.as_slice(),
            [GlmEvent::Grant { client, target: LockTarget::Object(o2, ObjMode::X), .. }]
                if *client == C2 && *o2 == obj(1, 1)
        ));
    }

    #[test]
    fn deferred_callback_builds_edges_and_finds_deadlock() {
        let mut g = GlmCore::new();
        // Classic upgrade deadlock: C1 and C2 hold S, both want X.
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::S));
        g.lock(C2, t(C2, 2), LockTarget::Object(obj(1, 0), ObjMode::S));
        let (o, _t, ev1) = g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        assert!(ev1.contains(&GlmEvent::SendCallback(CallbackAction {
            to: C2,
            kind: CallbackKind::ReleaseObject(obj(1, 0)),
        })));
        let (o, _t, ev2) = g.lock(C2, t(C2, 2), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        assert!(ev2.contains(&GlmEvent::SendCallback(CallbackAction {
            to: C1,
            kind: CallbackKind::ReleaseObject(obj(1, 0)),
        })));
        // The first deferral already closes the cycle: C1's waiter is
        // blocked by T2.2 (deferral edge), and C2's queued request waits
        // behind C1's conflicting one (queue edge). Youngest (seq 2) dies.
        let ev = g.callback_reply(
            C2,
            CallbackKind::ReleaseObject(obj(1, 0)),
            CallbackReply::Deferred {
                blockers: vec![t(C2, 2)],
            },
        );
        assert!(
            ev.iter().any(|e| matches!(
                e,
                GlmEvent::AbortTxn { txn, .. } if *txn == t(C2, 2)
            )),
            "expected abort event, got {ev:?}"
        );
    }

    #[test]
    fn fifo_no_overtaking() {
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        // C2 queues for X.
        let (o, _t, _) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        // C3 asks for S afterwards: even though S would be compatible once
        // C1 downgrades, it must not overtake C2's queued X.
        let (o, _t, _) = g.lock(C3, t(C3, 1), LockTarget::Object(obj(1, 0), ObjMode::S));
        assert_eq!(o, LockOutcome::Queued);
        // C1 releases; C2 gets the grant first.
        let ev = g.callback_reply(
            C1,
            CallbackKind::ReleaseObject(obj(1, 0)),
            CallbackReply::Done { retained: vec![] },
        );
        let grants: Vec<ClientId> = ev
            .iter()
            .filter_map(|e| match e {
                GlmEvent::Grant { client, .. } => Some(*client),
                _ => None,
            })
            .collect();
        assert_eq!(grants, vec![C2]);
    }

    #[test]
    fn crash_releases_shared_keeps_exclusive() {
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::S));
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 1), ObjMode::X));
        g.lock(C1, t(C1, 1), LockTarget::Page(PageId(2), ObjMode::X));
        g.crash_client(C1);
        let (_, objs) = g.client_locks_on_page(C1, PageId(1));
        assert_eq!(objs, vec![(SlotId(1), ObjMode::X)], "S gone, X retained");
        let x = g.exclusive_locks(C1);
        assert_eq!(
            x,
            vec![
                LockTarget::Object(obj(1, 1), ObjMode::X),
                LockTarget::Page(PageId(2), ObjMode::X),
            ]
        );
        // A blocked S request on the freed S object now succeeds directly.
        let (o, _t, _) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert!(granted(o));
    }

    #[test]
    fn callbacks_to_crashed_clients_are_suppressed_and_queryable() {
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        g.crash_client(C1);
        // C2 wants the object C1 still holds X on.
        let (o, _t, ev) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 0), ObjMode::S));
        assert_eq!(o, LockOutcome::Queued);
        // The callback is recorded as outstanding but *sent* only via the
        // pending list once C1 recovers.
        assert!(
            ev.is_empty()
                || !ev
                    .iter()
                    .any(|e| matches!(e, GlmEvent::SendCallback(cb) if cb.to == C1)),
            "callback to crashed client must be suppressed: {ev:?}"
        );
        let pending = g.pending_callbacks_for(C1);
        assert_eq!(
            pending,
            vec![CallbackAction {
                to: C1,
                kind: CallbackKind::DowngradeObject(obj(1, 0)),
            }]
        );
        g.client_recovered(C1);
        // C1 (recovered, no active txns) complies.
        let ev = g.callback_reply(
            C1,
            CallbackKind::DowngradeObject(obj(1, 0)),
            CallbackReply::Done { retained: vec![] },
        );
        assert!(matches!(ev.as_slice(), [GlmEvent::Grant { client, .. }] if *client == C2));
    }

    #[test]
    fn cancel_wait_unblocks_others() {
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        let (o, _t, _) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        let (o, _t, _) = g.lock(C3, t(C3, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        // C2 times out and cancels; C1 releases; C3 is granted.
        g.cancel_wait(t(C2, 1));
        let ev = g.callback_reply(
            C1,
            CallbackKind::ReleaseObject(obj(1, 0)),
            CallbackReply::Done { retained: vec![] },
        );
        assert!(matches!(ev.as_slice(), [GlmEvent::Grant { client, .. }] if *client == C3));
    }

    #[test]
    fn upgrade_while_sole_holder_is_immediate() {
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::S));
        let (o, _t, _) = g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert!(granted(o));
        let (_, objs) = g.client_locks_on_page(C1, PageId(1));
        assert_eq!(objs, vec![(SlotId(0), ObjMode::X)]);
    }

    #[test]
    fn install_holder_rebuilds_state() {
        let mut g = GlmCore::new();
        g.install_holder(C1, LockTarget::Object(obj(1, 0), ObjMode::X));
        g.install_holder(C2, LockTarget::Object(obj(1, 1), ObjMode::S));
        assert!(g.client_has_exclusive_on_page(C1, PageId(1)));
        assert!(!g.client_has_exclusive_on_page(C2, PageId(1)));
        assert_eq!(g.tracked_pages(), 1);
    }

    #[test]
    fn ix_plus_page_s_forms_six_and_respects_is_holders() {
        // The proptest-found scenario: C1 holds object X (IX intent) and
        // asks for page S while C2 holds object S elsewhere on the page.
        // The effective SIX is compatible with C2's IS, so the grant goes
        // through — but the table must never claim X for C1.
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 1), ObjMode::S));
        let (o, _t2, _) = g.lock(C1, t(C1, 1), LockTarget::Page(PageId(1), ObjMode::S));
        assert!(granted(o));
        let (pm1, _) = g.client_locks_on_page(C1, PageId(1));
        assert_eq!(pm1, Some(Mode::SIX));
        let (pm2, _) = g.client_locks_on_page(C2, PageId(1));
        assert!(pm1.unwrap().compatible(pm2.unwrap()));
        // A third client's X object request on slot 1 must now conflict
        // with the SIX (S component) and trigger callbacks.
        let (o, _t3, ev) = g.lock(C3, t(C3, 1), LockTarget::Object(obj(1, 1), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        assert!(!ev.is_empty());
    }

    #[test]
    fn queue_edge_deadlock_detected_without_deferrals() {
        // T1 holds s0 and queues for s1; T2 holds s1 and queues for s0.
        // The second enqueue alone closes the cycle through queue-order
        // edges + deferral-free holder knowledge... holders are clients,
        // so the cycle still needs one deferral; what the queue edges add
        // is detection at the *first* deferral instead of the second
        // (covered in `deferred_callback_builds_edges_and_finds_deadlock`).
        // Here: cross-object hold-and-wait with deferral on one side only.
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        g.lock(C2, t(C2, 2), LockTarget::Object(obj(1, 1), ObjMode::X));
        // T1 wants s1 (held by C2): queued, callback to C2.
        let (o, _t1, ev1) = g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 1), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        assert!(ev1.iter().any(|e| matches!(e, GlmEvent::SendCallback(_))));
        // T2 wants s0 (held by C1): queued, callback to C1.
        let (o, _t2, _ev2) = g.lock(C2, t(C2, 2), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        // C2 defers (T2 uses s1): edge T1 -> T2. Queue edges add nothing
        // here (different objects), so no cycle yet.
        let ev = g.callback_reply(
            C2,
            CallbackKind::ReleaseObject(obj(1, 1)),
            CallbackReply::Deferred {
                blockers: vec![t(C2, 2)],
            },
        );
        assert!(
            !ev.iter().any(|e| matches!(e, GlmEvent::AbortTxn { .. })),
            "one deferral is not yet a cycle: {ev:?}"
        );
        // C1 defers (T1 uses s0): edge T2 -> T1 closes the cycle; the
        // youngest (seq 2) dies.
        let ev = g.callback_reply(
            C1,
            CallbackKind::ReleaseObject(obj(1, 0)),
            CallbackReply::Deferred {
                blockers: vec![t(C1, 1)],
            },
        );
        assert!(
            ev.iter()
                .any(|e| matches!(e, GlmEvent::AbortTxn { txn, .. } if *txn == t(C2, 2))),
            "cycle must be broken: {ev:?}"
        );
    }

    #[test]
    fn victim_selection_prefers_youngest() {
        // Upgrade deadlock between an old and a young transaction: the
        // young one dies regardless of which deferral lands last.
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 900), LockTarget::Object(obj(1, 0), ObjMode::S));
        g.lock(C2, t(C2, 5), LockTarget::Object(obj(1, 0), ObjMode::S));
        g.lock(C1, t(C1, 900), LockTarget::Object(obj(1, 0), ObjMode::X));
        g.lock(C2, t(C2, 5), LockTarget::Object(obj(1, 0), ObjMode::X));
        let ev1 = g.callback_reply(
            C2,
            CallbackKind::ReleaseObject(obj(1, 0)),
            CallbackReply::Deferred {
                blockers: vec![t(C2, 5)],
            },
        );
        let ev2 = g.callback_reply(
            C1,
            CallbackKind::ReleaseObject(obj(1, 0)),
            CallbackReply::Deferred {
                blockers: vec![t(C1, 900)],
            },
        );
        let victims: Vec<TxnId> = ev1
            .iter()
            .chain(ev2.iter())
            .filter_map(|e| match e {
                GlmEvent::AbortTxn { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect();
        assert!(
            victims.contains(&t(C1, 900)),
            "youngest (local seq 900) must be the victim: {victims:?}"
        );
    }

    #[test]
    fn release_object_cleans_empty_state() {
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(g.tracked_pages(), 1);
        g.release_object(C1, obj(1, 0));
        assert_eq!(g.tracked_pages(), 0);
    }

    #[test]
    fn batch_reply_with_mixed_done_and_deferred_outcomes() {
        // C1 caches locks on two objects (different pages); C2 and C3
        // queue conflicting requests, so C1 owes two callbacks. Its one
        // merged reply complies with the first and defers the second: the
        // Done half must grant immediately, the Deferred half must leave
        // the callback outstanding so `callback_complete` can finish it.
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(2, 0), ObjMode::X));
        let (o, _t, _) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        let (o, _t, _) = g.lock(C3, t(C3, 1), LockTarget::Object(obj(2, 0), ObjMode::S));
        assert_eq!(o, LockOutcome::Queued);

        let ev = g.callback_reply_batch(
            C1,
            vec![
                (
                    CallbackKind::ReleaseObject(obj(1, 0)),
                    CallbackReply::Done { retained: vec![] },
                ),
                (
                    CallbackKind::DowngradeObject(obj(2, 0)),
                    CallbackReply::Deferred {
                        blockers: vec![t(C1, 1)],
                    },
                ),
            ],
        );
        let grants: Vec<ClientId> = ev
            .iter()
            .filter_map(|e| match e {
                GlmEvent::Grant { client, .. } => Some(*client),
                _ => None,
            })
            .collect();
        assert_eq!(grants, vec![C2], "Done half grants, Deferred half waits");
        assert!(
            !ev.iter().any(|e| matches!(e, GlmEvent::AbortTxn { .. })),
            "no deadlock in this shape: {ev:?}"
        );

        // The deferred callback is still outstanding: completing it later
        // (C1's blocking txn ended) releases the grant to C3.
        let ev = g.callback_reply(
            C1,
            CallbackKind::DowngradeObject(obj(2, 0)),
            CallbackReply::Done { retained: vec![] },
        );
        assert!(
            matches!(ev.as_slice(), [GlmEvent::Grant { client, .. }] if *client == C3),
            "deferred callback completes into the pending grant: {ev:?}"
        );
    }

    #[test]
    fn batch_reply_applies_done_before_deferred_edges() {
        // Both halves of the batch target the same page: the Done reply
        // releases the lock C2's waiter needs, and the Deferred reply's
        // waits-for edges must be computed against the *post-Done* state —
        // a self-referential blocker must not abort a transaction whose
        // wait was already satisfied within the batch.
        let mut g = GlmCore::new();
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        g.lock(C1, t(C1, 1), LockTarget::Object(obj(1, 1), ObjMode::X));
        let (o, _t, _) = g.lock(C2, t(C2, 1), LockTarget::Object(obj(1, 0), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);
        let (o, _t, _) = g.lock(C3, t(C3, 1), LockTarget::Object(obj(1, 1), ObjMode::X));
        assert_eq!(o, LockOutcome::Queued);

        let ev = g.callback_reply_batch(
            C1,
            vec![
                (
                    CallbackKind::ReleaseObject(obj(1, 0)),
                    CallbackReply::Done { retained: vec![] },
                ),
                (
                    CallbackKind::ReleaseObject(obj(1, 1)),
                    CallbackReply::Deferred {
                        blockers: vec![t(C1, 1)],
                    },
                ),
            ],
        );
        let grants: Vec<ClientId> = ev
            .iter()
            .filter_map(|e| match e {
                GlmEvent::Grant { client, .. } => Some(*client),
                _ => None,
            })
            .collect();
        assert_eq!(grants, vec![C2]);
        assert!(
            !ev.iter()
                .any(|e| matches!(e, GlmEvent::AbortTxn { txn, .. } if *txn == t(C2, 1))),
            "the already-granted waiter must not become a deadlock victim: {ev:?}"
        );
    }
}
