//! Randomized soundness tests for the lock managers.
//!
//! The central safety invariant: however requests, callback replies and
//! releases interleave, the GLM never ends up with two clients holding
//! incompatible locks on the same resource. Action sequences are drawn
//! from the in-tree deterministic PRNG so every case replays from its
//! seed without an external property-testing crate.

use fgl_common::rng::DetRng;
use fgl_common::{ClientId, ObjectId, PageId, SlotId, TxnId};
use fgl_locks::glm::{CallbackReply, GlmCore, GlmEvent};
use fgl_locks::mode::{LockTarget, Mode, ObjMode};
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum Action {
    Lock {
        client: u32,
        page: u64,
        slot: u16,
        x: bool,
    },
    PageLock {
        client: u32,
        page: u64,
        x: bool,
    },
    AdaptiveLock {
        client: u32,
        page: u64,
        slot: u16,
        x: bool,
    },
    AnswerCallback {
        defer: bool,
    },
    CompleteDeferred,
    Release {
        client: u32,
        page: u64,
        slot: u16,
    },
}

fn random_action(rng: &mut DetRng) -> Action {
    let client = 1 + rng.gen_range(3) as u32;
    let page = rng.gen_range(3);
    let slot = rng.gen_range(3) as u16;
    let x = rng.chance(0.5);
    match rng.gen_range(6) {
        0 => Action::Lock {
            client,
            page,
            slot,
            x,
        },
        1 => Action::PageLock { client, page, x },
        2 => Action::AdaptiveLock {
            client,
            page,
            slot,
            x,
        },
        3 => Action::AnswerCallback { defer: x },
        4 => Action::CompleteDeferred,
        _ => Action::Release { client, page, slot },
    }
}

fn random_actions(rng: &mut DetRng, max_len: usize) -> Vec<Action> {
    let len = rng.range_usize(1, max_len);
    (0..len).map(|_| random_action(rng)).collect()
}

type PageHolder = (ClientId, Option<Mode>, Vec<(SlotId, ObjMode)>);

/// Check the no-incompatible-holders invariant over every page/slot.
fn assert_sound(glm: &GlmCore, pages: u64, slots: u16) {
    for p in 0..pages {
        let page = PageId(p);
        let holders: Vec<PageHolder> = (1..4u32)
            .map(|c| {
                let (pm, objs) = glm.client_locks_on_page(ClientId(c), page);
                (ClientId(c), pm, objs)
            })
            .collect();
        // Page-level: real locks must be mutually compatible.
        for (i, a) in holders.iter().enumerate() {
            for b in holders.iter().skip(i + 1) {
                if let (Some(ma), Some(mb)) = (a.1, b.1) {
                    assert!(
                        ma.compatible(mb),
                        "page {page}: {:?}@{ma:?} vs {:?}@{mb:?}",
                        a.0,
                        b.0
                    );
                }
            }
        }
        // Object-level: no two incompatible holders per slot.
        for s in 0..slots {
            let slot = SlotId(s);
            let ms: Vec<(ClientId, ObjMode)> = holders
                .iter()
                .flat_map(|(c, _, objs)| {
                    objs.iter()
                        .filter(|(sl, _)| *sl == slot)
                        .map(move |(_, m)| (*c, *m))
                })
                .collect();
            for (i, (ca, ma)) in ms.iter().enumerate() {
                for (cb, mb) in ms.iter().skip(i + 1) {
                    assert!(
                        ma.compatible(*mb),
                        "{page}.{slot:?}: {ca:?}@{ma:?} vs {cb:?}@{mb:?}"
                    );
                }
            }
        }
    }
}

/// Soundness under arbitrary interleavings: clients fire requests,
/// answer callbacks immediately or deferred, complete deferrals, and
/// release locks — the lock table never admits a conflict.
#[test]
fn glm_never_grants_conflicting_locks() {
    for case in 0..512u64 {
        let mut rng = DetRng::new(0x6133_5EED ^ case);
        let actions = random_actions(&mut rng, 80);
        let mut glm = GlmCore::new();
        // Callbacks waiting for an (immediate or deferred) answer.
        let mut pending: VecDeque<fgl_locks::glm::CallbackAction> = VecDeque::new();
        let mut deferred: VecDeque<fgl_locks::glm::CallbackAction> = VecDeque::new();
        let mut txn_seq = 0u32;

        let drive = |pending: &mut VecDeque<fgl_locks::glm::CallbackAction>,
                     events: Vec<GlmEvent>| {
            for e in events {
                if let GlmEvent::SendCallback(cb) = e {
                    pending.push_back(cb);
                }
            }
        };

        for action in actions {
            match action {
                Action::Lock {
                    client,
                    page,
                    slot,
                    x,
                } => {
                    txn_seq += 1;
                    let target = LockTarget::Object(
                        ObjectId::new(PageId(page), SlotId(slot)),
                        if x { ObjMode::X } else { ObjMode::S },
                    );
                    let (_, _, ev) = glm.lock(
                        ClientId(client),
                        TxnId::compose(ClientId(client), txn_seq),
                        target,
                    );
                    drive(&mut pending, ev);
                }
                Action::PageLock { client, page, x } => {
                    txn_seq += 1;
                    let target =
                        LockTarget::Page(PageId(page), if x { ObjMode::X } else { ObjMode::S });
                    let (_, _, ev) = glm.lock(
                        ClientId(client),
                        TxnId::compose(ClientId(client), txn_seq),
                        target,
                    );
                    drive(&mut pending, ev);
                }
                Action::AdaptiveLock {
                    client,
                    page,
                    slot,
                    x,
                } => {
                    txn_seq += 1;
                    let target = LockTarget::PageAdaptive(
                        PageId(page),
                        if x { ObjMode::X } else { ObjMode::S },
                        ObjectId::new(PageId(page), SlotId(slot)),
                    );
                    let (_, _, ev) = glm.lock(
                        ClientId(client),
                        TxnId::compose(ClientId(client), txn_seq),
                        target,
                    );
                    drive(&mut pending, ev);
                }
                Action::AnswerCallback { defer } => {
                    if let Some(cb) = pending.pop_front() {
                        if defer {
                            let ev = glm.callback_reply(
                                cb.to,
                                cb.kind,
                                CallbackReply::Deferred {
                                    blockers: vec![TxnId::compose(cb.to, 9999)],
                                },
                            );
                            deferred.push_back(cb);
                            drive(&mut pending, ev);
                        } else {
                            let ev = glm.callback_reply(
                                cb.to,
                                cb.kind,
                                CallbackReply::Done { retained: vec![] },
                            );
                            drive(&mut pending, ev);
                        }
                    }
                }
                Action::CompleteDeferred => {
                    if let Some(cb) = deferred.pop_front() {
                        let ev = glm.callback_reply(
                            cb.to,
                            cb.kind,
                            CallbackReply::Done { retained: vec![] },
                        );
                        drive(&mut pending, ev);
                    }
                }
                Action::Release { client, page, slot } => {
                    let ev = glm.release_object(
                        ClientId(client),
                        ObjectId::new(PageId(page), SlotId(slot)),
                    );
                    drive(&mut pending, ev);
                }
            }
            assert_sound(&glm, 3, 3);
        }
    }
}

/// Crash handling: after a client crash its shared locks are gone,
/// its exclusive locks remain, and the table stays sound.
#[test]
fn crash_preserves_soundness() {
    for case in 0..512u64 {
        let mut rng = DetRng::new(0x00C4_A511 ^ (case << 4));
        let actions = random_actions(&mut rng, 40);
        let victim = 1 + rng.gen_range(3) as u32;
        let mut glm = GlmCore::new();
        let mut pending: VecDeque<fgl_locks::glm::CallbackAction> = VecDeque::new();
        let mut txn_seq = 0u32;
        for action in actions {
            if let Action::Lock {
                client,
                page,
                slot,
                x,
            } = action
            {
                txn_seq += 1;
                let target = LockTarget::Object(
                    ObjectId::new(PageId(page), SlotId(slot)),
                    if x { ObjMode::X } else { ObjMode::S },
                );
                let (_, _, ev) = glm.lock(
                    ClientId(client),
                    TxnId::compose(ClientId(client), txn_seq),
                    target,
                );
                for e in ev {
                    if let GlmEvent::SendCallback(cb) = e {
                        pending.push_back(cb);
                    }
                }
                // Answer every callback immediately so locks actually move.
                while let Some(cb) = pending.pop_front() {
                    glm.callback_reply(cb.to, cb.kind, CallbackReply::Done { retained: vec![] });
                }
            }
        }
        let x_before = glm.exclusive_locks(ClientId(victim));
        glm.crash_client(ClientId(victim));
        assert_sound(&glm, 3, 3);
        // Exclusive locks survived the crash.
        assert_eq!(glm.exclusive_locks(ClientId(victim)), x_before);
        // No shared object locks remain for the victim.
        for p in 0..3u64 {
            let (pm, objs) = glm.client_locks_on_page(ClientId(victim), PageId(p));
            assert!(!matches!(pm, Some(Mode::S) | Some(Mode::IS)));
            assert!(objs.iter().all(|(_, m)| *m == ObjMode::X));
        }
    }
}
