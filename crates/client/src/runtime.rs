//! The client runtime: the application-facing transactional API plus the
//! client half of every protocol in the paper.
//!
//! A client owns a page cache, a local lock manager, a **private log**
//! (client-based logging, §2/§3), a dirty page table, and a connection to
//! the page server. Transactions begin, update objects, take savepoints,
//! commit and roll back entirely here; under the paper's commit policy
//! the *only* I/O at commit is the force of the private log.
//!
//! Locking discipline (mirror of the server's): the single client-state
//! mutex is never held across a call into the server. Server→client
//! callbacks arrive on server-driving threads and take the same mutex.

use crate::cache::ClientCache;
use crate::strategy::{strategy_for, LoggingStrategy};
use crate::txn::{TxnLogMode, TxnState, TxnStatus, UndoEntry};
use fgl_common::config::CommitPolicy;
use fgl_common::{ClientId, FglError, Lsn, ObjectId, PageId, Result, SlotId, SystemConfig, TxnId};
use fgl_locks::glm::CallbackKind;
use fgl_locks::llm::{LlmCore, LocalDecision};
use fgl_locks::mode::ObjMode;
use fgl_net::api::{LockResponse, ServerApi};
use fgl_net::stats::NetSim;
use fgl_net::wait::GrantMsg;
use fgl_obs::{emit, Event, HistKind, LogOwner, Metrics};
use fgl_storage::page::Page;
use fgl_wal::envelope::{RedoUpdateRecord, StrategyRecord};
use fgl_wal::manager::LogManager;
use fgl_wal::records::{LogPayload, UpdateRecord};
use fgl_wal::store::{LogStore, MemLogStore};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side DPT entry (§3.2 + the §3.6 remembered-LSN refinement).
#[derive(Clone, Copy, Debug)]
pub struct DptState {
    /// Earliest log record that may need redo for the page.
    pub redo_lsn: Lsn,
    /// End of log remembered when the page was last shipped (§3.6).
    pub remembered: Option<Lsn>,
    /// Updated again since the last ship? Controls entry drop on flush.
    pub updated_since_ship: bool,
}

pub(crate) struct ClientState {
    pub llm: LlmCore,
    pub cache: ClientCache,
    pub wal: LogManager,
    pub dpt: HashMap<PageId, DptState>,
    pub txns: HashMap<TxnId, TxnState>,
    pub next_seq: u32,
    pub records_since_ckpt: u64,
    /// Pages that must be re-fetched from the server before next use
    /// (a global lock grant may mean the cached copy is stale, §2).
    pub refetch: HashSet<PageId>,
    /// ServerLog baseline: log bytes below this LSN were shipped.
    pub shipped_upto: Lsn,
    /// Dirty pages evicted from the cache whose ship to the server has
    /// not completed yet. A callback racing that window must answer with
    /// this copy — otherwise the requester can fetch a stale server
    /// version and cache it under its fresh lock.
    pub in_transit: HashMap<PageId, Arc<[u8]>>,
    pub crashed: bool,
    /// First-use warm-up done (hot maps pre-sized, cache frame table
    /// reserved)? See [`ClientCore::warm_state`].
    pub warmed: bool,
}

/// Per-client counters reported by experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    pub commits: u64,
    pub aborts: u64,
    pub deadlock_victims: u64,
    pub lock_timeouts: u64,
    pub local_grants: u64,
    pub global_lock_requests: u64,
    pub pages_shipped: u64,
    pub forced_flush_requests: u64,
    pub checkpoints: u64,
    pub log_forces: u64,
    pub log_bytes: u64,
    pub log_stall_events: u64,
    /// Group commit: commits that ran the force themselves.
    pub commits_forced: u64,
    /// Group commit: commits covered by a cohort member's force.
    pub commits_piggybacked: u64,
}

/// The client runtime.
pub struct ClientCore {
    id: ClientId,
    /// Shared with the server and every sibling client — the config is
    /// read-mostly, so N clients hold N refcounts, not N copies.
    cfg: Arc<SystemConfig>,
    pub server: Arc<dyn ServerApi>,
    pub net: Arc<NetSim>,
    pub(crate) st: Mutex<ClientState>,
    /// Woken on callback completion / flush notification / txn end.
    pub(crate) cv: Condvar,
    /// Group-commit coordinator: end LSN the in-flight private-log force
    /// will cover; `None` when no force is in flight. Guards nothing else
    /// — the WAL itself stays under `st`.
    force_state: Mutex<Option<Lsn>>,
    /// Woken when the in-flight force retires.
    force_cv: Condvar,
    /// Shared with the server: one registry covers the whole system.
    pub(crate) metrics: Arc<Metrics>,
    /// The logging strategy, resolved once from the config knob.
    pub(crate) strategy: &'static dyn LoggingStrategy,
    /// Set on first transactional activity. Aggregations over huge client
    /// populations ([`stats`](Self::stats), `wal_bytes_by_kind`) short-
    /// circuit untouched clients without taking their state mutex.
    touched: AtomicBool,
    commits: AtomicU64,
    aborts: AtomicU64,
    deadlock_victims: AtomicU64,
    lock_timeouts: AtomicU64,
    local_grants: AtomicU64,
    global_lock_requests: AtomicU64,
    pages_shipped: AtomicU64,
    forced_flush_requests: AtomicU64,
    checkpoints: AtomicU64,
    log_stall_events: AtomicU64,
    commits_forced: AtomicU64,
    commits_piggybacked: AtomicU64,
}

impl ClientCore {
    /// Create a client over an in-memory private log (the common case for
    /// experiments; exact crash semantics).
    pub fn new(id: ClientId, server: Arc<dyn ServerApi>, net: Arc<NetSim>) -> Arc<Self> {
        Self::with_log_store(id, server, net, Box::new(MemLogStore::new()))
    }

    /// Re-open a client over an *existing* private log (e.g. a fresh
    /// process restarting over the crashed one's log file, §2: restart
    /// recovery may run anywhere with access to the log). The instance
    /// starts in the crashed state; call [`Self::recover`].
    pub fn reopen_with_log_store(
        id: ClientId,
        server: Arc<dyn ServerApi>,
        net: Arc<NetSim>,
        log_store: Box<dyn LogStore>,
    ) -> Result<Arc<Self>> {
        let cfg = server.config_shared();
        let wal = LogManager::recover(log_store, cfg.client_log_bytes)?;
        let core = Self::with_parts(id, server, net, wal, true);
        Ok(core)
    }

    /// Create a client whose private log lives on the given store.
    pub fn with_log_store(
        id: ClientId,
        server: Arc<dyn ServerApi>,
        net: Arc<NetSim>,
        log_store: Box<dyn LogStore>,
    ) -> Arc<Self> {
        let wal = LogManager::new(log_store, server.config().client_log_bytes);
        Self::with_parts(id, server, net, wal, false)
    }

    fn with_parts(
        id: ClientId,
        server: Arc<dyn ServerApi>,
        net: Arc<NetSim>,
        mut wal: LogManager,
        crashed: bool,
    ) -> Arc<Self> {
        let cfg = server.config_shared();
        let metrics = server.metrics();
        wal.attach_obs(metrics.clone(), LogOwner::Client(id));
        let mut state = ClientState {
            llm: LlmCore::new(cfg.granularity, cfg.update_policy),
            cache: ClientCache::new(cfg.client_cache_pages),
            wal,
            dpt: HashMap::new(),
            txns: HashMap::new(),
            next_seq: 0,
            records_since_ckpt: 0,
            refetch: HashSet::new(),
            shipped_upto: Lsn(1),
            in_transit: HashMap::new(),
            crashed,
            warmed: false,
        };
        if !cfg.lazy_client_init {
            // Eager mode: pay the full per-client footprint up front (the
            // pre-scaling behavior, kept for determinism ablation).
            Self::warm_state(&mut state, &cfg);
        }
        let strategy = strategy_for(cfg.logging_strategy);
        let core = Arc::new(ClientCore {
            id,
            cfg,
            server,
            net,
            st: Mutex::new(state),
            cv: Condvar::new(),
            force_state: Mutex::new(None),
            force_cv: Condvar::new(),
            metrics,
            strategy,
            touched: AtomicBool::new(crashed),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            deadlock_victims: AtomicU64::new(0),
            lock_timeouts: AtomicU64::new(0),
            local_grants: AtomicU64::new(0),
            global_lock_requests: AtomicU64::new(0),
            pages_shipped: AtomicU64::new(0),
            forced_flush_requests: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            log_stall_events: AtomicU64::new(0),
            commits_forced: AtomicU64::new(0),
            commits_piggybacked: AtomicU64::new(0),
        });
        if !crashed {
            core.server
                .register_client(Arc::new(crate::peer::PeerHandle::new(&core)));
        }
        core
    }

    pub fn id(&self) -> ClientId {
        self.id
    }

    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// First-use warm-up: pre-size the hot per-client containers to their
    /// steady-state capacities so the transaction path never grows them
    /// from empty. Deferred to the first `begin` under
    /// `lazy_client_init` so never-active clients skip the cost entirely.
    fn warm_state(st: &mut ClientState, cfg: &SystemConfig) {
        st.cache.warm();
        // The DPT tracks dirty cached pages, so the cache capacity bounds
        // its steady state (evictions move entries to `in_transit`).
        st.dpt.reserve(cfg.client_cache_pages);
        // Concurrent local transactions (group-commit cohorts) stay small
        // by the paper's one-transaction-at-a-time-per-client model.
        st.txns.reserve(8);
        st.in_transit.reserve(8);
        // A refetch entry exists per stale-while-locked cached page; the
        // steady state is a small fraction of the cache, never zero —
        // pre-sizing keeps the lock path off the allocator.
        st.refetch.reserve(8);
        st.warmed = true;
    }

    /// Mark this client active (see the `touched` field).
    pub(crate) fn touch(&self) {
        if !self.touched.load(Ordering::Relaxed) {
            self.touched.store(true, Ordering::Release);
        }
    }

    /// Has this client ever run a transaction (or been reopened from an
    /// existing log)? Cheap — no state lock. Population-wide aggregations
    /// use this as the active-client set.
    pub fn is_touched(&self) -> bool {
        self.touched.load(Ordering::Acquire)
    }

    /// Capacities of the hot per-client maps `(dpt, txns, in_transit)` —
    /// introspection for the scaling tests that pin down the lazy-init /
    /// pre-sizing behavior.
    pub fn hot_map_capacities(&self) -> (usize, usize, usize) {
        let st = self.st.lock();
        (
            st.dpt.capacity(),
            st.txns.capacity(),
            st.in_transit.capacity(),
        )
    }

    pub fn stats(&self) -> ClientStats {
        if !self.is_touched() {
            // Never active: every counter is zero and the WAL is empty.
            // Skipping the state lock keeps whole-population aggregation
            // O(active), not O(clients × mutex).
            return ClientStats::default();
        }
        let st = self.st.lock();
        let (_, log_bytes, log_forces) = st.wal.stats();
        ClientStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            deadlock_victims: self.deadlock_victims.load(Ordering::Relaxed),
            lock_timeouts: self.lock_timeouts.load(Ordering::Relaxed),
            local_grants: self.local_grants.load(Ordering::Relaxed),
            global_lock_requests: self.global_lock_requests.load(Ordering::Relaxed),
            pages_shipped: self.pages_shipped.load(Ordering::Relaxed),
            forced_flush_requests: self.forced_flush_requests.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            log_forces,
            log_bytes,
            log_stall_events: self.log_stall_events.load(Ordering::Relaxed),
            commits_forced: self.commits_forced.load(Ordering::Relaxed),
            commits_piggybacked: self.commits_piggybacked.load(Ordering::Relaxed),
        }
    }

    // ---- transaction lifecycle -------------------------------------------

    /// Begin a new transaction.
    pub fn begin(&self) -> Result<TxnId> {
        self.touch();
        loop {
            let mut st = self.st.lock();
            if st.crashed {
                return Err(FglError::Disconnected("client crashed".into()));
            }
            if !st.warmed {
                Self::warm_state(&mut st, &self.cfg);
            }
            st.next_seq += 1;
            let txn = TxnId::compose(self.id, st.next_seq);
            let lsn = match self.append(&mut st, &LogPayload::Begin { txn }, false) {
                Ok(l) => l,
                Err(FglError::LogFull) => {
                    st.next_seq -= 1;
                    drop(st);
                    self.log_stall_events.fetch_add(1, Ordering::Relaxed);
                    self.reclaim_log_space()?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let mut t = TxnState::new(txn);
            t.note_record(lsn);
            st.txns.insert(txn, t);
            return Ok(txn);
        }
    }

    /// Commit. Under client-based logging this forces the *private* log
    /// and nothing else (the paper's headline property).
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.commit_with(txn, || {})
    }

    /// Commit, running `before_release` after the commit is durable but
    /// *before* the transaction's locks are released — the window in
    /// which external bookkeeping (e.g. a serialization-order oracle) can
    /// observe the commit without racing the next writer of the same
    /// objects.
    pub fn commit_with(&self, txn: TxnId, before_release: impl FnOnce()) -> Result<()> {
        let commit_start = self.metrics.now_us();
        let _span = fgl_obs::trace::span(fgl_obs::SpanKind::Commit, txn);
        let (policy, ship_log, dirtied, group_force_upto) = {
            let mut st = self.st.lock();
            let t = st.txns.get(&txn).ok_or(FglError::InvalidTxnState {
                txn,
                state: "unknown",
            })?;
            if !t.is_active() {
                return Err(FglError::InvalidTxnState {
                    txn,
                    state: "terminated",
                });
            }
            let prev = t.last_lsn;
            let dirtied: Vec<PageId> = t.dirtied.iter().copied().collect();
            self.append_critical(
                &mut st,
                &LogPayload::Commit {
                    txn,
                    prev_lsn: prev,
                },
            )?;
            match self.cfg.commit_policy {
                CommitPolicy::ClientLog => {
                    // The strategy decides how the commit record becomes
                    // durable: force right here, or return an LSN to make
                    // durable *after* the state mutex drops (group commit
                    // and write-behind release the mutex between the
                    // commit-record append and the force, so concurrent
                    // committers can append behind us and share it).
                    let upto = self.strategy.commit_append_done(self, &mut st)?;
                    (CommitPolicy::ClientLog, None, dirtied, upto)
                }
                CommitPolicy::ServerLog | CommitPolicy::ShipPagesAtCommit => {
                    // ARIES/CSA shape: the durable copy of the log lives at
                    // the server; ship the unshipped suffix.
                    let from = st.shipped_upto;
                    let to = st.wal.end_lsn();
                    let bytes = st.wal.read_raw(from, to)?;
                    st.shipped_upto = to;
                    // The local store is volatile under this policy, but
                    // mark it durable so local scans (rollback) still work.
                    st.wal.force()?;
                    (self.cfg.commit_policy, Some(bytes), dirtied, None)
                }
            }
        };
        if let Some(upto) = group_force_upto {
            self.strategy.commit_wait_durable(self, txn, upto)?;
        }
        if let Some(bytes) = ship_log {
            // The dirtied-page set doubles as the partition-routing hint:
            // a multi-server front end ships only to the owners of these
            // pages (one serialized force for a partition-local txn).
            let touched: Vec<PageId> = dirtied.to_vec();
            self.server.commit_ship_log(self.id, bytes, touched)?;
            if policy == CommitPolicy::ShipPagesAtCommit {
                for page in &dirtied {
                    self.ship_page_copy(*page, false)?;
                }
            }
        }
        {
            let mut st = self.st.lock();
            if let Some(t) = st.txns.get_mut(&txn) {
                t.status = TxnStatus::Committed;
            }
        }
        before_release();
        self.commits.fetch_add(1, Ordering::Relaxed);
        let released = self.finish_txn(txn);
        self.metrics.observe_since(HistKind::Commit, commit_start);
        released
    }

    /// Group commit (client-based logging): make the commit record ending
    /// at `upto` durable. The commit must not return before its LSN is
    /// durable; every exit below re-establishes `durable_lsn() >= upto`.
    ///
    /// Leader/follower protocol: the first committer to find no force in
    /// flight becomes the leader — it captures the current end of log as
    /// the force's goal, pays the device latency with **no locks held**
    /// (the window in which cohort committers append behind it), then
    /// promotes the captured range. A committer that finds an in-flight
    /// force covering its LSN just waits for that force to retire
    /// (piggybacked — no disk time of its own); one whose record is past
    /// the goal waits for the slot and leads the next force.
    pub(crate) fn group_force(&self, txn: TxnId, upto: Lsn) -> Result<()> {
        self.force_coalesced(txn, upto, Duration::ZERO)
    }

    /// The coalescing force behind both [`Self::group_force`] and the
    /// write-behind strategy. A non-zero `window` makes the leader wait
    /// *before* capturing its goal, widening the span of records (and
    /// committers) one device write covers.
    pub(crate) fn force_coalesced(&self, txn: TxnId, upto: Lsn, window: Duration) -> Result<()> {
        let wait_start = self.metrics.now_us();
        // Covers the whole durability wait: leader device time and
        // piggybacked waits alike.
        let _span = fgl_obs::trace::span(fgl_obs::SpanKind::WalForce, txn);
        let mut forced = false;
        loop {
            if self.st.lock().wal.durable_lsn() >= upto {
                break;
            }
            let mut fs = self.force_state.lock();
            if fs.is_some() {
                // An in-flight force either covers us (wait → durable) or
                // predates our record (wait → lead the next one).
                self.force_cv.wait(&mut fs);
                continue;
            }
            // Become the leader. Capture the goal under the state mutex:
            // everything appended so far rides this force. With a
            // write-behind window the capture is delayed so cohort
            // committers can append behind us first.
            let goal = if window.is_zero() {
                let g = self.st.lock().wal.end_lsn();
                *fs = Some(g);
                drop(fs);
                g
            } else {
                *fs = Some(Lsn::NIL); // claim the slot; goal comes later
                drop(fs);
                fgl_sched::pause(window);
                let g = self.st.lock().wal.end_lsn();
                *self.force_state.lock() = Some(g);
                g
            };
            let started = self.metrics.now_us();
            if !self.cfg.disk_latency.is_zero() {
                // The device works here, outside every lock — cohort
                // committers append their records behind `goal` now.
                fgl_sched::pause(self.cfg.disk_latency);
            }
            let res = self.st.lock().wal.complete_force(goal, Some(started));
            *self.force_state.lock() = None;
            self.force_cv.notify_all();
            res?;
            forced = true;
            break;
        }
        self.metrics
            .observe_since(HistKind::GroupCommit, wait_start);
        if forced {
            self.commits_forced.fetch_add(1, Ordering::Relaxed);
            self.metrics.add("group_commit_forced", 1);
        } else {
            self.commits_piggybacked.fetch_add(1, Ordering::Relaxed);
            self.metrics.add("group_commit_piggybacked", 1);
        }
        emit(Event::GroupCommit {
            client: self.id,
            txn,
            forced,
        });
        Ok(())
    }

    /// Roll back and terminate the transaction.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.rollback_chain(txn, Lsn::NIL)?;
        {
            let mut st = self.st.lock();
            let prev = st.txns.get(&txn).map(|t| t.last_lsn).unwrap_or(Lsn::NIL);
            self.append_critical(
                &mut st,
                &LogPayload::Abort {
                    txn,
                    prev_lsn: prev,
                },
            )?;
            if let Some(t) = st.txns.get_mut(&txn) {
                t.status = TxnStatus::Aborted;
            }
        }
        emit(Event::TxnAbort {
            client: self.id,
            txn,
        });
        self.aborts.fetch_add(1, Ordering::Relaxed);
        self.finish_txn(txn)
    }

    /// Establish (or move) a named savepoint (§3.2 partial rollbacks).
    pub fn savepoint(&self, txn: TxnId, name: &str) -> Result<()> {
        let mut st = self.st.lock();
        let t =
            st.txns
                .get_mut(&txn)
                .filter(|t| t.is_active())
                .ok_or(FglError::InvalidTxnState {
                    txn,
                    state: "not active",
                })?;
        t.set_savepoint(name);
        Ok(())
    }

    /// Partial rollback to a named savepoint; the transaction continues.
    pub fn rollback_to(&self, txn: TxnId, name: &str) -> Result<()> {
        let upto =
            {
                let st = self.st.lock();
                let t = st.txns.get(&txn).filter(|t| t.is_active()).ok_or(
                    FglError::InvalidTxnState {
                        txn,
                        state: "not active",
                    },
                )?;
                t.savepoint_lsn(name)
                    .ok_or_else(|| FglError::UnknownSavepoint(name.to_string()))?
            };
        self.rollback_chain(txn, upto)?;
        let mut st = self.st.lock();
        if let Some(t) = st.txns.get_mut(&txn) {
            t.truncate_savepoints(upto);
        }
        Ok(())
    }

    /// Release lock pins, complete deferred callbacks, drop the txn.
    fn finish_txn(&self, txn: TxnId) -> Result<()> {
        let (completions, low_space) = {
            let mut st = self.st.lock();
            st.txns.remove(&txn);
            let completions = st.llm.end_txn(txn);
            let low = st.wal.free_bytes() < st.wal.capacity() / 8;
            (completions, low)
        };
        self.cv.notify_all();
        if low_space {
            // Proactive §3.6 reclamation at a transaction boundary, while
            // there is still headroom for the checkpoint record it needs.
            let _ = self.reclaim_log_space();
        }
        // Cross-server commit atomicity: end-of-transaction callback
        // completions must land on every touched partition before the
        // transaction's locks are considered released. Group by owning
        // partition and drive the groups in parallel — the client paid
        // its single WAL force already, so the partitions' round-trips
        // overlap (max, not sum).
        let instances = self.cfg.server_instances;
        if instances > 1 && completions.len() > 1 {
            let mut groups: Vec<Vec<_>> = (0..instances).map(|_| Vec::new()).collect();
            for c in completions {
                groups[(c.0.page().0 % instances as u64) as usize].push(c);
            }
            let groups: Vec<_> = groups.into_iter().filter(|g| !g.is_empty()).collect();
            if groups.len() > 1 {
                let slots: Vec<Mutex<Option<Result<()>>>> =
                    groups.iter().map(|_| Mutex::new(None)).collect();
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = groups
                    .into_iter()
                    .zip(&slots)
                    .map(|(group, slot)| {
                        Box::new(move || {
                            *slot.lock() = Some(self.deliver_completions(group));
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                fgl_sched::fanout(jobs);
                for slot in slots {
                    slot.into_inner().expect("completion group ran")?;
                }
                return Ok(());
            }
            for group in groups {
                self.deliver_completions(group)?;
            }
            return Ok(());
        }
        self.deliver_completions(completions)
    }

    /// Ship one partition's worth of deferred-callback completions, in
    /// order, each with its page copy under WAL discipline.
    fn deliver_completions(
        &self,
        completions: Vec<(CallbackKind, fgl_locks::glm::CallbackReply)>,
    ) -> Result<()> {
        for (kind, reply) in completions {
            let retained = match reply {
                fgl_locks::glm::CallbackReply::Done { retained } => retained,
                _ => Vec::new(),
            };
            let page_copy = self.page_copy_for_callback(kind)?;
            self.server
                .callback_complete(self.id, kind, retained, page_copy)?;
        }
        Ok(())
    }

    /// When a completed callback sheds a lock on a dirtied page, ship the
    /// copy with the completion (§3.2) — forcing the log first (WAL).
    fn page_copy_for_callback(&self, kind: CallbackKind) -> Result<Option<Arc<[u8]>>> {
        let sheds = !matches!(kind, CallbackKind::DeEscalatePage(_));
        let page = kind.page();
        let mut st = self.st.lock();
        if !st.cache.is_dirty(page) {
            if sheds {
                self.drop_if_unlocked(&mut st, page);
            }
            return Ok(None);
        }
        self.strategy.before_ship(self, &mut st, page)?;
        st.wal.force()?;
        let bytes: Option<Arc<[u8]>> = st.cache.peek(page).map(|p| Arc::from(p.as_bytes()));
        if bytes.is_some() {
            st.cache.mark_clean(page);
            self.pages_shipped.fetch_add(1, Ordering::Relaxed);
            self.note_shipped(&mut st, page);
        }
        if sheds {
            self.drop_if_unlocked(&mut st, page);
        }
        Ok(bytes)
    }

    /// §3.2: after releasing locks, drop the page from the cache when no
    /// lock on it remains.
    pub(crate) fn drop_if_unlocked(&self, st: &mut ClientState, page: PageId) {
        if !st.llm.holds_any_on_page(page) {
            st.cache.remove(page);
        }
    }

    // ---- object operations --------------------------------------------------

    /// Read an object's bytes under a shared lock.
    pub fn read(&self, txn: TxnId, oid: ObjectId) -> Result<Vec<u8>> {
        self.ensure_access(txn, oid, ObjMode::S, false)?;
        self.with_page(oid.page, |page| Ok(page.read_object(oid.slot)?.to_vec()))
    }

    /// Overwrite an object without changing its size (mergeable, §3.1).
    pub fn write(&self, txn: TxnId, oid: ObjectId, bytes: &[u8]) -> Result<()> {
        self.ensure_access(txn, oid, ObjMode::X, false)?;
        self.logged_update(txn, oid, false, |page| {
            let before = page.read_object(oid.slot)?.to_vec();
            if before.len() != bytes.len() {
                return Err(FglError::Protocol(format!(
                    "write: size change on {oid} needs resize",
                )));
            }
            Ok((Some(before), Some(bytes.to_vec())))
        })
    }

    /// Overwrite part of an object (mergeable).
    pub fn write_at(&self, txn: TxnId, oid: ObjectId, offset: usize, bytes: &[u8]) -> Result<()> {
        self.ensure_access(txn, oid, ObjMode::X, false)?;
        self.logged_update(txn, oid, false, |page| {
            let before = page.read_object(oid.slot)?.to_vec();
            if offset + bytes.len() > before.len() {
                return Err(FglError::Protocol(format!(
                    "write_at: range past end of {oid}",
                )));
            }
            let mut after = before.clone();
            after[offset..offset + bytes.len()].copy_from_slice(bytes);
            Ok((Some(before), Some(after)))
        })
    }

    /// Create a new object on `page` (structural: needs the page
    /// exclusively, §3.1). Returns its id.
    pub fn insert(&self, txn: TxnId, page: PageId, bytes: &[u8]) -> Result<ObjectId> {
        // Structural lock on the page.
        let probe = ObjectId::new(page, SlotId(0));
        self.ensure_access(txn, probe, ObjMode::X, true)?;
        loop {
            self.ensure_page_present(page)?;
            let mut st = self.st.lock();
            let slot = {
                let p = st.cache.peek(page).ok_or(FglError::PageNotFound(page))?;
                p.peek_insert_slot()
            };
            let oid = ObjectId::new(page, slot);
            let prev = self.txn_prev(&st, txn)?;
            let psn_before = st.cache.peek(page).unwrap().psn();
            let mode = self.txn_log_mode(&mut st, txn, bytes.len())?;
            let record = self.update_record(
                mode,
                txn,
                prev,
                oid,
                psn_before,
                None,
                Some(bytes.to_vec()),
                true,
            );
            let lsn = match self.append(&mut st, &record, false) {
                Ok(l) => l,
                Err(FglError::LogFull) => {
                    drop(st);
                    self.log_stall_events.fetch_add(1, Ordering::Relaxed);
                    self.reclaim_log_space()?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let p = st.cache.get_mut(page).ok_or(FglError::PageNotFound(page))?;
            let got = p.insert_object(bytes)?;
            debug_assert_eq!(got, slot);
            self.note_mem_undo(&mut st, mode, txn, oid, lsn, None);
            self.after_update(&mut st, txn, oid, lsn);
            st.llm.register_object_use(txn, oid, ObjMode::X);
            return Ok(oid);
        }
    }

    /// Delete an object (structural).
    pub fn remove(&self, txn: TxnId, oid: ObjectId) -> Result<()> {
        self.ensure_access(txn, oid, ObjMode::X, true)?;
        self.logged_update(txn, oid, true, |page| {
            let before = page.read_object(oid.slot)?.to_vec();
            Ok((Some(before), None))
        })
    }

    /// Resize an object, preserving the common prefix (structural).
    pub fn resize(&self, txn: TxnId, oid: ObjectId, new_len: usize) -> Result<()> {
        self.ensure_access(txn, oid, ObjMode::X, true)?;
        self.logged_update(txn, oid, true, |page| {
            let before = page.read_object(oid.slot)?.to_vec();
            let mut after = before.clone();
            after.resize(new_len, 0);
            Ok((Some(before), Some(after)))
        })
    }

    /// Allocate a fresh page from the server; the creator holds it
    /// exclusively.
    pub fn create_page(&self, txn: TxnId) -> Result<PageId> {
        {
            let st = self.st.lock();
            if !st.txns.get(&txn).map(|t| t.is_active()).unwrap_or(false) {
                return Err(FglError::InvalidTxnState {
                    txn,
                    state: "not active",
                });
            }
        }
        let bytes = self.server.allocate_page(self.id, txn)?;
        let page = Page::from_bytes(bytes)?;
        let pid = page.id();
        let evicted = {
            let mut st = self.st.lock();
            st.llm.grant_page_lock(txn, pid, ObjMode::X);
            let end = st.wal.end_lsn();
            st.dpt.entry(pid).or_insert(DptState {
                redo_lsn: end,
                remembered: None,
                updated_since_ship: false,
            });
            let ev = st.cache.install_exact(page, false);
            self.stash_evicted(&mut st, ev)?
        };
        self.handle_evicted(evicted)?;
        Ok(pid)
    }

    /// Apply a logged single-object update: computes before/after images
    /// under the page, appends the log record first (WAL), then mutates.
    fn logged_update<F>(&self, txn: TxnId, oid: ObjectId, structural: bool, f: F) -> Result<()>
    where
        F: Fn(&Page) -> Result<(Option<Vec<u8>>, Option<Vec<u8>>)>,
    {
        loop {
            self.ensure_page_present(oid.page)?;
            let mut st = self.st.lock();
            let prev = self.txn_prev(&st, txn)?;
            let (before, after, psn_before) = {
                let p = st
                    .cache
                    .peek(oid.page)
                    .ok_or(FglError::PageNotFound(oid.page))?;
                let (b, a) = f(p)?;
                (b, a, p.psn())
            };
            let mode = self.txn_log_mode(&mut st, txn, after.as_ref().map_or(0, |a| a.len()))?;
            let record = self.update_record(
                mode,
                txn,
                prev,
                oid,
                psn_before,
                before.clone(),
                after.clone(),
                structural,
            );
            let lsn = match self.append(&mut st, &record, false) {
                Ok(l) => l,
                Err(FglError::LogFull) => {
                    drop(st);
                    self.log_stall_events.fetch_add(1, Ordering::Relaxed);
                    self.reclaim_log_space()?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            {
                let p = st
                    .cache
                    .get_mut(oid.page)
                    .ok_or(FglError::PageNotFound(oid.page))?;
                match (&before, &after) {
                    (Some(_), Some(a)) => {
                        if p.read_object(oid.slot)?.len() == a.len() {
                            p.write_object(oid.slot, a)?;
                        } else {
                            p.free_object(oid.slot)?;
                            p.insert_object_at(oid.slot, a)?;
                        }
                    }
                    (Some(_), None) => {
                        p.free_object(oid.slot)?;
                    }
                    (None, Some(a)) => {
                        p.insert_object_at(oid.slot, a)?;
                    }
                    (None, None) => {}
                }
            }
            self.note_mem_undo(&mut st, mode, txn, oid, lsn, before);
            self.after_update(&mut st, txn, oid, lsn);
            return Ok(());
        }
    }

    /// The transaction's log mode, fixed by the strategy at its first
    /// update (`payload_len` = that update's after-image length).
    fn txn_log_mode(
        &self,
        st: &mut ClientState,
        txn: TxnId,
        payload_len: usize,
    ) -> Result<TxnLogMode> {
        let t =
            st.txns
                .get_mut(&txn)
                .filter(|t| t.is_active())
                .ok_or(FglError::InvalidTxnState {
                    txn,
                    state: "not active",
                })?;
        Ok(match t.log_mode {
            Some(m) => m,
            None => {
                let m = self.strategy.log_mode_for_txn(payload_len);
                t.log_mode = Some(m);
                m
            }
        })
    }

    /// Build the log record for one object update under `mode`: the full
    /// physical record, or the redo-only envelope (before-image withheld;
    /// it goes on the in-memory undo stack instead).
    #[allow(clippy::too_many_arguments)]
    fn update_record(
        &self,
        mode: TxnLogMode,
        txn: TxnId,
        prev: Lsn,
        oid: ObjectId,
        psn_before: fgl_common::Psn,
        before: Option<Vec<u8>>,
        after: Option<Vec<u8>>,
        structural: bool,
    ) -> LogPayload {
        match mode {
            TxnLogMode::Physical => LogPayload::Update(UpdateRecord {
                txn,
                prev_lsn: prev,
                object: oid,
                psn_before,
                before,
                after,
                structural,
            }),
            TxnLogMode::RedoOnly => StrategyRecord::RedoUpdate(RedoUpdateRecord {
                txn,
                prev_lsn: prev,
                object: oid,
                psn_before,
                after,
                structural,
            })
            .into_payload(self.strategy.envelope_id()),
        }
    }

    /// RedoOnly mode keeps undo state in memory: push the before-image.
    fn note_mem_undo(
        &self,
        st: &mut ClientState,
        mode: TxnLogMode,
        txn: TxnId,
        oid: ObjectId,
        lsn: Lsn,
        before: Option<Vec<u8>>,
    ) {
        if mode != TxnLogMode::RedoOnly {
            return;
        }
        if let Some(t) = st.txns.get_mut(&txn) {
            t.cold_mut().undo.push(UndoEntry {
                lsn,
                object: oid,
                before,
            });
        }
    }

    fn txn_prev(&self, st: &ClientState, txn: TxnId) -> Result<Lsn> {
        st.txns
            .get(&txn)
            .filter(|t| t.is_active())
            .map(|t| t.last_lsn)
            .ok_or(FglError::InvalidTxnState {
                txn,
                state: "not active",
            })
    }

    pub(crate) fn after_update(&self, st: &mut ClientState, txn: TxnId, oid: ObjectId, lsn: Lsn) {
        if let Some(t) = st.txns.get_mut(&txn) {
            t.note_record(lsn);
            t.dirtied.insert(oid.page);
        }
        if let Some(e) = st.dpt.get_mut(&oid.page) {
            e.updated_since_ship = true;
        } else {
            // Conservative: entry should exist from the X grant; create it
            // with the record's own LSN if not.
            st.dpt.insert(
                oid.page,
                DptState {
                    redo_lsn: lsn,
                    remembered: None,
                    updated_since_ship: true,
                },
            );
        }
    }

    // ---- locking ----------------------------------------------------------------

    /// Ensure `txn` may access `oid` in `mode`; drives the LLM/GLM
    /// protocol including waits, deadlock verdicts and timeouts.
    pub(crate) fn ensure_access(
        &self,
        txn: TxnId,
        oid: ObjectId,
        mode: ObjMode,
        structural: bool,
    ) -> Result<()> {
        let deadline = Instant::now() + self.cfg.lock_timeout;
        loop {
            let decision = {
                let mut st = self.st.lock();
                if !st.txns.get(&txn).map(|t| t.is_active()).unwrap_or(false) {
                    return Err(FglError::InvalidTxnState {
                        txn,
                        state: "not active",
                    });
                }
                match st.llm.acquire(txn, oid, mode, structural) {
                    LocalDecision::BlockedByCallback => {
                        // Wait for local callback resolution, then retry.
                        if Instant::now() >= deadline {
                            drop(st);
                            self.lock_timeouts.fetch_add(1, Ordering::Relaxed);
                            emit(Event::LockTimeout {
                                client: self.id,
                                txn,
                                page: oid.page,
                            });
                            self.on_lock_failure(txn, true)?;
                            fgl_obs::dump_on_anomaly("lock-timeout");
                            return Err(FglError::LockTimeout(txn));
                        }
                        self.cv.wait_for(&mut st, Duration::from_millis(20));
                        continue;
                    }
                    d => d,
                }
            };
            match decision {
                LocalDecision::LocallyGranted => {
                    self.local_grants.fetch_add(1, Ordering::Relaxed);
                    if mode == ObjMode::X || structural {
                        let mut st = self.st.lock();
                        self.ensure_dpt(&mut st, oid.page);
                    }
                    return Ok(());
                }
                LocalDecision::NeedGlobal(target) => {
                    self.global_lock_requests.fetch_add(1, Ordering::Relaxed);
                    let wait_start = self.metrics.now_us();
                    // Dropped on every exit from this arm: grant, victim,
                    // timeout and transport error all close the span.
                    let _span = fgl_obs::trace::span(fgl_obs::SpanKind::LockWait, txn);
                    let cached_psn = {
                        let mut st = self.st.lock();
                        // Guard the in-flight window: a callback arriving
                        // between the server-side grant and our
                        // installation below must defer, not revoke.
                        st.llm.begin_global_request(txn, target);
                        st.cache.peek(oid.page).map(|p| p.psn())
                    };
                    let resp = match self.server.lock(self.id, txn, target, cached_psn) {
                        Ok(r) => r,
                        Err(e) => {
                            self.st.lock().llm.end_global_request(txn);
                            return Err(e);
                        }
                    };
                    let granted = match resp {
                        LockResponse::Granted {
                            target, evidence, ..
                        } => Some((target, evidence)),
                        LockResponse::Wait(waiter) => match waiter.wait(self.cfg.lock_timeout) {
                            Some(GrantMsg::Granted {
                                target, evidence, ..
                            }) => Some((target, evidence)),
                            Some(GrantMsg::Victim) => {
                                self.deadlock_victims.fetch_add(1, Ordering::Relaxed);
                                self.clear_inflight(txn);
                                self.on_lock_failure(txn, true)?;
                                fgl_obs::dump_on_anomaly("deadlock-victim");
                                return Err(FglError::DeadlockVictim(txn));
                            }
                            None => {
                                self.lock_timeouts.fetch_add(1, Ordering::Relaxed);
                                emit(Event::LockTimeout {
                                    client: self.id,
                                    txn,
                                    page: oid.page,
                                });
                                self.server.cancel_wait(self.id, txn);
                                self.clear_inflight(txn);
                                self.on_lock_failure(txn, true)?;
                                fgl_obs::dump_on_anomaly("lock-timeout");
                                return Err(FglError::LockTimeout(txn));
                            }
                        },
                    };
                    if let Some((eff, evidence)) = granted {
                        self.metrics.observe_since(HistKind::LockWait, wait_start);
                        let mut st = self.st.lock();
                        st.llm.global_granted(txn, oid, mode, eff);
                        st.llm.end_global_request(txn);
                        // The cached copy may be stale for the newly locked
                        // object: refetch before next use (§2).
                        if st.cache.contains(oid.page) {
                            st.refetch.insert(oid.page);
                        }
                        if mode == ObjMode::X || structural {
                            self.ensure_dpt(&mut st, oid.page);
                        }
                        // §3.1: the client that triggered a callback for an
                        // exclusive lock logs who responded and at which
                        // PSN — server restart recovery rebuilds the
                        // inter-client update order from these records.
                        if mode == ObjMode::X {
                            if let Some((from, psn)) = evidence {
                                let record =
                                    LogPayload::Callback(fgl_wal::records::CallbackRecord {
                                        object: oid,
                                        from_client: from,
                                        psn,
                                    });
                                let _ = self.append(&mut st, &record, true);
                            }
                        }
                        return Ok(());
                    }
                }
                LocalDecision::BlockedByCallback => unreachable!("handled above"),
            }
        }
    }

    /// Clear a failed request's in-flight registration. Deferred
    /// callbacks that were waiting on it alone complete via the
    /// `finish_txn → end_txn` that follows every lock failure.
    fn clear_inflight(&self, txn: TxnId) {
        self.st.lock().llm.end_global_request(txn);
    }

    /// Roll the transaction back after a deadlock/timeout verdict so its
    /// locks stop blocking others.
    fn on_lock_failure(&self, txn: TxnId, rollback: bool) -> Result<()> {
        if rollback {
            self.rollback_chain(txn, Lsn::NIL)?;
            let mut st = self.st.lock();
            let prev = st.txns.get(&txn).map(|t| t.last_lsn).unwrap_or(Lsn::NIL);
            self.append_critical(
                &mut st,
                &LogPayload::Abort {
                    txn,
                    prev_lsn: prev,
                },
            )?;
            if let Some(t) = st.txns.get_mut(&txn) {
                t.status = TxnStatus::Aborted;
            }
            drop(st);
            emit(Event::TxnAbort {
                client: self.id,
                txn,
            });
            self.aborts.fetch_add(1, Ordering::Relaxed);
            self.finish_txn(txn)?;
        }
        Ok(())
    }

    /// §3.2: DPT entry at first exclusive lock, RedoLSN = current end of
    /// log (conservative).
    fn ensure_dpt(&self, st: &mut ClientState, page: PageId) {
        let end = st.wal.end_lsn();
        st.dpt.entry(page).or_insert(DptState {
            redo_lsn: end,
            remembered: None,
            updated_since_ship: false,
        });
    }

    // ---- page movement ---------------------------------------------------------

    /// Make sure the page is cached and fresh (honouring `refetch`).
    pub(crate) fn ensure_page_present(&self, page: PageId) -> Result<()> {
        loop {
            {
                let st = self.st.lock();
                if st.cache.contains(page) && !st.refetch.contains(&page) {
                    return Ok(());
                }
            }
            let fetch_start = self.metrics.now_us();
            let fetch_span = fgl_obs::trace::span(fgl_obs::SpanKind::PageFetch, TxnId(0));
            let (bytes, _dct_psn) = self.server.fetch_page(self.id, page)?;
            drop(fetch_span);
            self.metrics.observe_since(HistKind::PageFetch, fetch_start);
            let incoming = Page::from_bytes(bytes)?;
            let evicted = {
                let mut st = self.st.lock();
                st.refetch.remove(&page);
                let ev = st.cache.install_from_server(incoming)?;
                self.stash_evicted(&mut st, ev)?
            };
            self.handle_evicted(evicted)?;
        }
    }

    /// Run `f` against the cached page.
    fn with_page<R>(&self, page: PageId, f: impl FnOnce(&Page) -> Result<R>) -> Result<R> {
        self.ensure_page_present(page)?;
        let st = self.st.lock();
        let p = st.cache.peek(page).ok_or(FglError::PageNotFound(page))?;
        f(p)
    }

    /// A dirty page fell out of the cache: force the log (WAL), ship it to
    /// the server, and remember the end of log for the §3.6 RedoLSN
    /// advance. The page must already be stashed in `in_transit` (by the
    /// same critical section that evicted it) so callbacks racing the
    /// ship can still produce the copy.
    fn handle_evicted(&self, evicted: Option<PageId>) -> Result<()> {
        let Some(pid) = evicted else { return Ok(()) };
        let bytes = {
            let st = self.st.lock();
            match st.in_transit.get(&pid) {
                // Arc bump — the stash and the ship share one frame.
                Some(b) => Arc::clone(b),
                None => return Ok(()), // a callback already shipped it
            }
        };
        self.pages_shipped.fetch_add(1, Ordering::Relaxed);
        let result = self.server.ship_page(self.id, bytes, true);
        self.st.lock().in_transit.remove(&pid);
        result
    }

    /// Stash an evicted dirty page for shipping; runs inside the same
    /// lock scope as the eviction (no window where the page exists
    /// nowhere). Forces the log first (WAL rule) and remembers the §3.6
    /// ship point.
    fn stash_evicted(
        &self,
        st: &mut ClientState,
        evicted: Option<fgl_storage::bufferpool::EvictedPage>,
    ) -> Result<Option<PageId>> {
        let Some(ev) = evicted.filter(|e| e.dirty) else {
            return Ok(None);
        };
        let pid = ev.page.id();
        self.strategy.before_ship(self, st, pid)?;
        st.wal.force()?;
        self.note_shipped(st, pid);
        st.in_transit.insert(pid, ev.page.into_bytes().into());
        Ok(Some(pid))
    }

    fn note_shipped(&self, st: &mut ClientState, page: PageId) {
        let end = st.wal.end_lsn();
        if let Some(e) = st.dpt.get_mut(&page) {
            e.remembered = Some(end);
            e.updated_since_ship = false;
        }
    }

    /// Ship a copy of a cached page to the server (commit baselines and
    /// recovery hardening).
    pub(crate) fn ship_page_copy(&self, page: PageId, replaced: bool) -> Result<()> {
        let bytes = {
            let mut st = self.st.lock();
            if !st.cache.is_dirty(page) {
                return Ok(());
            }
            self.strategy.before_ship(self, &mut st, page)?;
            st.wal.force()?;
            let b: Arc<[u8]> = st
                .cache
                .peek(page)
                .map(|p| Arc::from(p.as_bytes()))
                .ok_or(FglError::PageNotFound(page))?;
            st.cache.mark_clean(page);
            self.note_shipped(&mut st, page);
            b
        };
        self.pages_shipped.fetch_add(1, Ordering::Relaxed);
        self.server.ship_page(self.id, bytes, replaced)
    }

    // ---- logging ------------------------------------------------------------------

    /// Append with automatic fuzzy checkpointing.
    pub(crate) fn append(
        &self,
        st: &mut ClientState,
        payload: &LogPayload,
        critical: bool,
    ) -> Result<Lsn> {
        let lsn = if critical {
            st.wal.append_critical(payload)?
        } else {
            st.wal.append(payload)?
        };
        st.records_since_ckpt += 1;
        if st.records_since_ckpt >= self.cfg.client_checkpoint_every {
            st.records_since_ckpt = 0;
            self.checkpoint_locked(st)?;
        }
        Ok(lsn)
    }

    pub(crate) fn append_critical(
        &self,
        st: &mut ClientState,
        payload: &LogPayload,
    ) -> Result<Lsn> {
        self.append(st, payload, true)
    }

    /// §3.6: free private log space. Checkpoint, advance the low-water
    /// mark, and force out the pages holding the minimum RedoLSN until
    /// enough space is free.
    pub fn reclaim_log_space(&self) -> Result<()> {
        for _round in 0..64 {
            // Re-anchor analysis, then advance the low-water mark. A
            // checkpoint that cannot fit is skipped for this round: the
            // page forces below still advance the DPT floor, and the next
            // round retries.
            {
                let mut st = self.st.lock();
                match self.checkpoint_locked(&mut st) {
                    Ok(()) | Err(FglError::LogFull) => {}
                    Err(e) => return Err(e),
                }
                let lw = Self::reclaim_floor(&st);
                st.wal.advance_low_water(lw)?;
                if st.wal.free_bytes() >= st.wal.capacity() / 4 {
                    return Ok(());
                }
            }
            // Pick the page with the minimum RedoLSN and have it forced.
            let victim = {
                let st = self.st.lock();
                st.dpt
                    .iter()
                    .min_by_key(|(_, e)| e.redo_lsn)
                    .map(|(p, _)| *p)
            };
            let Some(page) = victim else {
                // Nothing left to force: space is bounded by active txns.
                let st = self.st.lock();
                if st.wal.free_bytes() == 0 {
                    return Err(FglError::LogFull);
                }
                return Ok(());
            };
            // Ship our dirty copy if we still cache it, then ask the
            // server to force the page (§3.6). The force_page reply is
            // itself the flush acknowledgment (the broadcast notification
            // additionally reaches other clients that replaced the page).
            self.ship_page_copy(page, true)?;
            self.forced_flush_requests.fetch_add(1, Ordering::Relaxed);
            self.server.force_page(self.id, page)?;
            self.handle_flush_notification(page);
        }
        Err(FglError::LogFull)
    }

    /// Oldest LSN still needed: checkpoint anchor, DPT redo points, and
    /// the first record of every active transaction (undo needs them; the
    /// paper's §3.6 leaves this implicit).
    fn reclaim_floor(st: &ClientState) -> Lsn {
        let mut floor = st.wal.last_checkpoint();
        if floor.is_nil() {
            floor = st.wal.end_lsn();
        }
        for e in st.dpt.values() {
            if e.redo_lsn < floor {
                floor = e.redo_lsn;
            }
        }
        for t in st.txns.values() {
            if t.is_active() && !t.first_lsn.is_nil() && t.first_lsn < floor {
                floor = t.first_lsn;
            }
        }
        floor
    }

    /// Take a fuzzy client checkpoint (§3.2): active transactions + DPT.
    pub fn checkpoint(&self) -> Result<()> {
        let mut st = self.st.lock();
        self.checkpoint_locked(&mut st)
    }

    fn checkpoint_locked(&self, st: &mut ClientState) -> Result<()> {
        let active: Vec<(TxnId, Lsn)> = st
            .txns
            .values()
            .filter(|t| t.is_active())
            .map(|t| (t.id, t.last_lsn))
            .collect();
        let dpt: Vec<fgl_wal::records::DptEntry> = st
            .dpt
            .iter()
            .map(|(p, e)| fgl_wal::records::DptEntry {
                page: *p,
                redo_lsn: e.redo_lsn,
            })
            .collect();
        let lsn = st.wal.append_critical(&LogPayload::ClientCheckpoint {
            active_txns: active,
            dpt,
        })?;
        st.wal.force()?;
        st.wal.set_checkpoint(lsn)?;
        emit(Event::Checkpoint {
            owner: LogOwner::Client(self.id),
            lsn,
        });
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.metrics.add("client_checkpoints", 1);
        self.strategy.on_checkpoint(self, st)?;
        Ok(())
    }

    // ---- rollback ------------------------------------------------------------------

    /// Full rollback entry point for restart recovery.
    pub(crate) fn rollback_chain_public(&self, txn: TxnId) -> Result<()> {
        self.rollback_chain(txn, Lsn::NIL)
    }

    /// Walk the transaction's log chain backwards, undoing updates and
    /// writing CLRs, until reaching `upto` (NIL = full rollback).
    /// RedoOnly-mode transactions have no before-images on the log; their
    /// rollback pops the in-memory undo stack instead.
    fn rollback_chain(&self, txn: TxnId, upto: Lsn) -> Result<()> {
        let mode = self.st.lock().txns.get(&txn).and_then(|t| t.log_mode);
        if mode == Some(TxnLogMode::RedoOnly) {
            return self.rollback_mem(txn, upto);
        }
        loop {
            // Find the next record to undo.
            let entry = {
                let st = self.st.lock();
                let t = st.txns.get(&txn).ok_or(FglError::InvalidTxnState {
                    txn,
                    state: "unknown",
                })?;
                let mut cur = t.last_lsn;
                // Follow CLR undo-next pointers without re-undoing.
                let rec = loop {
                    if cur.is_nil() || cur <= upto {
                        break None;
                    }
                    let e = st.wal.read_at(cur)?;
                    match &e.payload {
                        LogPayload::Clr(c) => {
                            cur = c.undo_next;
                        }
                        LogPayload::Update(u) => break Some((e.lsn, u.clone())),
                        LogPayload::Begin { .. } => break None,
                        other => {
                            return Err(FglError::Protocol(format!(
                                "unexpected record in undo chain: {other:?}"
                            )))
                        }
                    }
                };
                rec
            };
            let Some((_lsn, u)) = entry else {
                return Ok(());
            };
            // Undo needs the page; it may have been replaced.
            self.ensure_page_present(u.object.page)?;
            let mut st = self.st.lock();
            let psn_before = st
                .cache
                .peek(u.object.page)
                .ok_or(FglError::PageNotFound(u.object.page))?
                .psn();
            let clr = LogPayload::Clr(fgl_wal::records::ClrRecord {
                txn,
                prev_lsn: st.txns.get(&txn).unwrap().last_lsn,
                undo_next: u.prev_lsn,
                object: u.object,
                psn_before,
                after: u.before.clone(),
            });
            let clr_lsn = self.append_critical(&mut st, &clr)?;
            {
                let p = st
                    .cache
                    .get_mut(u.object.page)
                    .ok_or(FglError::PageNotFound(u.object.page))?;
                Self::undo_install(p, u.object.slot, u.before.as_deref())?;
            }
            self.after_update(&mut st, txn, u.object, clr_lsn);
            // after_update set last_lsn = clr_lsn; the next iteration
            // resumes from u.prev_lsn via the CLR's undo_next.
        }
    }

    /// Rollback from the in-memory undo stack (RedoOnly mode). Each
    /// popped entry still writes a real CLR — the restored image must be
    /// redoable and the PSN ordering observable by merges — but the CLR's
    /// undo-next is NIL: the stack, not the log chain, carries progress.
    fn rollback_mem(&self, txn: TxnId, upto: Lsn) -> Result<()> {
        loop {
            let entry = {
                let mut st = self.st.lock();
                let t = st.txns.get_mut(&txn).ok_or(FglError::InvalidTxnState {
                    txn,
                    state: "unknown",
                })?;
                match t.cold().and_then(|c| c.undo.last()) {
                    Some(u) if u.lsn > upto => t.cold_mut().undo.pop(),
                    _ => None,
                }
            };
            let Some(u) = entry else {
                return Ok(());
            };
            self.ensure_page_present(u.object.page)?;
            let mut st = self.st.lock();
            let psn_before = st
                .cache
                .peek(u.object.page)
                .ok_or(FglError::PageNotFound(u.object.page))?
                .psn();
            let clr = LogPayload::Clr(fgl_wal::records::ClrRecord {
                txn,
                prev_lsn: st.txns.get(&txn).unwrap().last_lsn,
                undo_next: Lsn::NIL,
                object: u.object,
                psn_before,
                after: u.before.clone(),
            });
            let clr_lsn = self.append_critical(&mut st, &clr)?;
            {
                let p = st
                    .cache
                    .get_mut(u.object.page)
                    .ok_or(FglError::PageNotFound(u.object.page))?;
                Self::undo_install(p, u.object.slot, u.before.as_deref())?;
            }
            self.after_update(&mut st, txn, u.object, clr_lsn);
        }
    }

    /// Install the before-image during undo (bumps the PSN like a normal
    /// update so later merges order correctly).
    pub(crate) fn undo_install(page: &mut Page, slot: SlotId, before: Option<&[u8]>) -> Result<()> {
        match before {
            None => {
                page.free_object(slot)?;
            }
            Some(b) => {
                if page.slot_is_live(slot) {
                    if page.read_object(slot)?.len() == b.len() {
                        page.write_object(slot, b)?;
                    } else {
                        page.free_object(slot)?;
                        page.insert_object_at(slot, b)?;
                    }
                } else {
                    page.insert_object_at(slot, b)?;
                }
            }
        }
        Ok(())
    }

    /// Push every dirty page to the server and have it forced to disk,
    /// then checkpoint: afterwards the client's private log is cold (its
    /// DPT is empty). Used by experiment setup and by operators before
    /// planned downtime.
    pub fn harden(&self) -> Result<()> {
        let dirty: Vec<PageId> = {
            let st = self.st.lock();
            st.cache.dirty_ids()
        };
        for page in dirty {
            self.ship_page_copy(page, true)?;
            self.server.force_page(self.id, page)?;
            self.handle_flush_notification(page);
        }
        // Pages updated and replaced earlier may still hold DPT entries.
        let remaining: Vec<PageId> = {
            let st = self.st.lock();
            st.dpt.keys().copied().collect()
        };
        for page in remaining {
            self.server.force_page(self.id, page)?;
            self.handle_flush_notification(page);
        }
        self.checkpoint()
    }

    // ---- crash ---------------------------------------------------------------------

    /// Simulate a client crash (§3.3): every volatile structure is lost;
    /// the private log's forced prefix survives. The server is informed
    /// (connection loss).
    pub fn crash(&self) {
        {
            let mut st = self.st.lock();
            st.llm.clear();
            st.cache.clear();
            st.dpt.clear();
            st.txns.clear();
            st.refetch.clear();
            st.in_transit.clear();
            st.records_since_ckpt = 0;
            st.wal.crash();
            st.crashed = true;
        }
        self.server.client_crashed(self.id);
        self.cv.notify_all();
    }

    pub fn is_crashed(&self) -> bool {
        self.st.lock().crashed
    }

    // ---- introspection (oracle / experiments) -----------------------------------------

    /// Copy of a cached page (diagnostics).
    pub fn cached_page(&self, page: PageId) -> Option<Page> {
        self.st.lock().cache.peek(page).cloned()
    }

    /// Number of cached pages.
    pub fn cache_len(&self) -> usize {
        self.st.lock().cache.len()
    }

    /// Client DPT snapshot.
    pub fn dpt_snapshot(&self) -> Vec<(PageId, Lsn)> {
        let st = self.st.lock();
        let mut v: Vec<(PageId, Lsn)> = st.dpt.iter().map(|(p, e)| (*p, e.redo_lsn)).collect();
        v.sort_by_key(|(p, _)| p.0);
        v
    }

    /// Private-log occupancy `(in_use, capacity)`.
    pub fn log_usage(&self) -> (u64, u64) {
        let st = self.st.lock();
        (st.wal.bytes_in_use(), st.wal.capacity())
    }

    /// Bytes appended to the private log per record kind (non-zero only).
    pub fn wal_bytes_by_kind(&self) -> Vec<(&'static str, u64)> {
        if !self.is_touched() {
            return Vec::new();
        }
        self.st.lock().wal.bytes_by_kind()
    }
}
