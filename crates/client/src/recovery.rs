//! Client-side restart recovery.
//!
//! Two distinct duties live here:
//!
//! * [`ClientCore::recover`] — recovery **from the client's own crash**
//!   (§3.3): reinstall exclusive locks, ARIES analysis over the private
//!   log from the last complete checkpoint, a redo pass *filtered by the
//!   server's DCT* (Property 1 — only pages with a DCT entry need work)
//!   with PSN-conditional application, an undo pass rolling back the
//!   loser transactions with CLRs, and final hardening (ship + force the
//!   recovered pages so every lock can be released).
//!
//! * `ClientCore::recover_page_for_server` — the client's part of
//!   **server restart recovery** (§3.4): replay the private log against a
//!   base copy the server supplies, applying records for called-back
//!   objects only when their PSN clears the merged `CallBack_P`
//!   threshold, fetching partially recovered state from other recovering
//!   clients when a foreign callback record interposes, and feeding
//!   partial results back so parallel recoveries can make progress.

use crate::peer::PeerHandle;
use crate::runtime::{ClientCore, DptState};
use crate::txn::{TxnState, TxnStatus};
use fgl_common::{FglError, Lsn, ObjectId, PageId, Psn, Result, TxnId};
use fgl_net::peer::RecoveredPageOutcome;
use fgl_obs::{emit, Event, LogOwner, RecoveryPhase};
use fgl_storage::merge::merge_pages;
use fgl_storage::page::Page;
use fgl_wal::envelope::StrategyRecord;
use fgl_wal::records::LogPayload;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-transaction spilled before-images recovered from the log
/// ([`UndoSpillRecord`](fgl_wal::envelope::UndoSpillRecord)s), in append
/// order.
type SpillMap = HashMap<TxnId, Vec<(ObjectId, Option<Vec<u8>>)>>;

/// Outcome of a client-crash restart (§3.3); experiment E4 reports these.
#[derive(Clone, Debug, Default)]
pub struct ClientRecoveryReport {
    /// Transactions found committed (their effects were redone).
    pub winners: usize,
    /// Active transactions rolled back.
    pub losers: usize,
    /// Pages touched by the redo pass.
    pub pages_recovered: usize,
    /// Pages fetched from the server during recovery.
    pub pages_fetched: usize,
    /// Log records scanned (analysis + redo).
    pub records_scanned: usize,
    /// Update/CLR records actually re-applied.
    pub records_applied: usize,
    pub elapsed: Duration,
    /// ARIES analysis pass wall time.
    pub analysis: Duration,
    /// DCT-filtered redo pass wall time.
    pub redo: Duration,
    /// Loser-rollback pass wall time.
    pub undo: Duration,
    /// Ship + force + checkpoint (hardening) wall time.
    pub harden: Duration,
}

#[derive(Clone, Debug)]
struct AttEntry {
    last_lsn: Lsn,
    first_lsn: Lsn,
    committed: bool,
    ended: bool,
    /// The transaction logged redo-only (its loser rollback runs from
    /// spilled before-images, not the log chain).
    ext: bool,
}

impl AttEntry {
    fn at(lsn: Lsn) -> Self {
        AttEntry {
            last_lsn: lsn,
            first_lsn: lsn,
            committed: false,
            ended: false,
            ext: false,
        }
    }
}

/// Knobs for [`ClientCore::recover`] — the ablation surface of E4.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryOptions {
    /// Apply Property 1: skip pages without a DCT entry (§3.3). Turning
    /// this off redoes every page in the log-derived DPT — correct but
    /// wasteful; E4 measures the difference.
    pub use_dct_filter: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            use_dct_filter: true,
        }
    }
}

impl ClientCore {
    /// Restart recovery after this client's crash (§3.3). The paper notes
    /// restart may run anywhere with access to the private log; here it
    /// runs in the restarted client process.
    pub fn recover(self: &Arc<Self>) -> Result<ClientRecoveryReport> {
        self.recover_with(RecoveryOptions::default())
    }

    /// [`recover`](Self::recover) with explicit options. Dispatches to
    /// the active `LoggingStrategy`'s recovery
    /// procedure (3-pass ARIES for the physical strategies, single-pass
    /// for the redo-only ones).
    pub fn recover_with(
        self: &Arc<Self>,
        options: RecoveryOptions,
    ) -> Result<ClientRecoveryReport> {
        // Recovery appends to the WAL and bumps counters, so the client
        // joins the active set even if it never ran a transaction here.
        self.touch();
        self.strategy.recover(self, options)
    }

    /// The paper's 3-pass client restart (§3.3): analysis from the last
    /// complete checkpoint, DCT-filtered redo, chain-walk undo.
    pub(crate) fn recover_aries(
        self: &Arc<Self>,
        options: RecoveryOptions,
    ) -> Result<ClientRecoveryReport> {
        let start = Instant::now();
        let mut report = ClientRecoveryReport::default();

        // Reconnect and receive the exclusive locks held before the crash
        // plus the DCT view of our pages (Property 1 filter + install
        // PSNs).
        let peer = Arc::new(PeerHandle::new(self));
        let (locks, dct_entries, dct_complete) =
            self.server.client_recovery_begin(self.id(), peer)?;
        let dct: HashMap<PageId, Option<Psn>> = dct_entries.into_iter().collect();
        {
            let mut st = self.st.lock();
            st.crashed = false;
            st.llm.reinstall_exclusive(&locks);
        }

        // ---- analysis pass ---------------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Analysis,
        });
        let analysis_start = Instant::now();
        let (att, dpt, max_seq, scanned) = {
            let st = self.st.lock();
            let mut att: HashMap<TxnId, AttEntry> = HashMap::new();
            let mut dpt: HashMap<PageId, Lsn> = HashMap::new();
            let mut max_seq = 0u32;
            let mut scanned = 0usize;
            // Seed from the last complete checkpoint, then scan forward
            // from its anchor (the shared checkpoint-anchored iterator).
            if let Some(entry) = st.wal.checkpoint_entry() {
                if let LogPayload::ClientCheckpoint {
                    active_txns,
                    dpt: ck_dpt,
                } = entry.payload
                {
                    for (t, l) in active_txns {
                        att.insert(t, AttEntry::at(l));
                        max_seq = max_seq.max(t.local_seq());
                    }
                    for e in ck_dpt {
                        dpt.insert(e.page, e.redo_lsn);
                    }
                }
            }
            for entry in st.wal.scan_from_checkpoint(Lsn::NIL) {
                scanned += 1;
                let lsn = entry.lsn;
                match &entry.payload {
                    LogPayload::Begin { txn } => {
                        max_seq = max_seq.max(txn.local_seq());
                        att.insert(*txn, AttEntry::at(lsn));
                    }
                    LogPayload::Update(u) => {
                        max_seq = max_seq.max(u.txn.local_seq());
                        let e = att.entry(u.txn).or_insert_with(|| AttEntry::at(lsn));
                        e.last_lsn = lsn;
                        dpt.entry(u.object.page).or_insert(lsn);
                    }
                    LogPayload::Clr(c) => {
                        max_seq = max_seq.max(c.txn.local_seq());
                        let e = att.entry(c.txn).or_insert_with(|| AttEntry::at(lsn));
                        e.last_lsn = lsn;
                        dpt.entry(c.object.page).or_insert(lsn);
                    }
                    LogPayload::Commit { txn, .. } => {
                        if let Some(e) = att.get_mut(txn) {
                            e.committed = true;
                            e.ended = true;
                        }
                    }
                    LogPayload::Abort { txn, .. } => {
                        if let Some(e) = att.get_mut(txn) {
                            e.ended = true;
                        }
                    }
                    _ => {}
                }
            }
            (att, dpt, max_seq, scanned)
        };
        report.records_scanned += scanned;
        report.winners = att.values().filter(|e| e.committed).count();
        report.analysis = analysis_start.elapsed();

        // ---- redo pass -----------------------------------------------------
        // Plain client crash: Property 1 lets us skip pages without a DCT
        // entry. After a server restart (§3.5) the rebuilt DCT cannot be
        // trusted to cover us, so every page in the log-derived
        // ("augmented") DPT is recovered, via the §3.4 replay machinery.
        if !dct_complete {
            return self.recover_after_server_restart(
                start,
                report,
                att,
                dpt,
                max_seq,
                SpillMap::new(),
            );
        }
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Redo,
        });
        let redo_pass_start = Instant::now();
        let redo_dpt: HashMap<PageId, Lsn> = dpt
            .iter()
            .filter(|(p, _)| !options.use_dct_filter || dct.contains_key(*p))
            .map(|(p, l)| (*p, *l))
            .collect();
        report.pages_recovered = redo_dpt.len();
        let redo_start = redo_dpt.values().copied().min().unwrap_or(Lsn::NIL);
        if !redo_dpt.is_empty() {
            let records: Vec<_> = {
                let st = self.st.lock();
                st.wal
                    .scan_from(redo_start)
                    .filter(|e| matches!(e.payload, LogPayload::Update(_) | LogPayload::Clr(_)))
                    .collect()
            };
            let mut fetched: HashSet<PageId> = HashSet::new();
            for entry in records {
                report.records_scanned += 1;
                let (object, psn_before, after) = match &entry.payload {
                    LogPayload::Update(u) => (u.object, u.psn_before, u.after.clone()),
                    LogPayload::Clr(c) => (c.object, c.psn_before, c.after.clone()),
                    _ => continue,
                };
                let Some(&page_redo) = redo_dpt.get(&object.page) else {
                    continue;
                };
                if entry.lsn < page_redo {
                    continue;
                }
                // Fetch the page once, installing the DCT PSN (§3.3).
                if !fetched.contains(&object.page) {
                    let (bytes, dct_psn) = self.server.fetch_page(self.id(), object.page)?;
                    let mut page = Page::from_bytes(bytes)?;
                    if let Some(Some(psn)) = dct.get(&object.page) {
                        page.set_psn(*psn);
                    } else if let Some(psn) = dct_psn {
                        page.set_psn(psn);
                    }
                    let evicted = {
                        let mut st = self.st.lock();
                        st.dpt.entry(object.page).or_insert(DptState {
                            redo_lsn: page_redo,
                            remembered: None,
                            updated_since_ship: true,
                        });
                        st.cache.install_exact(page, true)
                    };
                    // Evictions cannot be shipped mid-recovery without
                    // perturbing the DCT; the cache is sized for recovery.
                    if evicted.is_some() {
                        return Err(FglError::Protocol(
                            "client cache too small for recovery working set".into(),
                        ));
                    }
                    fetched.insert(object.page);
                    report.pages_fetched += 1;
                }
                // Apply only updates to exclusively locked objects whose
                // PSN clears the page PSN (§3.3).
                let mut st = self.st.lock();
                let x_locked = st
                    .llm
                    .cached_mode(object)
                    .map(|m| m == fgl_locks::mode::ObjMode::X)
                    .unwrap_or(false);
                if !x_locked {
                    continue;
                }
                let p = st
                    .cache
                    .get_mut(object.page)
                    .ok_or(FglError::PageNotFound(object.page))?;
                if psn_before >= p.psn() {
                    p.install_object(object.slot, after.as_deref(), psn_before.next())?;
                    p.set_psn(psn_before.next());
                    report.records_applied += 1;
                }
            }
        }

        report.redo = redo_pass_start.elapsed();

        // ---- undo pass ---------------------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Undo,
        });
        let undo_start = Instant::now();
        {
            let mut st = self.st.lock();
            st.next_seq = st.next_seq.max(max_seq);
            for (txn, e) in &att {
                if !e.ended {
                    let mut t = TxnState::new(*txn);
                    t.last_lsn = e.last_lsn;
                    t.first_lsn = e.first_lsn;
                    st.txns.insert(*txn, t);
                }
            }
        }
        let losers: Vec<TxnId> = att
            .iter()
            .filter(|(_, e)| !e.ended)
            .map(|(t, _)| *t)
            .collect();
        report.losers = losers.len();
        for txn in losers {
            self.rollback_loser(txn)?;
        }
        report.undo = undo_start.elapsed();

        // ---- harden and release --------------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Harden,
        });
        let harden_start = Instant::now();
        let dirty: Vec<PageId> = {
            let st = self.st.lock();
            st.cache.dirty_ids()
        };
        for page in &dirty {
            self.ship_page_copy(*page, true)?;
            self.server.force_page(self.id(), *page)?;
        }
        self.checkpoint()?;
        self.server.client_recovery_end(self.id())?;
        {
            let mut st = self.st.lock();
            // Pre-crash transactions are all resolved; the server released
            // our locks — mirror that locally.
            st.llm.clear();
            st.txns.clear();
        }
        self.cv.notify_all();
        report.harden = harden_start.elapsed();
        report.elapsed = start.elapsed();
        self.finish_recovery_report(&report);
        Ok(report)
    }

    /// §3.5: recovery of a crashed client after the server itself
    /// restarted. Every page of the augmented (log-derived) DPT is
    /// replayed through the §3.4 machinery: the server supplies the base
    /// copy, the vouched-for PSN and the merged `CallBack_P` list; the
    /// replayed copy is shipped back and hardened.
    fn recover_after_server_restart(
        self: &Arc<Self>,
        start: Instant,
        mut report: ClientRecoveryReport,
        att: HashMap<TxnId, AttEntry>,
        dpt: HashMap<PageId, Lsn>,
        max_seq: u32,
        spills: SpillMap,
    ) -> Result<ClientRecoveryReport> {
        report.analysis = start.elapsed();
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Replay,
        });
        let redo_pass_start = Instant::now();
        report.pages_recovered = dpt.len();
        // Redo-only losers are skipped during replay; their shipped
        // updates are undone from the spilled before-images afterwards.
        let skip_txns: HashSet<TxnId> = att
            .iter()
            .filter(|(_, e)| !e.ended && e.ext)
            .map(|(t, _)| *t)
            .collect();
        let skip = &skip_txns;
        // Pages replay in parallel: a replay blocked on another crashed
        // client's progress (recovery_fetch) must not stall this client's
        // remaining pages — they are what *other* recoveries wait on.
        let recovered_pages: Vec<Result<(PageId, Lsn, Page)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = dpt
                .iter()
                .map(|(&page, &redo_lsn)| {
                    scope.spawn(move || -> Result<(PageId, Lsn, Page)> {
                        let (base, install_psn, list) =
                            self.server.recover_client_page(self.id(), page)?;
                        let bytes = self.recover_page_inner_from(
                            page,
                            base,
                            install_psn,
                            list,
                            Some(redo_lsn),
                            skip,
                        )?;
                        Ok((page, redo_lsn, Page::from_bytes(bytes)?))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in recovered_pages {
            let (page, redo_lsn, recovered) = r?;
            report.pages_fetched += 1;
            let mut st = self.st.lock();
            st.dpt.entry(page).or_insert(crate::runtime::DptState {
                redo_lsn,
                remembered: None,
                updated_since_ship: true,
            });
            if st.cache.install_exact(recovered, true).is_some() {
                return Err(FglError::Protocol(
                    "client cache too small for recovery working set".into(),
                ));
            }
        }
        report.redo = redo_pass_start.elapsed();
        // Undo losers (their pages are now cached).
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Undo,
        });
        let undo_start = Instant::now();
        {
            let mut st = self.st.lock();
            st.next_seq = st.next_seq.max(max_seq);
            for (txn, e) in &att {
                if !e.ended {
                    let mut t = TxnState::new(*txn);
                    t.last_lsn = e.last_lsn;
                    t.first_lsn = e.first_lsn;
                    st.txns.insert(*txn, t);
                }
            }
        }
        let mut losers: Vec<TxnId> = att
            .iter()
            .filter(|(_, e)| !e.ended)
            .map(|(t, _)| *t)
            .collect();
        losers.sort();
        report.losers = losers.len();
        for txn in losers {
            if skip_txns.contains(&txn) {
                self.rollback_spilled(txn, spills.get(&txn).map_or(&[], |v| v.as_slice()))?;
            } else {
                self.rollback_loser(txn)?;
            }
        }
        report.undo = undo_start.elapsed();
        // Harden: ship and force every recovered page.
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Harden,
        });
        let harden_start = Instant::now();
        let dirty: Vec<PageId> = {
            let st = self.st.lock();
            st.cache.dirty_ids()
        };
        for page in &dirty {
            self.ship_page_copy(*page, true)?;
            self.server.force_page(self.id(), *page)?;
        }
        self.checkpoint()?;
        self.server.client_recovery_end(self.id())?;
        {
            let mut st = self.st.lock();
            st.llm.clear();
            st.txns.clear();
        }
        self.cv.notify_all();
        report.harden = harden_start.elapsed();
        report.elapsed = start.elapsed();
        self.finish_recovery_report(&report);
        Ok(report)
    }

    /// Emit the terminal recovery event and fold the phase timings into
    /// the shared metrics registry — both the legacy flat counters and
    /// per-strategy phase histograms (`recovery_phase_us_<strategy>_*`).
    fn finish_recovery_report(&self, report: &ClientRecoveryReport) {
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Done,
        });
        let strategy = self.strategy.kind().name();
        for (phase, took) in [
            ("analysis", report.analysis),
            ("redo", report.redo),
            ("undo", report.undo),
            ("harden", report.harden),
        ] {
            self.metrics.observe_named(
                &format!("recovery_phase_us_{strategy}_{phase}"),
                took.as_micros() as u64,
            );
        }
        self.metrics.add("client_recoveries", 1);
        self.metrics.add(
            "client_recovery_analysis_us",
            report.analysis.as_micros() as u64,
        );
        self.metrics
            .add("client_recovery_redo_us", report.redo.as_micros() as u64);
        self.metrics
            .add("client_recovery_undo_us", report.undo.as_micros() as u64);
        self.metrics.add(
            "client_recovery_harden_us",
            report.harden.as_micros() as u64,
        );
        self.metrics.add(
            "client_recovery_records_scanned",
            report.records_scanned as u64,
        );
        self.metrics
            .add("client_recovery_pages", report.pages_recovered as u64);
    }

    /// Undo one loser transaction during restart (§3.3: "transaction
    /// rollback is done by executing the ARIES undo pass").
    fn rollback_loser(&self, txn: TxnId) -> Result<()> {
        self.rollback_chain_public(txn)?;
        let mut st = self.st.lock();
        let prev = st.txns.get(&txn).map(|t| t.last_lsn).unwrap_or(Lsn::NIL);
        self.append_critical(
            &mut st,
            &LogPayload::Abort {
                txn,
                prev_lsn: prev,
            },
        )?;
        if let Some(t) = st.txns.get_mut(&txn) {
            t.status = TxnStatus::Aborted;
        }
        st.txns.remove(&txn);
        Ok(())
    }

    /// Single-pass restart for the redo-only strategies (after Sauer &
    /// Härder, arXiv 1409.3682): one scan from the low-water mark buffers
    /// the ATT, the redo candidates and the spilled before-images; loser
    /// records are skipped outright during redo (their shipped effects
    /// are undone from the spills, their unshipped ones died with the
    /// cache); no separate analysis scan or chain-walk undo runs.
    ///
    /// Scanning from the low-water mark rather than the last checkpoint
    /// is what makes one pass sufficient: the §3.6 reclamation floor
    /// never passes an active transaction's first record or a DPT redo
    /// point, so every record recovery can need — spills included — sits
    /// above it.
    pub(crate) fn recover_single_pass(
        self: &Arc<Self>,
        options: RecoveryOptions,
    ) -> Result<ClientRecoveryReport> {
        let start = Instant::now();
        let mut report = ClientRecoveryReport::default();
        let peer = Arc::new(PeerHandle::new(self));
        let (locks, dct_entries, dct_complete) =
            self.server.client_recovery_begin(self.id(), peer)?;
        let dct: HashMap<PageId, Option<Psn>> = dct_entries.into_iter().collect();
        {
            let mut st = self.st.lock();
            st.crashed = false;
            st.llm.reinstall_exclusive(&locks);
        }

        // ---- the single pass -----------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Analysis,
        });
        let analysis_start = Instant::now();
        type RedoCandidate = (Lsn, TxnId, ObjectId, Psn, Option<Vec<u8>>);
        let (att, dpt, max_seq, redo_records, spills) = {
            let st = self.st.lock();
            let mut att: HashMap<TxnId, AttEntry> = HashMap::new();
            let mut dpt: HashMap<PageId, Lsn> = HashMap::new();
            let mut redo: Vec<RedoCandidate> = Vec::new();
            let mut spills = SpillMap::new();
            let mut max_seq = 0u32;
            for entry in st.wal.scan_from(Lsn::NIL) {
                report.records_scanned += 1;
                let lsn = entry.lsn;
                match &entry.payload {
                    LogPayload::Begin { txn } => {
                        max_seq = max_seq.max(txn.local_seq());
                        att.insert(*txn, AttEntry::at(lsn));
                    }
                    LogPayload::Update(u) => {
                        max_seq = max_seq.max(u.txn.local_seq());
                        let e = att.entry(u.txn).or_insert_with(|| AttEntry::at(lsn));
                        e.last_lsn = lsn;
                        dpt.entry(u.object.page).or_insert(lsn);
                        redo.push((lsn, u.txn, u.object, u.psn_before, u.after.clone()));
                    }
                    LogPayload::Clr(c) => {
                        max_seq = max_seq.max(c.txn.local_seq());
                        let e = att.entry(c.txn).or_insert_with(|| AttEntry::at(lsn));
                        e.last_lsn = lsn;
                        dpt.entry(c.object.page).or_insert(lsn);
                        redo.push((lsn, c.txn, c.object, c.psn_before, c.after.clone()));
                    }
                    LogPayload::Ext(ext) => match StrategyRecord::decode(ext)? {
                        StrategyRecord::RedoUpdate(ru) => {
                            max_seq = max_seq.max(ru.txn.local_seq());
                            let e = att.entry(ru.txn).or_insert_with(|| AttEntry::at(lsn));
                            e.last_lsn = lsn;
                            e.ext = true;
                            dpt.entry(ru.object.page).or_insert(lsn);
                            redo.push((lsn, ru.txn, ru.object, ru.psn_before, ru.after));
                        }
                        StrategyRecord::UndoSpill(s) => {
                            dpt.entry(s.object.page).or_insert(lsn);
                            spills.entry(s.txn).or_default().push((s.object, s.before));
                        }
                    },
                    LogPayload::Commit { txn, .. } => {
                        if let Some(e) = att.get_mut(txn) {
                            e.committed = true;
                            e.ended = true;
                        }
                    }
                    LogPayload::Abort { txn, .. } => {
                        if let Some(e) = att.get_mut(txn) {
                            e.ended = true;
                        }
                    }
                    _ => {}
                }
            }
            (att, dpt, max_seq, redo, spills)
        };
        report.analysis = analysis_start.elapsed();
        report.winners = att.values().filter(|e| e.committed).count();

        // A server restart invalidates the DCT filter: replay every page
        // of the log-derived DPT through the §3.4 machinery instead.
        if !dct_complete {
            return self.recover_after_server_restart(start, report, att, dpt, max_seq, spills);
        }

        // ---- redo (losers skipped) -------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Redo,
        });
        let redo_pass_start = Instant::now();
        let losers: HashSet<TxnId> = att
            .iter()
            .filter(|(_, e)| !e.ended)
            .map(|(t, _)| *t)
            .collect();
        let redo_dpt: HashMap<PageId, Lsn> = dpt
            .iter()
            .filter(|(p, _)| !options.use_dct_filter || dct.contains_key(*p))
            .map(|(p, l)| (*p, *l))
            .collect();
        report.pages_recovered = redo_dpt.len();
        // Fetch every page redo or undo will touch, installing the DCT
        // PSN (§3.3). Spill pages are always covered: the spill was
        // forced before the page shipped, so the server has a DCT entry.
        let mut to_fetch: Vec<PageId> = redo_dpt.keys().copied().collect();
        for (txn, sp) in &spills {
            if losers.contains(txn) {
                for (o, _) in sp {
                    if !redo_dpt.contains_key(&o.page) {
                        to_fetch.push(o.page);
                    }
                }
            }
        }
        to_fetch.sort_by_key(|p| p.0);
        to_fetch.dedup();
        for page in to_fetch {
            let (bytes, dct_psn) = self.server.fetch_page(self.id(), page)?;
            let mut p = Page::from_bytes(bytes)?;
            if let Some(Some(psn)) = dct.get(&page) {
                p.set_psn(*psn);
            } else if let Some(psn) = dct_psn {
                p.set_psn(psn);
            }
            let redo_lsn = dpt.get(&page).copied().unwrap_or(Lsn::NIL);
            let evicted = {
                let mut st = self.st.lock();
                st.dpt.entry(page).or_insert(DptState {
                    redo_lsn,
                    remembered: None,
                    updated_since_ship: true,
                });
                st.cache.install_exact(p, true)
            };
            if evicted.is_some() {
                return Err(FglError::Protocol(
                    "client cache too small for recovery working set".into(),
                ));
            }
            report.pages_fetched += 1;
        }
        // Apply ended transactions' work PSN-conditionally to exclusively
        // locked objects; loser records are not replayed at all — the PSN
        // test tolerates the gaps because later records carry the higher
        // pre-update PSNs the skipped ones produced.
        for (lsn, txn, object, psn_before, after) in &redo_records {
            if losers.contains(txn) {
                continue;
            }
            let Some(&page_redo) = redo_dpt.get(&object.page) else {
                continue;
            };
            if *lsn < page_redo {
                continue;
            }
            let mut st = self.st.lock();
            let x_locked = st
                .llm
                .cached_mode(*object)
                .map(|m| m == fgl_locks::mode::ObjMode::X)
                .unwrap_or(false);
            if !x_locked {
                continue;
            }
            let p = st
                .cache
                .get_mut(object.page)
                .ok_or(FglError::PageNotFound(object.page))?;
            if *psn_before >= p.psn() {
                p.install_object(object.slot, after.as_deref(), psn_before.next())?;
                p.set_psn(psn_before.next());
                report.records_applied += 1;
            }
        }
        report.redo = redo_pass_start.elapsed();

        // ---- undo ------------------------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Undo,
        });
        let undo_start = Instant::now();
        {
            let mut st = self.st.lock();
            st.next_seq = st.next_seq.max(max_seq);
            for (txn, e) in &att {
                if !e.ended {
                    let mut t = TxnState::new(*txn);
                    t.last_lsn = e.last_lsn;
                    t.first_lsn = e.first_lsn;
                    st.txns.insert(*txn, t);
                }
            }
        }
        let mut loser_list: Vec<TxnId> = losers.iter().copied().collect();
        loser_list.sort();
        report.losers = loser_list.len();
        for txn in loser_list {
            if att.get(&txn).is_some_and(|e| e.ext) {
                self.rollback_spilled(txn, spills.get(&txn).map_or(&[], |v| v.as_slice()))?;
            } else {
                self.rollback_loser(txn)?;
            }
        }
        report.undo = undo_start.elapsed();

        // ---- harden and release ----------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Harden,
        });
        let harden_start = Instant::now();
        let dirty: Vec<PageId> = {
            let st = self.st.lock();
            st.cache.dirty_ids()
        };
        for page in &dirty {
            self.ship_page_copy(*page, true)?;
            self.server.force_page(self.id(), *page)?;
        }
        self.checkpoint()?;
        self.server.client_recovery_end(self.id())?;
        {
            let mut st = self.st.lock();
            st.llm.clear();
            st.txns.clear();
        }
        self.cv.notify_all();
        report.harden = harden_start.elapsed();
        report.elapsed = start.elapsed();
        self.finish_recovery_report(&report);
        Ok(report)
    }

    /// Undo one redo-only loser from its spilled before-images: every
    /// shipped first-touch value is reinstalled under a real CLR (the
    /// restored image must be redoable and its PSN bump observable by
    /// merges); updates that never shipped need no undo — they died with
    /// the cache. Ends the transaction with an abort record.
    fn rollback_spilled(&self, txn: TxnId, spills: &[(ObjectId, Option<Vec<u8>>)]) -> Result<()> {
        for (object, before) in spills.iter().rev() {
            let mut st = self.st.lock();
            let psn_before = st
                .cache
                .peek(object.page)
                .ok_or(FglError::PageNotFound(object.page))?
                .psn();
            let prev = st.txns.get(&txn).map(|t| t.last_lsn).unwrap_or(Lsn::NIL);
            let clr = LogPayload::Clr(fgl_wal::records::ClrRecord {
                txn,
                prev_lsn: prev,
                undo_next: Lsn::NIL,
                object: *object,
                psn_before,
                after: before.clone(),
            });
            let clr_lsn = self.append_critical(&mut st, &clr)?;
            {
                let p = st
                    .cache
                    .get_mut(object.page)
                    .ok_or(FglError::PageNotFound(object.page))?;
                ClientCore::undo_install(p, object.slot, before.as_deref())?;
            }
            self.after_update(&mut st, txn, *object, clr_lsn);
        }
        let mut st = self.st.lock();
        let prev = st.txns.get(&txn).map(|t| t.last_lsn).unwrap_or(Lsn::NIL);
        self.append_critical(
            &mut st,
            &LogPayload::Abort {
                txn,
                prev_lsn: prev,
            },
        )?;
        if let Some(t) = st.txns.get_mut(&txn) {
            t.status = TxnStatus::Aborted;
        }
        st.txns.remove(&txn);
        Ok(())
    }

    /// §3.4, client side: replay the private log against the base copy
    /// the server supplied.
    pub(crate) fn recover_page_for_server(
        &self,
        page: PageId,
        base: Vec<u8>,
        install_psn: Psn,
        callback_list: Vec<(ObjectId, Psn)>,
    ) -> RecoveredPageOutcome {
        match self.recover_page_inner(page, base, install_psn, callback_list) {
            Ok(bytes) => RecoveredPageOutcome::Done(bytes),
            Err(e) => RecoveredPageOutcome::Failed(e.to_string()),
        }
    }

    fn recover_page_inner(
        &self,
        page: PageId,
        base: Vec<u8>,
        install_psn: Psn,
        callback_list: Vec<(ObjectId, Psn)>,
    ) -> Result<Vec<u8>> {
        self.recover_page_inner_from(
            page,
            base,
            install_psn,
            callback_list,
            None,
            &HashSet::new(),
        )
    }

    /// Records of transactions in `skip_txns` (redo-only losers) are not
    /// replayed: their updates are either absent from the base copy or
    /// undone afterwards from spilled before-images.
    #[allow(clippy::too_many_arguments)]
    fn recover_page_inner_from(
        &self,
        page: PageId,
        base: Vec<u8>,
        install_psn: Psn,
        callback_list: Vec<(ObjectId, Psn)>,
        from_override: Option<Lsn>,
        skip_txns: &HashSet<TxnId>,
    ) -> Result<Vec<u8>> {
        let mut work = Page::from_bytes(base)?;
        work.set_psn(install_psn);
        let thresholds: HashMap<ObjectId, Psn> = callback_list.into_iter().collect();

        // Scan window: the DPT RedoLSN for the page (§3.4), bounded by the
        // last complete checkpoint when no entry survives.
        let records: Vec<_> = {
            let st = self.st.lock();
            let mut from = match from_override {
                Some(l) => l,
                None => st.dpt.get(&page).map(|e| e.redo_lsn).unwrap_or(Lsn::NIL),
            };
            let ckpt = st.wal.last_checkpoint();
            if from.is_nil() {
                from = ckpt;
            }
            st.wal
                .scan_from(from)
                .filter(|e| e.payload.page() == Some(page))
                .collect()
        };

        let mut processed = 0usize;
        for entry in records {
            match &entry.payload {
                LogPayload::Update(u) => {
                    self.replay_apply(
                        &mut work,
                        u.object,
                        u.psn_before,
                        u.after.as_deref(),
                        &thresholds,
                    )?;
                }
                LogPayload::Clr(c) => {
                    self.replay_apply(
                        &mut work,
                        c.object,
                        c.psn_before,
                        c.after.as_deref(),
                        &thresholds,
                    )?;
                }
                LogPayload::Ext(ext) => {
                    if let StrategyRecord::RedoUpdate(ru) = StrategyRecord::decode(ext)? {
                        if !skip_txns.contains(&ru.txn) {
                            self.replay_apply(
                                &mut work,
                                ru.object,
                                ru.psn_before,
                                ru.after.as_deref(),
                                &thresholds,
                            )?;
                        }
                    }
                    // UndoSpill records carry no redo work.
                }
                LogPayload::Callback(cb) => {
                    if thresholds.contains_key(&cb.object) {
                        // §3.4 step 3: in the list — skip.
                    } else {
                        // Foreign callback: we need the state of the
                        // responding client up to the recorded PSN. Ship
                        // our partial progress first (breaks mutual-wait
                        // cycles), then fetch the merged copy.
                        self.server
                            .install_recovered(self.id(), work.as_bytes().to_vec())?;
                        let (bytes, _) = self.server.recovery_fetch(
                            self.id(),
                            page,
                            Some((cb.from_client, cb.psn)),
                        )?;
                        let incoming = Page::from_bytes(bytes)?;
                        let (merged, _) = merge_pages(&work, &incoming)?;
                        work = merged;
                    }
                }
                _ => {}
            }
            processed += 1;
            if processed.is_multiple_of(4) {
                // Serve partial-state needs from parallel recoveries.
                for (npage, _psn) in self.server.poll_recovery_needs(self.id()) {
                    if npage == page {
                        self.server
                            .install_recovered(self.id(), work.as_bytes().to_vec())?;
                    }
                }
            }
        }
        Ok(work.into_bytes())
    }

    /// Apply one replayed record to the working copy, honouring the
    /// `CallBack_P` thresholds (§3.4).
    fn replay_apply(
        &self,
        work: &mut Page,
        object: ObjectId,
        psn_before: Psn,
        after: Option<&[u8]>,
        thresholds: &HashMap<ObjectId, Psn>,
    ) -> Result<()> {
        if let Some(&thresh) = thresholds.get(&object) {
            // Apply only when the record's PSN is >= the threshold: older
            // updates were superseded by the other client's state already
            // present in the base copy.
            if psn_before < thresh {
                return Ok(());
            }
        }
        work.install_object(object.slot, after, psn_before.next())?;
        if psn_before.next() > work.psn() {
            work.set_psn(psn_before.next());
        }
        Ok(())
    }
}
