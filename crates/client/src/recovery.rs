//! Client-side restart recovery.
//!
//! Two distinct duties live here:
//!
//! * [`ClientCore::recover`] — recovery **from the client's own crash**
//!   (§3.3): reinstall exclusive locks, ARIES analysis over the private
//!   log from the last complete checkpoint, a redo pass *filtered by the
//!   server's DCT* (Property 1 — only pages with a DCT entry need work)
//!   with PSN-conditional application, an undo pass rolling back the
//!   loser transactions with CLRs, and final hardening (ship + force the
//!   recovered pages so every lock can be released).
//!
//! * `ClientCore::recover_page_for_server` — the client's part of
//!   **server restart recovery** (§3.4): replay the private log against a
//!   base copy the server supplies, applying records for called-back
//!   objects only when their PSN clears the merged `CallBack_P`
//!   threshold, fetching partially recovered state from other recovering
//!   clients when a foreign callback record interposes, and feeding
//!   partial results back so parallel recoveries can make progress.

use crate::peer::PeerHandle;
use crate::runtime::{ClientCore, DptState};
use crate::txn::{TxnState, TxnStatus};
use fgl_common::{FglError, Lsn, ObjectId, PageId, Psn, Result, TxnId};
use fgl_net::peer::RecoveredPageOutcome;
use fgl_obs::{emit, Event, LogOwner, RecoveryPhase};
use fgl_storage::merge::merge_pages;
use fgl_storage::page::Page;
use fgl_wal::records::LogPayload;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a client-crash restart (§3.3); experiment E4 reports these.
#[derive(Clone, Debug, Default)]
pub struct ClientRecoveryReport {
    /// Transactions found committed (their effects were redone).
    pub winners: usize,
    /// Active transactions rolled back.
    pub losers: usize,
    /// Pages touched by the redo pass.
    pub pages_recovered: usize,
    /// Pages fetched from the server during recovery.
    pub pages_fetched: usize,
    /// Log records scanned (analysis + redo).
    pub records_scanned: usize,
    /// Update/CLR records actually re-applied.
    pub records_applied: usize,
    pub elapsed: Duration,
    /// ARIES analysis pass wall time.
    pub analysis: Duration,
    /// DCT-filtered redo pass wall time.
    pub redo: Duration,
    /// Loser-rollback pass wall time.
    pub undo: Duration,
    /// Ship + force + checkpoint (hardening) wall time.
    pub harden: Duration,
}

#[derive(Clone, Debug)]
struct AttEntry {
    last_lsn: Lsn,
    first_lsn: Lsn,
    committed: bool,
    ended: bool,
}

/// Knobs for [`ClientCore::recover`] — the ablation surface of E4.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryOptions {
    /// Apply Property 1: skip pages without a DCT entry (§3.3). Turning
    /// this off redoes every page in the log-derived DPT — correct but
    /// wasteful; E4 measures the difference.
    pub use_dct_filter: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            use_dct_filter: true,
        }
    }
}

impl ClientCore {
    /// Restart recovery after this client's crash (§3.3). The paper notes
    /// restart may run anywhere with access to the private log; here it
    /// runs in the restarted client process.
    pub fn recover(self: &Arc<Self>) -> Result<ClientRecoveryReport> {
        self.recover_with(RecoveryOptions::default())
    }

    /// [`recover`](Self::recover) with explicit options.
    pub fn recover_with(
        self: &Arc<Self>,
        options: RecoveryOptions,
    ) -> Result<ClientRecoveryReport> {
        let start = Instant::now();
        let mut report = ClientRecoveryReport::default();

        // Reconnect and receive the exclusive locks held before the crash
        // plus the DCT view of our pages (Property 1 filter + install
        // PSNs).
        let peer = Arc::new(PeerHandle::new(self));
        let (locks, dct_entries, dct_complete) =
            self.server.client_recovery_begin(self.id(), peer)?;
        let dct: HashMap<PageId, Option<Psn>> = dct_entries.into_iter().collect();
        {
            let mut st = self.st.lock();
            st.crashed = false;
            st.llm.reinstall_exclusive(&locks);
        }

        // ---- analysis pass ---------------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Analysis,
        });
        let analysis_start = Instant::now();
        let (att, dpt, max_seq, scanned) = {
            let st = self.st.lock();
            let ckpt = st.wal.last_checkpoint();
            let mut att: HashMap<TxnId, AttEntry> = HashMap::new();
            let mut dpt: HashMap<PageId, Lsn> = HashMap::new();
            let mut max_seq = 0u32;
            let mut scanned = 0usize;
            let mut start_lsn = ckpt;
            if !ckpt.is_nil() {
                if let Ok(entry) = st.wal.read_at(ckpt) {
                    if let LogPayload::ClientCheckpoint {
                        active_txns,
                        dpt: ck_dpt,
                    } = entry.payload
                    {
                        for (t, l) in active_txns {
                            att.insert(
                                t,
                                AttEntry {
                                    last_lsn: l,
                                    first_lsn: l,
                                    committed: false,
                                    ended: false,
                                },
                            );
                            max_seq = max_seq.max(t.local_seq());
                        }
                        for e in ck_dpt {
                            dpt.insert(e.page, e.redo_lsn);
                        }
                    }
                }
            } else {
                start_lsn = Lsn::NIL; // scan_from treats NIL as the low-water mark
            }
            for entry in st.wal.scan_from(start_lsn) {
                scanned += 1;
                let lsn = entry.lsn;
                match &entry.payload {
                    LogPayload::Begin { txn } => {
                        max_seq = max_seq.max(txn.local_seq());
                        att.insert(
                            *txn,
                            AttEntry {
                                last_lsn: lsn,
                                first_lsn: lsn,
                                committed: false,
                                ended: false,
                            },
                        );
                    }
                    LogPayload::Update(u) => {
                        max_seq = max_seq.max(u.txn.local_seq());
                        let e = att.entry(u.txn).or_insert(AttEntry {
                            last_lsn: lsn,
                            first_lsn: lsn,
                            committed: false,
                            ended: false,
                        });
                        e.last_lsn = lsn;
                        dpt.entry(u.object.page).or_insert(lsn);
                    }
                    LogPayload::Clr(c) => {
                        max_seq = max_seq.max(c.txn.local_seq());
                        let e = att.entry(c.txn).or_insert(AttEntry {
                            last_lsn: lsn,
                            first_lsn: lsn,
                            committed: false,
                            ended: false,
                        });
                        e.last_lsn = lsn;
                        dpt.entry(c.object.page).or_insert(lsn);
                    }
                    LogPayload::Commit { txn, .. } => {
                        if let Some(e) = att.get_mut(txn) {
                            e.committed = true;
                            e.ended = true;
                        }
                    }
                    LogPayload::Abort { txn, .. } => {
                        if let Some(e) = att.get_mut(txn) {
                            e.ended = true;
                        }
                    }
                    _ => {}
                }
            }
            (att, dpt, max_seq, scanned)
        };
        report.records_scanned += scanned;
        report.winners = att.values().filter(|e| e.committed).count();
        report.analysis = analysis_start.elapsed();

        // ---- redo pass -----------------------------------------------------
        // Plain client crash: Property 1 lets us skip pages without a DCT
        // entry. After a server restart (§3.5) the rebuilt DCT cannot be
        // trusted to cover us, so every page in the log-derived
        // ("augmented") DPT is recovered, via the §3.4 replay machinery.
        if !dct_complete {
            return self.recover_after_server_restart(start, report, att, dpt, max_seq);
        }
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Redo,
        });
        let redo_pass_start = Instant::now();
        let redo_dpt: HashMap<PageId, Lsn> = dpt
            .iter()
            .filter(|(p, _)| !options.use_dct_filter || dct.contains_key(*p))
            .map(|(p, l)| (*p, *l))
            .collect();
        report.pages_recovered = redo_dpt.len();
        let redo_start = redo_dpt.values().copied().min().unwrap_or(Lsn::NIL);
        if !redo_dpt.is_empty() {
            let records: Vec<_> = {
                let st = self.st.lock();
                st.wal
                    .scan_from(redo_start)
                    .filter(|e| matches!(e.payload, LogPayload::Update(_) | LogPayload::Clr(_)))
                    .collect()
            };
            let mut fetched: HashSet<PageId> = HashSet::new();
            for entry in records {
                report.records_scanned += 1;
                let (object, psn_before, after) = match &entry.payload {
                    LogPayload::Update(u) => (u.object, u.psn_before, u.after.clone()),
                    LogPayload::Clr(c) => (c.object, c.psn_before, c.after.clone()),
                    _ => continue,
                };
                let Some(&page_redo) = redo_dpt.get(&object.page) else {
                    continue;
                };
                if entry.lsn < page_redo {
                    continue;
                }
                // Fetch the page once, installing the DCT PSN (§3.3).
                if !fetched.contains(&object.page) {
                    let (bytes, dct_psn) = self.server.fetch_page(self.id(), object.page)?;
                    let mut page = Page::from_bytes(bytes)?;
                    if let Some(Some(psn)) = dct.get(&object.page) {
                        page.set_psn(*psn);
                    } else if let Some(psn) = dct_psn {
                        page.set_psn(psn);
                    }
                    let evicted = {
                        let mut st = self.st.lock();
                        st.dpt.entry(object.page).or_insert(DptState {
                            redo_lsn: page_redo,
                            remembered: None,
                            updated_since_ship: true,
                        });
                        st.cache.install_exact(page, true)
                    };
                    // Evictions cannot be shipped mid-recovery without
                    // perturbing the DCT; the cache is sized for recovery.
                    if evicted.is_some() {
                        return Err(FglError::Protocol(
                            "client cache too small for recovery working set".into(),
                        ));
                    }
                    fetched.insert(object.page);
                    report.pages_fetched += 1;
                }
                // Apply only updates to exclusively locked objects whose
                // PSN clears the page PSN (§3.3).
                let mut st = self.st.lock();
                let x_locked = st
                    .llm
                    .cached_mode(object)
                    .map(|m| m == fgl_locks::mode::ObjMode::X)
                    .unwrap_or(false);
                if !x_locked {
                    continue;
                }
                let p = st
                    .cache
                    .get_mut(object.page)
                    .ok_or(FglError::PageNotFound(object.page))?;
                if psn_before >= p.psn() {
                    p.install_object(object.slot, after.as_deref(), psn_before.next())?;
                    p.set_psn(psn_before.next());
                    report.records_applied += 1;
                }
            }
        }

        report.redo = redo_pass_start.elapsed();

        // ---- undo pass ---------------------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Undo,
        });
        let undo_start = Instant::now();
        {
            let mut st = self.st.lock();
            st.next_seq = st.next_seq.max(max_seq);
            for (txn, e) in &att {
                if !e.ended {
                    let mut t = TxnState::new(*txn);
                    t.last_lsn = e.last_lsn;
                    t.first_lsn = e.first_lsn;
                    st.txns.insert(*txn, t);
                }
            }
        }
        let losers: Vec<TxnId> = att
            .iter()
            .filter(|(_, e)| !e.ended)
            .map(|(t, _)| *t)
            .collect();
        report.losers = losers.len();
        for txn in losers {
            self.rollback_loser(txn)?;
        }
        report.undo = undo_start.elapsed();

        // ---- harden and release --------------------------------------------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Harden,
        });
        let harden_start = Instant::now();
        let dirty: Vec<PageId> = {
            let st = self.st.lock();
            st.cache.dirty_ids()
        };
        for page in &dirty {
            self.ship_page_copy(*page, true)?;
            self.server.force_page(self.id(), *page)?;
        }
        self.checkpoint()?;
        self.server.client_recovery_end(self.id())?;
        {
            let mut st = self.st.lock();
            // Pre-crash transactions are all resolved; the server released
            // our locks — mirror that locally.
            st.llm.clear();
            st.txns.clear();
        }
        self.cv.notify_all();
        report.harden = harden_start.elapsed();
        report.elapsed = start.elapsed();
        self.finish_recovery_report(&report);
        Ok(report)
    }

    /// §3.5: recovery of a crashed client after the server itself
    /// restarted. Every page of the augmented (log-derived) DPT is
    /// replayed through the §3.4 machinery: the server supplies the base
    /// copy, the vouched-for PSN and the merged `CallBack_P` list; the
    /// replayed copy is shipped back and hardened.
    fn recover_after_server_restart(
        self: &Arc<Self>,
        start: Instant,
        mut report: ClientRecoveryReport,
        att: HashMap<TxnId, AttEntry>,
        dpt: HashMap<PageId, Lsn>,
        max_seq: u32,
    ) -> Result<ClientRecoveryReport> {
        report.analysis = start.elapsed();
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Replay,
        });
        let redo_pass_start = Instant::now();
        report.pages_recovered = dpt.len();
        // Pages replay in parallel: a replay blocked on another crashed
        // client's progress (recovery_fetch) must not stall this client's
        // remaining pages — they are what *other* recoveries wait on.
        let recovered_pages: Vec<Result<(PageId, Lsn, Page)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = dpt
                .iter()
                .map(|(&page, &redo_lsn)| {
                    scope.spawn(move || -> Result<(PageId, Lsn, Page)> {
                        let (base, install_psn, list) =
                            self.server.recover_client_page(self.id(), page)?;
                        let bytes = self.recover_page_inner_from(
                            page,
                            base,
                            install_psn,
                            list,
                            Some(redo_lsn),
                        )?;
                        Ok((page, redo_lsn, Page::from_bytes(bytes)?))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in recovered_pages {
            let (page, redo_lsn, recovered) = r?;
            report.pages_fetched += 1;
            let mut st = self.st.lock();
            st.dpt.entry(page).or_insert(crate::runtime::DptState {
                redo_lsn,
                remembered: None,
                updated_since_ship: true,
            });
            if st.cache.install_exact(recovered, true).is_some() {
                return Err(FglError::Protocol(
                    "client cache too small for recovery working set".into(),
                ));
            }
        }
        report.redo = redo_pass_start.elapsed();
        // Undo losers (their pages are now cached).
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Undo,
        });
        let undo_start = Instant::now();
        {
            let mut st = self.st.lock();
            st.next_seq = st.next_seq.max(max_seq);
            for (txn, e) in &att {
                if !e.ended {
                    let mut t = TxnState::new(*txn);
                    t.last_lsn = e.last_lsn;
                    t.first_lsn = e.first_lsn;
                    st.txns.insert(*txn, t);
                }
            }
        }
        let losers: Vec<TxnId> = att
            .iter()
            .filter(|(_, e)| !e.ended)
            .map(|(t, _)| *t)
            .collect();
        report.losers = losers.len();
        for txn in losers {
            self.rollback_loser(txn)?;
        }
        report.undo = undo_start.elapsed();
        // Harden: ship and force every recovered page.
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Harden,
        });
        let harden_start = Instant::now();
        let dirty: Vec<PageId> = {
            let st = self.st.lock();
            st.cache.dirty_ids()
        };
        for page in &dirty {
            self.ship_page_copy(*page, true)?;
            self.server.force_page(self.id(), *page)?;
        }
        self.checkpoint()?;
        self.server.client_recovery_end(self.id())?;
        {
            let mut st = self.st.lock();
            st.llm.clear();
            st.txns.clear();
        }
        self.cv.notify_all();
        report.harden = harden_start.elapsed();
        report.elapsed = start.elapsed();
        self.finish_recovery_report(&report);
        Ok(report)
    }

    /// Emit the terminal recovery event and fold the phase timings into
    /// the shared metrics registry.
    fn finish_recovery_report(&self, report: &ClientRecoveryReport) {
        emit(Event::RecoveryPhase {
            owner: LogOwner::Client(self.id()),
            phase: RecoveryPhase::Done,
        });
        self.metrics.add("client_recoveries", 1);
        self.metrics.add(
            "client_recovery_analysis_us",
            report.analysis.as_micros() as u64,
        );
        self.metrics
            .add("client_recovery_redo_us", report.redo.as_micros() as u64);
        self.metrics
            .add("client_recovery_undo_us", report.undo.as_micros() as u64);
        self.metrics.add(
            "client_recovery_harden_us",
            report.harden.as_micros() as u64,
        );
        self.metrics.add(
            "client_recovery_records_scanned",
            report.records_scanned as u64,
        );
        self.metrics
            .add("client_recovery_pages", report.pages_recovered as u64);
    }

    /// Undo one loser transaction during restart (§3.3: "transaction
    /// rollback is done by executing the ARIES undo pass").
    fn rollback_loser(&self, txn: TxnId) -> Result<()> {
        self.rollback_chain_public(txn)?;
        let mut st = self.st.lock();
        let prev = st.txns.get(&txn).map(|t| t.last_lsn).unwrap_or(Lsn::NIL);
        self.append_critical(
            &mut st,
            &LogPayload::Abort {
                txn,
                prev_lsn: prev,
            },
        )?;
        if let Some(t) = st.txns.get_mut(&txn) {
            t.status = TxnStatus::Aborted;
        }
        st.txns.remove(&txn);
        Ok(())
    }

    /// §3.4, client side: replay the private log against the base copy
    /// the server supplied.
    pub(crate) fn recover_page_for_server(
        &self,
        page: PageId,
        base: Vec<u8>,
        install_psn: Psn,
        callback_list: Vec<(ObjectId, Psn)>,
    ) -> RecoveredPageOutcome {
        match self.recover_page_inner(page, base, install_psn, callback_list) {
            Ok(bytes) => RecoveredPageOutcome::Done(bytes),
            Err(e) => RecoveredPageOutcome::Failed(e.to_string()),
        }
    }

    fn recover_page_inner(
        &self,
        page: PageId,
        base: Vec<u8>,
        install_psn: Psn,
        callback_list: Vec<(ObjectId, Psn)>,
    ) -> Result<Vec<u8>> {
        self.recover_page_inner_from(page, base, install_psn, callback_list, None)
    }

    fn recover_page_inner_from(
        &self,
        page: PageId,
        base: Vec<u8>,
        install_psn: Psn,
        callback_list: Vec<(ObjectId, Psn)>,
        from_override: Option<Lsn>,
    ) -> Result<Vec<u8>> {
        let mut work = Page::from_bytes(base)?;
        work.set_psn(install_psn);
        let thresholds: HashMap<ObjectId, Psn> = callback_list.into_iter().collect();

        // Scan window: the DPT RedoLSN for the page (§3.4), bounded by the
        // last complete checkpoint when no entry survives.
        let records: Vec<_> = {
            let st = self.st.lock();
            let mut from = match from_override {
                Some(l) => l,
                None => st.dpt.get(&page).map(|e| e.redo_lsn).unwrap_or(Lsn::NIL),
            };
            let ckpt = st.wal.last_checkpoint();
            if from.is_nil() {
                from = ckpt;
            }
            st.wal
                .scan_from(from)
                .filter(|e| e.payload.page() == Some(page))
                .collect()
        };

        let mut processed = 0usize;
        for entry in records {
            match &entry.payload {
                LogPayload::Update(u) => {
                    self.replay_apply(
                        &mut work,
                        u.object,
                        u.psn_before,
                        u.after.as_deref(),
                        &thresholds,
                    )?;
                }
                LogPayload::Clr(c) => {
                    self.replay_apply(
                        &mut work,
                        c.object,
                        c.psn_before,
                        c.after.as_deref(),
                        &thresholds,
                    )?;
                }
                LogPayload::Callback(cb) => {
                    if thresholds.contains_key(&cb.object) {
                        // §3.4 step 3: in the list — skip.
                    } else {
                        // Foreign callback: we need the state of the
                        // responding client up to the recorded PSN. Ship
                        // our partial progress first (breaks mutual-wait
                        // cycles), then fetch the merged copy.
                        self.server
                            .install_recovered(self.id(), work.as_bytes().to_vec())?;
                        let (bytes, _) = self.server.recovery_fetch(
                            self.id(),
                            page,
                            Some((cb.from_client, cb.psn)),
                        )?;
                        let incoming = Page::from_bytes(bytes)?;
                        let (merged, _) = merge_pages(&work, &incoming)?;
                        work = merged;
                    }
                }
                _ => {}
            }
            processed += 1;
            if processed.is_multiple_of(4) {
                // Serve partial-state needs from parallel recoveries.
                for (npage, _psn) in self.server.poll_recovery_needs(self.id()) {
                    if npage == page {
                        self.server
                            .install_recovered(self.id(), work.as_bytes().to_vec())?;
                    }
                }
            }
        }
        Ok(work.into_bytes())
    }

    /// Apply one replayed record to the working copy, honouring the
    /// `CallBack_P` thresholds (§3.4).
    fn replay_apply(
        &self,
        work: &mut Page,
        object: ObjectId,
        psn_before: Psn,
        after: Option<&[u8]>,
        thresholds: &HashMap<ObjectId, Psn>,
    ) -> Result<()> {
        if let Some(&thresh) = thresholds.get(&object) {
            // Apply only when the record's PSN is >= the threshold: older
            // updates were superseded by the other client's state already
            // present in the base copy.
            if psn_before < thresh {
                return Ok(());
            }
        }
        work.install_object(object.slot, after, psn_before.next())?;
        if psn_before.next() > work.psn() {
            work.set_psn(psn_before.next());
        }
        Ok(())
    }
}
