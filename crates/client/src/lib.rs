//! The `fgl` client runtime (§2, §3): page cache with inter-transaction
//! caching, local lock manager, **private write-ahead log** (client-based
//! logging), transaction management with savepoints, fuzzy checkpoints,
//! the §3.6 log-space reclamation protocol, and restart recovery — both
//! the client-crash procedure of §3.3 and the client half of server
//! restart (§3.4). The logging policy itself is pluggable: the paper's
//! client-based ARIES is the default strategy, alongside redo-only,
//! adaptive-hybrid and write-behind alternatives selected by
//! `SystemConfig::logging_strategy`.

pub mod cache;
pub mod peer;
pub mod recovery;
pub mod runtime;
pub(crate) mod strategy;
pub mod txn;

pub use cache::ClientCache;
pub use peer::PeerHandle;
pub use recovery::{ClientRecoveryReport, RecoveryOptions};
pub use runtime::{ClientCore, ClientStats, DptState};
pub use txn::{TxnLogMode, TxnState, TxnStatus, UndoEntry};
