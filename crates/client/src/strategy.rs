//! Pluggable logging strategies (the `LoggingStrategy` seam).
//!
//! The paper's client-based ARIES path (§2, §3.3) is one point in a
//! design space; this module carves its policy decisions out of
//! [`ClientCore`] behind a small trait so alternatives can share the
//! same transport, cache, lock and recovery machinery:
//!
//! * [`ClientAries`] — the paper's scheme, byte-identical to the
//!   pre-trait code path. The default.
//! * [`RedoOnly`] — single-pass REDO-only logging after Sauer & Härder
//!   (arXiv 1409.3682): no before-images on the log; undo state lives in
//!   client memory and spills to the log only at the steal point.
//! * [`Hybrid`] — the adaptive command/physical scheme of Yao et al.
//!   (arXiv 1503.03653): each transaction picks redo-only ("command
//!   sized") or full physical logging at its first update, by payload
//!   size.
//! * [`WriteBehind`] — a no-force write-behind baseline: the commit
//!   force is deferred behind a short coalescing window so cohorts of
//!   committers share one device write even without group commit.
//!
//! Hook points, in transaction order: [`LoggingStrategy::log_mode_for_txn`]
//! (first update), [`LoggingStrategy::before_ship`] (the steal point,
//! *before* the WAL force that covers the shipped bytes),
//! [`LoggingStrategy::commit_append_done`] (under the state mutex, right
//! after the commit record is appended),
//! [`LoggingStrategy::commit_wait_durable`] (out of the mutex),
//! [`LoggingStrategy::on_checkpoint`], and [`LoggingStrategy::recover`].

use crate::recovery::{ClientRecoveryReport, RecoveryOptions};
use crate::runtime::{ClientCore, ClientState};
use crate::txn::TxnLogMode;
use fgl_common::{LoggingStrategyKind, Lsn, ObjectId, PageId, Result, TxnId};
use fgl_wal::envelope::{StrategyRecord, UndoSpillRecord, STRATEGY_HYBRID, STRATEGY_REDO_ONLY};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Hybrid mode boundary (after-image bytes): transactions whose first
/// update is at most this large log redo-only; larger ones go physical.
pub(crate) const HYBRID_THRESHOLD: usize = 48;

/// The write-behind coalescing floor: even with a zero-latency simulated
/// disk the leader waits this long before capturing its force goal.
const WRITE_BEHIND_WINDOW: Duration = Duration::from_micros(20);

/// Policy seam between the client runtime and its log. One static
/// instance per [`LoggingStrategyKind`]; [`ClientCore`] holds a
/// `&'static dyn LoggingStrategy` resolved at construction.
pub(crate) trait LoggingStrategy: Send + Sync {
    fn kind(&self) -> LoggingStrategyKind;

    /// Envelope `strategy` id for [`StrategyRecord`]s this strategy
    /// appends (0 = appends none).
    fn envelope_id(&self) -> u8 {
        0
    }

    /// Decide how a transaction logs, at its first update.
    /// `payload_len` is that update's after-image length.
    fn log_mode_for_txn(&self, payload_len: usize) -> TxnLogMode {
        let _ = payload_len;
        TxnLogMode::Physical
    }

    /// Called under the state mutex right after the commit record is
    /// appended. Returns `Some(upto)` when durability up to `upto` is to
    /// be established out-of-lock by [`Self::commit_wait_durable`];
    /// `None` when the commit is already durable on return.
    fn commit_append_done(&self, client: &ClientCore, st: &mut ClientState) -> Result<Option<Lsn>>;

    /// Out-of-lock durability wait paired with a `Some` from
    /// [`Self::commit_append_done`]. Must not return before the log is
    /// durable through `upto`.
    fn commit_wait_durable(&self, client: &ClientCore, txn: TxnId, upto: Lsn) -> Result<()>;

    /// The steal hook: called under the state mutex right before a dirty
    /// page's bytes leave the client and *before* the WAL force covering
    /// them. Returns `true` when records were appended (so a caller that
    /// believed the log already durable must force again).
    fn before_ship(&self, client: &ClientCore, st: &mut ClientState, page: PageId) -> Result<bool> {
        let _ = (client, st, page);
        Ok(false)
    }

    /// Called under the state mutex after a fuzzy checkpoint is durable.
    fn on_checkpoint(&self, client: &ClientCore, st: &mut ClientState) -> Result<()> {
        let _ = (client, st);
        Ok(())
    }

    /// Restart recovery over this strategy's log.
    fn recover(
        &self,
        client: &Arc<ClientCore>,
        options: RecoveryOptions,
    ) -> Result<ClientRecoveryReport>;
}

/// Resolve the static strategy instance for a config knob.
pub(crate) fn strategy_for(kind: LoggingStrategyKind) -> &'static dyn LoggingStrategy {
    match kind {
        LoggingStrategyKind::ClientAries => &ClientAries,
        LoggingStrategyKind::RedoOnly => &RedoOnly,
        LoggingStrategyKind::Hybrid => &Hybrid,
        LoggingStrategyKind::WriteBehind => &WriteBehind,
    }
}

/// Shared commit hook for the force-at-commit strategies: with group
/// commit the force runs out-of-lock (cohorts coalesce); without it the
/// commit record is forced right here.
fn aries_commit_append_done(client: &ClientCore, st: &mut ClientState) -> Result<Option<Lsn>> {
    if client.config().group_commit {
        Ok(Some(st.wal.end_lsn()))
    } else {
        st.wal.force()?;
        Ok(None)
    }
}

/// Shared steal hook for the redo-only strategies: append the first-touch
/// before-images of every active redo-only transaction's updates on
/// `page` that were not spilled yet. The caller's force (WAL rule) then
/// makes them durable before the page ships — after which a crash can
/// still roll those losers back from the log alone.
fn spill_undo_for_page(
    client: &ClientCore,
    st: &mut ClientState,
    page: PageId,
    envelope_id: u8,
) -> Result<bool> {
    let mut spills: Vec<UndoSpillRecord> = Vec::new();
    for t in st.txns.values() {
        if !t.is_active() || t.log_mode != Some(TxnLogMode::RedoOnly) {
            continue;
        }
        // The oldest undo entry per object carries the transaction's
        // first-touch before-image — the only one undo-from-log needs.
        let Some(cold) = t.cold() else {
            continue;
        };
        let mut seen: HashSet<ObjectId> = HashSet::new();
        for u in &cold.undo {
            if u.object.page != page || cold.spilled.contains(&u.object) || !seen.insert(u.object) {
                continue;
            }
            spills.push(UndoSpillRecord {
                txn: t.id,
                object: u.object,
                before: u.before.clone(),
            });
        }
    }
    if spills.is_empty() {
        return Ok(false);
    }
    for rec in spills {
        let (txn, object) = (rec.txn, rec.object);
        let payload = StrategyRecord::UndoSpill(rec).into_payload(envelope_id);
        client.append(st, &payload, true)?;
        if let Some(t) = st.txns.get_mut(&txn) {
            t.cold_mut().spilled.insert(object);
        }
    }
    Ok(true)
}

/// The paper's client-based ARIES scheme (default).
pub(crate) struct ClientAries;

impl LoggingStrategy for ClientAries {
    fn kind(&self) -> LoggingStrategyKind {
        LoggingStrategyKind::ClientAries
    }

    fn commit_append_done(&self, client: &ClientCore, st: &mut ClientState) -> Result<Option<Lsn>> {
        aries_commit_append_done(client, st)
    }

    fn commit_wait_durable(&self, client: &ClientCore, txn: TxnId, upto: Lsn) -> Result<()> {
        client.group_force(txn, upto)
    }

    fn recover(
        &self,
        client: &Arc<ClientCore>,
        options: RecoveryOptions,
    ) -> Result<ClientRecoveryReport> {
        client.recover_aries(options)
    }
}

/// Single-pass REDO-only logging (Sauer & Härder, arXiv 1409.3682).
pub(crate) struct RedoOnly;

impl LoggingStrategy for RedoOnly {
    fn kind(&self) -> LoggingStrategyKind {
        LoggingStrategyKind::RedoOnly
    }

    fn envelope_id(&self) -> u8 {
        STRATEGY_REDO_ONLY
    }

    fn log_mode_for_txn(&self, _payload_len: usize) -> TxnLogMode {
        TxnLogMode::RedoOnly
    }

    fn commit_append_done(&self, client: &ClientCore, st: &mut ClientState) -> Result<Option<Lsn>> {
        aries_commit_append_done(client, st)
    }

    fn commit_wait_durable(&self, client: &ClientCore, txn: TxnId, upto: Lsn) -> Result<()> {
        client.group_force(txn, upto)
    }

    fn before_ship(&self, client: &ClientCore, st: &mut ClientState, page: PageId) -> Result<bool> {
        spill_undo_for_page(client, st, page, STRATEGY_REDO_ONLY)
    }

    fn recover(
        &self,
        client: &Arc<ClientCore>,
        options: RecoveryOptions,
    ) -> Result<ClientRecoveryReport> {
        client.recover_single_pass(options)
    }
}

/// Adaptive command/physical hybrid (Yao et al., arXiv 1503.03653).
pub(crate) struct Hybrid;

impl LoggingStrategy for Hybrid {
    fn kind(&self) -> LoggingStrategyKind {
        LoggingStrategyKind::Hybrid
    }

    fn envelope_id(&self) -> u8 {
        STRATEGY_HYBRID
    }

    fn log_mode_for_txn(&self, payload_len: usize) -> TxnLogMode {
        if payload_len <= HYBRID_THRESHOLD {
            TxnLogMode::RedoOnly
        } else {
            TxnLogMode::Physical
        }
    }

    fn commit_append_done(&self, client: &ClientCore, st: &mut ClientState) -> Result<Option<Lsn>> {
        aries_commit_append_done(client, st)
    }

    fn commit_wait_durable(&self, client: &ClientCore, txn: TxnId, upto: Lsn) -> Result<()> {
        client.group_force(txn, upto)
    }

    fn before_ship(&self, client: &ClientCore, st: &mut ClientState, page: PageId) -> Result<bool> {
        spill_undo_for_page(client, st, page, STRATEGY_HYBRID)
    }

    fn recover(
        &self,
        client: &Arc<ClientCore>,
        options: RecoveryOptions,
    ) -> Result<ClientRecoveryReport> {
        client.recover_single_pass(options)
    }
}

/// No-force write-behind baseline: commits never force under the state
/// mutex; the force runs behind a coalescing window so concurrent
/// committers share one device write. Commit still blocks until its
/// record is durable (the crash contract is unchanged), so this measures
/// pure force-scheduling, not relaxed durability.
pub(crate) struct WriteBehind;

impl LoggingStrategy for WriteBehind {
    fn kind(&self) -> LoggingStrategyKind {
        LoggingStrategyKind::WriteBehind
    }

    fn commit_append_done(
        &self,
        _client: &ClientCore,
        st: &mut ClientState,
    ) -> Result<Option<Lsn>> {
        Ok(Some(st.wal.end_lsn()))
    }

    fn commit_wait_durable(&self, client: &ClientCore, txn: TxnId, upto: Lsn) -> Result<()> {
        let window = client.config().disk_latency.max(WRITE_BEHIND_WINDOW);
        client.force_coalesced(txn, upto, window)
    }

    fn recover(
        &self,
        client: &Arc<ClientCore>,
        options: RecoveryOptions,
    ) -> Result<ClientRecoveryReport> {
        client.recover_aries(options)
    }
}
