//! Per-transaction bookkeeping at the client.
//!
//! Transactions execute entirely at the client that started them (§2);
//! the server never hears about commits under client-based logging. The
//! client tracks the ARIES backward chain (`last_lsn`), the earliest
//! record (for log-space accounting), named savepoints (§3.2 supports
//! partial rollbacks), and the pages dirtied (the ship-pages-at-commit
//! baseline needs them).

use fgl_common::{Lsn, ObjectId, PageId, TxnId};
use std::collections::HashSet;

/// Lifecycle of a client transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

/// How a transaction's updates hit the log — decided by the active
/// `LoggingStrategy` at the transaction's first
/// update and fixed for its lifetime (the hybrid strategy of Yao et al.,
/// arXiv 1503.03653, picks per transaction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnLogMode {
    /// Full ARIES physical logging: before- and after-images on every
    /// update record; undo walks the log chain.
    Physical,
    /// REDO-only logging (Sauer & Härder, arXiv 1409.3682): after-images
    /// only; undo information lives in [`TxnCold::undo`] and is spilled
    /// to the log only at the steal point.
    RedoOnly,
}

/// One in-memory undo entry of a [`TxnLogMode::RedoOnly`] transaction:
/// everything rollback needs that the log deliberately does not carry.
#[derive(Clone, Debug)]
pub struct UndoEntry {
    /// LSN of the redo record this entry compensates (savepoint bound).
    pub lsn: Lsn,
    pub object: ObjectId,
    /// `None` means "object did not exist before" (undo frees the slot).
    pub before: Option<Vec<u8>>,
}

/// Rollback-only transaction state, boxed out of [`TxnState`]: named
/// savepoints (§3.2) and the RedoOnly in-memory undo stack exist for a
/// minority of transactions, yet inline they tripled the size of every
/// entry in the hot per-client `txns` map. The hot struct keeps one
/// pointer; the first savepoint or undo entry pays the allocation.
#[derive(Clone, Debug, Default)]
pub struct TxnCold {
    /// Named savepoints: (name, last_lsn at creation).
    pub savepoints: Vec<(String, Lsn)>,
    /// In-memory undo stack (RedoOnly mode only), oldest first.
    pub undo: Vec<UndoEntry>,
    /// Objects whose first-touch before-image was already spilled to the
    /// log at a steal point (RedoOnly mode only).
    pub spilled: HashSet<ObjectId>,
}

/// One active transaction.
#[derive(Clone, Debug)]
pub struct TxnState {
    pub id: TxnId,
    pub status: TxnStatus,
    /// Most recent log record of this transaction (ARIES PrevLSN chain).
    pub last_lsn: Lsn,
    /// First log record (bounds log-space reclamation while active).
    pub first_lsn: Lsn,
    /// Pages this transaction dirtied.
    pub dirtied: HashSet<PageId>,
    /// Logging mode, fixed by the strategy at the first update.
    pub log_mode: Option<TxnLogMode>,
    /// Cold rollback state, allocated on first use.
    cold: Option<Box<TxnCold>>,
}

impl TxnState {
    pub fn new(id: TxnId) -> Self {
        TxnState {
            id,
            status: TxnStatus::Active,
            last_lsn: Lsn::NIL,
            first_lsn: Lsn::NIL,
            // The update path inserts page ids per access; a handful of
            // buckets up front keeps the first inserts rehash-free.
            dirtied: HashSet::with_capacity(8),
            log_mode: None,
            cold: None,
        }
    }

    /// The cold rollback state, allocating it on first touch.
    pub fn cold_mut(&mut self) -> &mut TxnCold {
        self.cold.get_or_insert_with(Default::default)
    }

    /// The cold rollback state, if any rollback bookkeeping happened.
    pub fn cold(&self) -> Option<&TxnCold> {
        self.cold.as_deref()
    }

    /// Record a newly appended log record of this transaction.
    pub fn note_record(&mut self, lsn: Lsn) {
        if self.first_lsn.is_nil() {
            self.first_lsn = lsn;
        }
        self.last_lsn = lsn;
    }

    /// Create (or move) a named savepoint at the current position.
    pub fn set_savepoint(&mut self, name: &str) {
        let last = self.last_lsn;
        let sps = &mut self.cold_mut().savepoints;
        if let Some(sp) = sps.iter_mut().find(|(n, _)| n == name) {
            sp.1 = last;
        } else {
            sps.push((name.to_string(), last));
        }
    }

    /// The rollback boundary for a savepoint; savepoints created after it
    /// are discarded by the caller once the rollback runs.
    pub fn savepoint_lsn(&self, name: &str) -> Option<Lsn> {
        self.cold()?
            .savepoints
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, l)| *l)
    }

    /// Drop savepoints established after `lsn` (they are rolled away).
    pub fn truncate_savepoints(&mut self, lsn: Lsn) {
        if let Some(cold) = self.cold.as_deref_mut() {
            cold.savepoints.retain(|(_, l)| *l <= lsn);
        }
    }

    pub fn is_active(&self) -> bool {
        self.status == TxnStatus::Active
    }
}

// Static size guard: the hot per-client `txns` map entry must stay
// within 96 bytes — boxing the cold rollback state bought the shrink;
// growing the struct again needs a deliberate decision here.
const _: () = assert!(std::mem::size_of::<TxnState>() <= 96);
const _: () = assert!(std::mem::size_of::<Option<Box<TxnCold>>>() == 8);

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::ClientId;

    fn txn() -> TxnState {
        TxnState::new(TxnId::compose(ClientId(1), 1))
    }

    #[test]
    fn note_record_tracks_first_and_last() {
        let mut t = txn();
        assert!(t.first_lsn.is_nil());
        t.note_record(Lsn(10));
        t.note_record(Lsn(20));
        assert_eq!(t.first_lsn, Lsn(10));
        assert_eq!(t.last_lsn, Lsn(20));
    }

    #[test]
    fn savepoints_create_move_and_lookup() {
        let mut t = txn();
        t.note_record(Lsn(5));
        t.set_savepoint("a");
        assert_eq!(t.savepoint_lsn("a"), Some(Lsn(5)));
        t.note_record(Lsn(9));
        t.set_savepoint("a");
        assert_eq!(t.savepoint_lsn("a"), Some(Lsn(9)));
        assert_eq!(t.savepoint_lsn("missing"), None);
    }

    #[test]
    fn truncate_discards_later_savepoints() {
        let mut t = txn();
        t.note_record(Lsn(5));
        t.set_savepoint("early");
        t.note_record(Lsn(9));
        t.set_savepoint("late");
        t.truncate_savepoints(Lsn(5));
        assert_eq!(t.savepoint_lsn("early"), Some(Lsn(5)));
        assert_eq!(t.savepoint_lsn("late"), None);
    }
}
