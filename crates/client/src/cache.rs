//! The client page cache: inter-transaction caching (§2) with
//! merge-on-install.
//!
//! §2: when the server sends a page that the client already caches, the
//! client *installs the updates present on the incoming copy onto its
//! cached version* — the same per-slot-PSN merge the server uses — so the
//! client's own locked (possibly uncommitted) updates survive while
//! missing remote updates arrive.

use fgl_common::{PageId, Result};
use fgl_storage::bufferpool::{BufferPool, EvictedPage};
use fgl_storage::merge::merge_pages;
use fgl_storage::page::Page;

/// Client page cache. Not internally synchronized (lives inside the
/// client-state mutex).
pub struct ClientCache {
    pool: BufferPool,
}

impl ClientCache {
    pub fn new(capacity: usize) -> Self {
        ClientCache {
            pool: BufferPool::new(capacity),
        }
    }

    /// Pre-size the frame table for the configured capacity (first-use
    /// warm-up; see [`BufferPool::warm`]).
    pub fn warm(&mut self) {
        self.pool.warm();
    }

    /// Install a copy arriving from the server. Merges with a resident
    /// copy when present (keeping the dirtiness of the resident state);
    /// returns any evicted dirty page that must be shipped to the server.
    pub fn install_from_server(&mut self, incoming: Page) -> Result<Option<EvictedPage>> {
        let id = incoming.id();
        let (merged, dirty) = match self.pool.peek(id) {
            Some(resident) => {
                let was_dirty = self.pool.is_dirty(id);
                let (m, _) = merge_pages(resident, &incoming)?;
                (m, was_dirty)
            }
            None => (incoming, false),
        };
        let evicted = self.pool.insert(merged, dirty);
        Ok(evicted.filter(|e| e.dirty))
    }

    /// Install a page the client knows to be authoritative (allocation,
    /// recovery install). Overwrites any resident copy.
    pub fn install_exact(&mut self, page: Page, dirty: bool) -> Option<EvictedPage> {
        self.pool.remove(page.id());
        self.pool.insert(page, dirty).filter(|e| e.dirty)
    }

    pub fn contains(&self, id: PageId) -> bool {
        self.pool.contains(id)
    }

    pub fn peek(&self, id: PageId) -> Option<&Page> {
        self.pool.peek(id)
    }

    pub fn get_mut(&mut self, id: PageId) -> Option<&mut Page> {
        self.pool.get_mut(id)
    }

    pub fn is_dirty(&self, id: PageId) -> bool {
        self.pool.is_dirty(id)
    }

    pub fn mark_clean(&mut self, id: PageId) {
        self.pool.set_dirty(id, false);
    }

    pub fn remove(&mut self, id: PageId) -> Option<EvictedPage> {
        self.pool.remove(id)
    }

    /// Snapshot (id, PSN) of all cached pages (server restart recovery
    /// report, §3.4).
    pub fn cached_psns(&self) -> Vec<(PageId, fgl_common::Psn)> {
        let mut v: Vec<_> = self
            .pool
            .cached_ids()
            .into_iter()
            .filter_map(|id| self.pool.peek(id).map(|p| (id, p.psn())))
            .collect();
        v.sort_by_key(|(id, _)| id.0);
        v
    }

    pub fn dirty_ids(&self) -> Vec<PageId> {
        self.pool.dirty_ids()
    }

    pub fn len(&self) -> usize {
        self.pool.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Crash: volatile cache contents vanish (§3.3).
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::{Psn, SlotId};

    fn page(id: u64) -> Page {
        let mut p = Page::format(512, PageId(id), Psn::ZERO);
        p.insert_object(b"base").unwrap();
        p
    }

    #[test]
    fn install_fresh_is_clean() {
        let mut c = ClientCache::new(4);
        c.install_from_server(page(1)).unwrap();
        assert!(c.contains(PageId(1)));
        assert!(!c.is_dirty(PageId(1)));
    }

    #[test]
    fn install_merges_and_keeps_local_dirty_updates() {
        let mut c = ClientCache::new(4);
        let base = page(1);
        c.install_from_server(base.clone()).unwrap();
        // Local (uncommitted) update to slot 0.
        c.get_mut(PageId(1))
            .unwrap()
            .write_object(SlotId(0), b"mine")
            .unwrap();
        assert!(c.is_dirty(PageId(1)));
        // Server sends a copy with a *new object* (another client's work)
        // but a stale slot 0.
        let mut server_copy = base.clone();
        let s = server_copy.insert_object(b"theirs").unwrap();
        c.install_from_server(server_copy).unwrap();
        let p = c.peek(PageId(1)).unwrap();
        assert_eq!(p.read_object(SlotId(0)).unwrap(), b"mine");
        assert_eq!(p.read_object(s).unwrap(), b"theirs");
        assert!(c.is_dirty(PageId(1)), "dirtiness survives merge");
    }

    #[test]
    fn eviction_returns_dirty_victims_only() {
        let mut c = ClientCache::new(2);
        c.install_from_server(page(1)).unwrap();
        c.install_from_server(page(2)).unwrap();
        // Clean eviction: nothing to ship.
        let ev = c.install_from_server(page(3)).unwrap();
        assert!(ev.is_none());
        // Dirty page gets reported on eviction.
        c.get_mut(PageId(2))
            .unwrap()
            .write_object(SlotId(0), b"dirt")
            .unwrap();
        c.peek(PageId(3)).unwrap();
        let ev = c.install_from_server(page(4)).unwrap();
        // LRU order: 2 was touched by get_mut, 3 by peek... peek does not
        // refresh; victim must be one of the older pages. If it was dirty
        // page 2 we get it back.
        if let Some(e) = ev {
            assert!(e.dirty);
        }
    }

    #[test]
    fn install_exact_overwrites() {
        let mut c = ClientCache::new(4);
        c.install_from_server(page(1)).unwrap();
        c.get_mut(PageId(1))
            .unwrap()
            .write_object(SlotId(0), b"dirt")
            .unwrap();
        let fresh = page(1);
        c.install_exact(fresh, false);
        assert_eq!(
            c.peek(PageId(1)).unwrap().read_object(SlotId(0)).unwrap(),
            b"base"
        );
        assert!(!c.is_dirty(PageId(1)));
    }

    #[test]
    fn cached_psns_sorted() {
        let mut c = ClientCache::new(4);
        c.install_from_server(page(3)).unwrap();
        c.install_from_server(page(1)).unwrap();
        let snap = c.cached_psns();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].0 < snap[1].0);
    }

    #[test]
    fn clear_models_crash() {
        let mut c = ClientCache::new(4);
        c.install_from_server(page(1)).unwrap();
        c.clear();
        assert!(c.is_empty());
    }
}
