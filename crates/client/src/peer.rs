//! The client's implementation of the server→client half of the protocol
//! ([`ClientPeer`]): lock callbacks (§3.2), flush notifications (§3.6)
//! and the restart-recovery services of §3.4.

use crate::runtime::ClientCore;
use fgl_common::{ClientId, Lsn, ObjectId, PageId, Psn};
use fgl_locks::glm::{CallbackKind, CallbackReply};
use fgl_net::peer::{CallbackOutcome, ClientPeer, ClientStateReport, RecoveredPageOutcome};
use fgl_wal::records::{DptEntry, LogPayload};
use std::sync::{Arc, Weak};

/// What the server holds for each registered client. Weak so the
/// server↔client reference cycle cannot leak.
pub struct PeerHandle {
    core: Weak<ClientCore>,
    id: ClientId,
}

impl PeerHandle {
    pub fn new(core: &Arc<ClientCore>) -> Self {
        PeerHandle {
            core: Arc::downgrade(core),
            id: core.id(),
        }
    }

    fn core(&self) -> Option<Arc<ClientCore>> {
        self.core.upgrade()
    }
}

impl ClientPeer for PeerHandle {
    fn client_id(&self) -> ClientId {
        self.id
    }

    fn deliver_callback(&self, kind: CallbackKind) -> CallbackOutcome {
        match self.core() {
            Some(core) => core.handle_server_callback(kind),
            // Client object dropped: treat as released.
            None => CallbackOutcome::Done {
                retained: vec![],
                page_copy: None,
            },
        }
    }

    fn notify_page_flushed(&self, page: PageId) {
        if let Some(core) = self.core() {
            core.handle_flush_notification(page);
        }
    }

    fn report_state(&self) -> ClientStateReport {
        self.core().map(|c| c.report_state()).unwrap_or_default()
    }

    fn callback_list_for(
        &self,
        page: PageId,
        for_client: ClientId,
        from_lsn: Lsn,
    ) -> Vec<(ObjectId, Psn)> {
        self.core()
            .map(|c| c.callback_list_for(page, for_client, from_lsn))
            .unwrap_or_default()
    }

    fn ship_cached_page(&self, page: PageId) -> Option<Vec<u8>> {
        self.core().and_then(|c| c.ship_cached_page_bytes(page))
    }

    fn recover_page(
        &self,
        page: PageId,
        base: Vec<u8>,
        install_psn: Psn,
        callback_list: Vec<(ObjectId, Psn)>,
    ) -> RecoveredPageOutcome {
        match self.core() {
            Some(core) => core.recover_page_for_server(page, base, install_psn, callback_list),
            None => RecoveredPageOutcome::Failed("client gone".into()),
        }
    }
}

impl ClientCore {
    /// Handle a lock callback from the server (§3.2). Runs on a
    /// server-driving thread.
    pub(crate) fn handle_server_callback(&self, kind: CallbackKind) -> CallbackOutcome {
        let mut st = self.st.lock();
        if st.crashed {
            // Lost race with a crash simulation; the server will queue and
            // re-deliver after recovery.
            return CallbackOutcome::Done {
                retained: vec![],
                page_copy: None,
            };
        }
        let reply = st.llm.handle_callback(kind);
        let outcome = match reply {
            CallbackReply::Done { retained } => {
                // A complied de-escalation replaced our page lock with
                // object locks (§3.2) — the adaptive scheme's signature
                // moment, so it gets its own event.
                if matches!(kind, CallbackKind::DeEscalatePage(_)) {
                    fgl_obs::emit(fgl_obs::Event::DeEscalate {
                        client: self.id(),
                        page: kind.page(),
                    });
                }
                let sheds = !matches!(kind, CallbackKind::DeEscalatePage(_));
                let page = kind.page();
                // Any complied callback that leaves the page visible to a
                // competitor ships the dirty copy: the requester's fetch
                // must observe our (committed or steal-protected) updates.
                // An evicted-but-not-yet-shipped copy counts (in transit).
                let page_copy = if let Some(bytes) = st.in_transit.remove(&page) {
                    Some(bytes)
                } else if st.cache.is_dirty(page) {
                    // WAL: the log covering the shipped state must be
                    // durable before the page leaves (§2).
                    if st.wal.force().is_err() {
                        None
                    } else {
                        let bytes = st.cache.peek(page).map(|p| p.as_bytes().to_vec());
                        if bytes.is_some() {
                            st.cache.mark_clean(page);
                            // Remember the ship point so a later flush
                            // advances our DPT RedoLSN (§3.6).
                            let end = st.wal.end_lsn();
                            if let Some(e) = st.dpt.get_mut(&page) {
                                e.remembered = Some(end);
                                e.updated_since_ship = false;
                            }
                        }
                        bytes
                    }
                } else {
                    None
                };
                if sheds {
                    self.drop_if_unlocked(&mut st, page);
                }
                CallbackOutcome::Done {
                    retained,
                    page_copy,
                }
            }
            CallbackReply::Deferred { blockers } => CallbackOutcome::Deferred { blockers },
        };
        drop(st);
        self.cv.notify_all();
        outcome
    }

    /// §3.6 flush notification: advance the DPT entry's RedoLSN to the
    /// end-of-log remembered at ship time, or drop the entry when the
    /// page was not updated since.
    pub(crate) fn handle_flush_notification(&self, page: PageId) {
        let mut st = self.st.lock();
        if st.crashed {
            return;
        }
        match st.dpt.get_mut(&page) {
            Some(e) if e.updated_since_ship => {
                if let Some(remembered) = e.remembered.take() {
                    if remembered > e.redo_lsn {
                        e.redo_lsn = remembered;
                    }
                }
            }
            Some(_) => {
                st.dpt.remove(&page);
            }
            None => {}
        }
        drop(st);
        self.cv.notify_all();
    }

    /// §3.4: report DPT, cached pages and LLM entries for server restart.
    pub(crate) fn report_state(&self) -> ClientStateReport {
        let st = self.st.lock();
        let mut dpt: Vec<DptEntry> = st
            .dpt
            .iter()
            .map(|(p, e)| DptEntry {
                page: *p,
                redo_lsn: e.redo_lsn,
            })
            .collect();
        dpt.sort_by_key(|e| e.page.0);
        ClientStateReport {
            dpt,
            cached_pages: st.cache.cached_psns(),
            locks: st.llm.all_locks(),
        }
    }

    /// §3.4: this client's `CallBack_P` contribution — callback log
    /// records it wrote for objects of `page` naming `for_client`, the
    /// latest PSN per object winning.
    pub(crate) fn callback_list_for(
        &self,
        page: PageId,
        for_client: ClientId,
        from_lsn: Lsn,
    ) -> Vec<(ObjectId, Psn)> {
        let st = self.st.lock();
        let mut from = st.dpt.get(&page).map(|e| e.redo_lsn).unwrap_or(Lsn::NIL);
        if !from_lsn.is_nil() && (from.is_nil() || from_lsn < from) {
            from = from_lsn;
        }
        let ckpt = st.wal.last_checkpoint();
        if from.is_nil() || (!ckpt.is_nil() && ckpt < from) {
            from = ckpt;
        }
        let mut map: std::collections::HashMap<ObjectId, Psn> = std::collections::HashMap::new();
        for entry in st.wal.scan_from(from) {
            if let LogPayload::Callback(cb) = entry.payload {
                if cb.object.page == page && cb.from_client == for_client {
                    // Forward scan: later records overwrite earlier ones
                    // ("the PSN stored in the most recent one", §3.4).
                    map.insert(cb.object, cb.psn);
                }
            }
        }
        let mut out: Vec<(ObjectId, Psn)> = map.into_iter().collect();
        out.sort_by_key(|(o, _)| (o.page.0, o.slot.0));
        out
    }

    /// §3.4 step 4: ship the cached copy, forcing the log first (WAL).
    pub(crate) fn ship_cached_page_bytes(&self, page: PageId) -> Option<Vec<u8>> {
        let mut st = self.st.lock();
        if !st.cache.contains(page) {
            return None;
        }
        if st.wal.force().is_err() {
            return None;
        }
        st.cache.peek(page).map(|p| p.as_bytes().to_vec())
    }
}
