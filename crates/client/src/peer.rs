//! The client's implementation of the server→client half of the protocol
//! ([`ClientPeer`]): lock callbacks (§3.2), flush notifications (§3.6)
//! and the restart-recovery services of §3.4.

use crate::runtime::ClientCore;
use fgl_common::{ClientId, Lsn, ObjectId, PageId, Psn};
use fgl_locks::glm::{CallbackKind, CallbackReply};
use fgl_net::peer::{CallbackOutcome, ClientPeer, ClientStateReport, RecoveredPageOutcome};
use fgl_wal::records::{DptEntry, LogPayload};
use std::sync::{Arc, Weak};

/// What the server holds for each registered client. Weak so the
/// server↔client reference cycle cannot leak.
pub struct PeerHandle {
    core: Weak<ClientCore>,
    id: ClientId,
}

impl PeerHandle {
    pub fn new(core: &Arc<ClientCore>) -> Self {
        PeerHandle {
            core: Arc::downgrade(core),
            id: core.id(),
        }
    }

    fn core(&self) -> Option<Arc<ClientCore>> {
        self.core.upgrade()
    }
}

impl ClientPeer for PeerHandle {
    fn client_id(&self) -> ClientId {
        self.id
    }

    fn deliver_callback(&self, kind: CallbackKind) -> CallbackOutcome {
        match self.core() {
            Some(core) => core.handle_server_callback(kind),
            // Client object dropped: treat as released.
            None => CallbackOutcome::Done {
                retained: vec![],
                page_copy: None,
            },
        }
    }

    fn deliver_callback_batch(&self, kinds: &[CallbackKind]) -> Vec<CallbackOutcome> {
        match self.core() {
            Some(core) => core.handle_server_callback_batch(kinds),
            None => kinds
                .iter()
                .map(|_| CallbackOutcome::Done {
                    retained: vec![],
                    page_copy: None,
                })
                .collect(),
        }
    }

    fn notify_page_flushed(&self, page: PageId) {
        if let Some(core) = self.core() {
            core.handle_flush_notification(page);
        }
    }

    fn report_state(&self) -> ClientStateReport {
        self.core().map(|c| c.report_state()).unwrap_or_default()
    }

    fn callback_list_for(
        &self,
        page: PageId,
        for_client: ClientId,
        from_lsn: Lsn,
    ) -> Vec<(ObjectId, Psn)> {
        self.core()
            .map(|c| c.callback_list_for(page, for_client, from_lsn))
            .unwrap_or_default()
    }

    fn ship_cached_page(&self, page: PageId) -> Option<Arc<[u8]>> {
        self.core().and_then(|c| c.ship_cached_page_bytes(page))
    }

    fn recover_page(
        &self,
        page: PageId,
        base: Vec<u8>,
        install_psn: Psn,
        callback_list: Vec<(ObjectId, Psn)>,
    ) -> RecoveredPageOutcome {
        match self.core() {
            Some(core) => core.recover_page_for_server(page, base, install_psn, callback_list),
            None => RecoveredPageOutcome::Failed("client gone".into()),
        }
    }
}

impl ClientCore {
    /// Handle a lock callback from the server (§3.2). Runs on a
    /// server-driving thread.
    pub(crate) fn handle_server_callback(&self, kind: CallbackKind) -> CallbackOutcome {
        self.handle_server_callback_batch(std::slice::from_ref(&kind))
            .pop()
            .expect("batch handler returns one outcome per kind")
    }

    /// Handle a batch of callbacks in one pass over the client state:
    /// one mutex acquisition, at most one WAL force covering every page
    /// the batch ships, at most one page copy per page, one waiter
    /// wakeup. Outcomes are parallel to `kinds`.
    pub(crate) fn handle_server_callback_batch(
        &self,
        kinds: &[CallbackKind],
    ) -> Vec<CallbackOutcome> {
        let mut st = self.st.lock();
        if st.crashed {
            // Lost race with a crash simulation; the server will queue and
            // re-deliver after recovery.
            return kinds
                .iter()
                .map(|_| CallbackOutcome::Done {
                    retained: vec![],
                    page_copy: None,
                })
                .collect();
        }
        // The st mutex is held for the whole batch, so one force covers
        // every page the batch ships (§2: the log covering shipped state
        // must be durable before the page leaves). A strategy that spills
        // undo records at the steal point resets `forced` so the next
        // ship forces again over the fresh records.
        let mut forced = false;
        let mut shipped: Vec<PageId> = Vec::new();
        let mut outcomes = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            let reply = st.llm.handle_callback(kind);
            let outcome = match reply {
                CallbackReply::Done { retained } => {
                    // A complied de-escalation replaced our page lock with
                    // object locks (§3.2) — the adaptive scheme's signature
                    // moment, so it gets its own event.
                    if matches!(kind, CallbackKind::DeEscalatePage(_)) {
                        fgl_obs::emit(fgl_obs::Event::DeEscalate {
                            client: self.id(),
                            page: kind.page(),
                        });
                    }
                    let sheds = !matches!(kind, CallbackKind::DeEscalatePage(_));
                    let page = kind.page();
                    // Any complied callback that leaves the page visible
                    // to a competitor ships the dirty copy: the
                    // requester's fetch must observe our (committed or
                    // steal-protected) updates. A page already shipped by
                    // this batch is clean by construction.
                    //
                    // A copy travels in the reply, and the server absorbs
                    // it only when the delivering wave applies that reply.
                    // A second wave's callback for the same page can run
                    // here first, find the page clean, and reply with no
                    // copy — letting the server grant + ship its stale
                    // store copy before the first wave's reply lands. So
                    // the stash in `in_transit` is *retained* after a
                    // reply-ship: any racing wave re-ships the same bytes
                    // and the server absorbs them before it grants
                    // (absorption is a per-slot PSN-max merge, so the
                    // re-ship is idempotent). A freshly dirty cache copy
                    // always wins over the stash.
                    let page_copy = if shipped.contains(&page) {
                        None
                    } else if st.cache.is_dirty(page) {
                        let ship_ok = match self.strategy.before_ship(self, &mut st, page) {
                            Ok(spilled) => {
                                if spilled {
                                    forced = false;
                                }
                                true
                            }
                            Err(_) => false,
                        };
                        let log_durable = ship_ok && (forced || st.wal.force().is_ok());
                        if log_durable {
                            forced = true;
                            // One snapshot of the cache copy, shared from
                            // here on: the reply, the stash and any racing
                            // wave all alias this frame.
                            let bytes: Option<Arc<[u8]>> =
                                st.cache.peek(page).map(|p| Arc::from(p.as_bytes()));
                            if let Some(b) = &bytes {
                                st.cache.mark_clean(page);
                                // Remember the ship point so a later flush
                                // advances our DPT RedoLSN (§3.6).
                                let end = st.wal.end_lsn();
                                if let Some(e) = st.dpt.get_mut(&page) {
                                    e.remembered = Some(end);
                                    e.updated_since_ship = false;
                                }
                                st.in_transit.insert(page, Arc::clone(b));
                                shipped.push(page);
                            }
                            bytes
                        } else {
                            None
                        }
                    } else if let Some(bytes) = st.in_transit.get(&page).cloned() {
                        // Racing wave: re-ship the stashed frame. The clone
                        // is an Arc bump, not a page copy — account the
                        // bytes we did NOT re-allocate.
                        self.metrics
                            .add("page_ship_bytes_shared", bytes.len() as u64);
                        shipped.push(page);
                        Some(bytes)
                    } else {
                        None
                    };
                    if sheds {
                        self.drop_if_unlocked(&mut st, page);
                    }
                    CallbackOutcome::Done {
                        retained,
                        page_copy,
                    }
                }
                CallbackReply::Deferred { blockers } => CallbackOutcome::Deferred { blockers },
            };
            outcomes.push(outcome);
        }
        drop(st);
        self.cv.notify_all();
        outcomes
    }

    /// §3.6 flush notification: advance the DPT entry's RedoLSN to the
    /// end-of-log remembered at ship time, or drop the entry when the
    /// page was not updated since.
    pub(crate) fn handle_flush_notification(&self, page: PageId) {
        let mut st = self.st.lock();
        if st.crashed {
            return;
        }
        match st.dpt.get_mut(&page) {
            Some(e) if e.updated_since_ship => {
                if let Some(remembered) = e.remembered.take() {
                    if remembered > e.redo_lsn {
                        e.redo_lsn = remembered;
                    }
                }
            }
            Some(_) => {
                st.dpt.remove(&page);
            }
            None => {}
        }
        drop(st);
        self.cv.notify_all();
    }

    /// §3.4: report DPT, cached pages and LLM entries for server restart.
    pub(crate) fn report_state(&self) -> ClientStateReport {
        let st = self.st.lock();
        let mut dpt: Vec<DptEntry> = st
            .dpt
            .iter()
            .map(|(p, e)| DptEntry {
                page: *p,
                redo_lsn: e.redo_lsn,
            })
            .collect();
        dpt.sort_by_key(|e| e.page.0);
        ClientStateReport {
            dpt,
            cached_pages: st.cache.cached_psns(),
            locks: st.llm.all_locks(),
        }
    }

    /// §3.4: this client's `CallBack_P` contribution — callback log
    /// records it wrote for objects of `page` naming `for_client`, the
    /// latest PSN per object winning.
    pub(crate) fn callback_list_for(
        &self,
        page: PageId,
        for_client: ClientId,
        from_lsn: Lsn,
    ) -> Vec<(ObjectId, Psn)> {
        let st = self.st.lock();
        let mut from = st.dpt.get(&page).map(|e| e.redo_lsn).unwrap_or(Lsn::NIL);
        if !from_lsn.is_nil() && (from.is_nil() || from_lsn < from) {
            from = from_lsn;
        }
        let ckpt = st.wal.last_checkpoint();
        if from.is_nil() || (!ckpt.is_nil() && ckpt < from) {
            from = ckpt;
        }
        let mut map: std::collections::HashMap<ObjectId, Psn> = std::collections::HashMap::new();
        for entry in st.wal.scan_from(from) {
            if let LogPayload::Callback(cb) = entry.payload {
                if cb.object.page == page && cb.from_client == for_client {
                    // Forward scan: later records overwrite earlier ones
                    // ("the PSN stored in the most recent one", §3.4).
                    map.insert(cb.object, cb.psn);
                }
            }
        }
        let mut out: Vec<(ObjectId, Psn)> = map.into_iter().collect();
        out.sort_by_key(|(o, _)| (o.page.0, o.slot.0));
        out
    }

    /// §3.4 step 4: ship the cached copy, forcing the log first (WAL).
    pub(crate) fn ship_cached_page_bytes(&self, page: PageId) -> Option<Arc<[u8]>> {
        let mut st = self.st.lock();
        if !st.cache.contains(page) {
            return None;
        }
        if self.strategy.before_ship(self, &mut st, page).is_err() {
            return None;
        }
        if st.wal.force().is_err() {
            return None;
        }
        st.cache.peek(page).map(|p| Arc::from(p.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::SystemConfig;
    use fgl_net::peer::CallbackOutcome;
    use fgl_net::stats::NetSim;
    use fgl_server::runtime::ServerCore;
    use fgl_storage::disk::MemDisk;
    use fgl_storage::page::Page;

    fn build() -> Arc<ClientCore> {
        let cfg = SystemConfig::default();
        let net = Arc::new(NetSim::new(cfg.net_latency));
        let server = ServerCore::new(cfg, net.clone(), Arc::new(MemDisk::new()));
        ClientCore::new(ClientId(1), server, net)
    }

    /// A batch whose callbacks span several pages ships exactly one copy
    /// per distinct page — and each copy carries a PSN at least as fresh
    /// as the client's committed updates, because the copy is taken from
    /// the cache *after* the WAL force and never re-shipped within the
    /// batch (the second callback on a page finds it already clean).
    #[test]
    fn batch_reply_ships_one_copy_per_page() {
        let c = build();
        let t = c.begin().unwrap();
        let p1 = c.create_page(t).unwrap();
        let p2 = c.create_page(t).unwrap();
        let a = c.insert(t, p1, b"aaaa").unwrap();
        let b = c.insert(t, p1, b"bbbb").unwrap();
        let x = c.insert(t, p2, b"xxxx").unwrap();
        c.commit(t).unwrap();
        let t = c.begin().unwrap();
        c.write(t, a, b"AAAA").unwrap();
        c.write(t, b, b"BBBB").unwrap();
        c.write(t, x, b"XXXX").unwrap();
        c.commit(t).unwrap();

        // Both pages are dirty in the cache. A single batch calls back all
        // three object locks: p1 twice, p2 once.
        let outcomes = c.handle_server_callback_batch(&[
            CallbackKind::ReleaseObject(a),
            CallbackKind::ReleaseObject(b),
            CallbackKind::ReleaseObject(x),
        ]);
        let copies: Vec<Option<Psn>> = outcomes
            .iter()
            .map(|o| match o {
                CallbackOutcome::Done { page_copy, .. } => page_copy
                    .as_ref()
                    .map(|bytes| Page::from_bytes(bytes.to_vec()).unwrap().psn()),
                CallbackOutcome::Deferred { .. } => panic!("no txn active: {o:?}"),
            })
            .collect();
        assert!(copies[0].is_some(), "first callback on p1 ships the copy");
        assert!(
            copies[1].is_none(),
            "second callback on p1 must not ship a duplicate copy"
        );
        assert!(copies[2].is_some(), "p2 ships its own copy");

        // PSN monotonicity: each shipped copy reflects all three committed
        // updates — two PSN bumps on p1, one on p2 (plus the inserts).
        let t = c.begin().unwrap();
        let (psn1, psn2) = (copies[0].unwrap(), copies[2].unwrap());
        c.abort(t).unwrap();
        assert!(
            psn1 > psn2,
            "p1 took more updates than p2: {psn1:?} vs {psn2:?}"
        );

        // A later batch on a re-dirtied page ships a strictly newer copy.
        let t = c.begin().unwrap();
        c.write(t, x, b"YYYY").unwrap();
        c.commit(t).unwrap();
        let outcomes = c.handle_server_callback_batch(&[CallbackKind::ReleaseObject(x)]);
        match &outcomes[0] {
            CallbackOutcome::Done {
                page_copy: Some(bytes),
                ..
            } => {
                let newer = Page::from_bytes(bytes.to_vec()).unwrap().psn();
                assert!(newer > psn2, "re-shipped copy must advance the PSN");
            }
            other => panic!("expected a fresh copy: {other:?}"),
        }
    }
}
