//! Client-runtime behaviour tests: transaction lifecycle edges, DPT
//! bookkeeping, cache/lock interplay, log-space reclamation, hardening.

use fgl_client::ClientCore;
use fgl_common::{ClientId, FglError, SystemConfig};
use fgl_net::stats::NetSim;
use fgl_server::runtime::ServerCore;
use fgl_storage::disk::MemDisk;
use std::sync::Arc;

fn system(cfg: SystemConfig) -> (Arc<ServerCore>, Vec<Arc<ClientCore>>) {
    let net = Arc::new(NetSim::new(std::time::Duration::ZERO));
    let server = ServerCore::new(cfg, net.clone(), Arc::new(MemDisk::new()));
    let clients = (1..=2)
        .map(|i| ClientCore::new(ClientId(i), server.clone(), net.clone()))
        .collect();
    (server, clients)
}

#[test]
fn commit_of_unknown_txn_fails() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let err = c
        .commit(fgl_common::TxnId::compose(c.id(), 999))
        .unwrap_err();
    assert!(matches!(err, FglError::InvalidTxnState { .. }));
}

#[test]
fn double_commit_fails() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let t = c.begin().unwrap();
    c.commit(t).unwrap();
    assert!(matches!(c.commit(t), Err(FglError::InvalidTxnState { .. })));
}

#[test]
fn operations_after_abort_fail() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let t = c.begin().unwrap();
    let page = c.create_page(t).unwrap();
    let obj = c.insert(t, page, b"x").unwrap();
    c.abort(t).unwrap();
    assert!(c.write(t, obj, b"y").is_err());
    assert!(c.read(t, obj).is_err());
}

#[test]
fn unknown_savepoint_is_reported() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let t = c.begin().unwrap();
    match c.rollback_to(t, "missing") {
        Err(FglError::UnknownSavepoint(name)) => assert_eq!(name, "missing"),
        other => panic!("expected UnknownSavepoint, got {other:?}"),
    }
    c.abort(t).unwrap();
}

#[test]
fn nested_savepoints_roll_back_in_order() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let t = c.begin().unwrap();
    let page = c.create_page(t).unwrap();
    let obj = c.insert(t, page, b"v0").unwrap();
    c.savepoint(t, "a").unwrap();
    c.write(t, obj, b"v1").unwrap();
    c.savepoint(t, "b").unwrap();
    c.write(t, obj, b"v2").unwrap();
    // Rolling to b keeps v1; rolling to a keeps v0; b is gone after a.
    c.rollback_to(t, "b").unwrap();
    assert_eq!(c.read(t, obj).unwrap(), b"v1");
    c.rollback_to(t, "a").unwrap();
    assert_eq!(c.read(t, obj).unwrap(), b"v0");
    assert!(c.rollback_to(t, "b").is_err(), "later savepoint discarded");
    c.commit(t).unwrap();
}

#[test]
fn write_size_change_requires_resize() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let t = c.begin().unwrap();
    let page = c.create_page(t).unwrap();
    let obj = c.insert(t, page, b"1234").unwrap();
    assert!(c.write(t, obj, b"12345").is_err());
    c.resize(t, obj, 5).unwrap();
    c.write(t, obj, b"12345").unwrap();
    c.commit(t).unwrap();
}

#[test]
fn dpt_tracks_dirty_pages_and_harden_clears_it() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let t = c.begin().unwrap();
    let p1 = c.create_page(t).unwrap();
    let p2 = c.create_page(t).unwrap();
    c.insert(t, p1, b"a").unwrap();
    c.insert(t, p2, b"b").unwrap();
    c.commit(t).unwrap();
    let dpt = c.dpt_snapshot();
    assert!(dpt.iter().any(|(p, _)| *p == p1));
    assert!(dpt.iter().any(|(p, _)| *p == p2));
    c.harden().unwrap();
    assert!(c.dpt_snapshot().is_empty(), "harden must drain the DPT");
}

#[test]
fn log_usage_grows_and_reclamation_frees() {
    let cfg = SystemConfig {
        client_log_bytes: 64 << 10,
        client_checkpoint_every: u64::MAX / 2,
        ..Default::default()
    };
    let (_s, cs) = system(cfg);
    let c = &cs[0];
    let t = c.begin().unwrap();
    let page = c.create_page(t).unwrap();
    let obj = c.insert(t, page, &[0u8; 64]).unwrap();
    c.commit(t).unwrap();
    let (used0, cap) = c.log_usage();
    // Write until we are well past half the log; reclamation keeps us
    // under capacity throughout.
    for i in 0..400u32 {
        let t = c.begin().unwrap();
        c.write(t, obj, &[(i % 251) as u8; 64]).unwrap();
        c.commit(t).unwrap();
        let (used, _) = c.log_usage();
        assert!(used <= cap, "log use {used} exceeded capacity {cap}");
    }
    let (used1, _) = c.log_usage();
    assert!(used1 < cap);
    assert!(used0 < cap);
    assert!(
        c.stats().log_stall_events > 0
            || c.stats().forced_flush_requests > 0
            || c.stats().checkpoints > 0,
        "a 64 KiB log must have triggered reclamation machinery"
    );
}

#[test]
fn stats_reflect_activity() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let t = c.begin().unwrap();
    let page = c.create_page(t).unwrap();
    let obj = c.insert(t, page, b"zz").unwrap();
    c.commit(t).unwrap();
    let t = c.begin().unwrap();
    c.write(t, obj, b"yy").unwrap();
    c.abort(t).unwrap();
    let s = c.stats();
    assert_eq!(s.commits, 1);
    assert_eq!(s.aborts, 1);
    assert!(s.log_forces >= 1);
    assert!(s.log_bytes > 0);
}

#[test]
fn crashed_client_rejects_new_transactions_until_recovery() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let t = c.begin().unwrap();
    let page = c.create_page(t).unwrap();
    c.insert(t, page, b"x").unwrap();
    c.commit(t).unwrap();
    c.crash();
    assert!(matches!(c.begin(), Err(FglError::Disconnected(_))));
    c.recover().unwrap();
    let t = c.begin().unwrap();
    c.commit(t).unwrap();
}

#[test]
fn reads_are_cached_after_first_fetch() {
    let (server, cs) = system(SystemConfig::default());
    let (a, b) = (&cs[0], &cs[1]);
    let t = a.begin().unwrap();
    let page = a.create_page(t).unwrap();
    let obj = a.insert(t, page, b"shared").unwrap();
    a.commit(t).unwrap();

    let t = b.begin().unwrap();
    b.read(t, obj).unwrap();
    b.commit(t).unwrap();
    let fetches_before = server.stats().page_fetches;
    // Re-reads hit B's cache and cached S lock: no further fetches.
    for _ in 0..5 {
        let t = b.begin().unwrap();
        b.read(t, obj).unwrap();
        b.commit(t).unwrap();
    }
    assert_eq!(server.stats().page_fetches, fetches_before);
}

#[test]
fn cross_client_txn_ids_never_collide() {
    let (_s, cs) = system(SystemConfig::default());
    let t1 = cs[0].begin().unwrap();
    let t2 = cs[1].begin().unwrap();
    assert_ne!(t1, t2);
    assert_eq!(t1.client(), cs[0].id());
    assert_eq!(t2.client(), cs[1].id());
    cs[0].abort(t1).unwrap();
    cs[1].abort(t2).unwrap();
}

#[test]
fn abort_of_structural_updates_restores_page_shape() {
    let (_s, cs) = system(SystemConfig::default());
    let c = &cs[0];
    let t = c.begin().unwrap();
    let page = c.create_page(t).unwrap();
    let keep = c.insert(t, page, b"keep").unwrap();
    c.commit(t).unwrap();

    let t = c.begin().unwrap();
    let temp1 = c.insert(t, page, b"t1").unwrap();
    let temp2 = c.insert(t, page, b"t2").unwrap();
    c.remove(t, keep).unwrap();
    c.resize(t, temp1, 10).unwrap();
    c.abort(t).unwrap();

    let t = c.begin().unwrap();
    assert_eq!(c.read(t, keep).unwrap(), b"keep");
    assert!(c.read(t, temp1).is_err());
    assert!(c.read(t, temp2).is_err());
    c.commit(t).unwrap();
}
