//! Randomized tests for the client cache: merge-on-install never loses
//! locally dirty state, evictions surface every dirty page, and the cache
//! never exceeds capacity. Operation sequences come from the in-tree
//! deterministic PRNG so each case replays from its seed.

use fgl_client::cache::ClientCache;
use fgl_common::rng::DetRng;
use fgl_common::{PageId, Psn, SlotId};
use fgl_storage::page::Page;

#[derive(Clone, Debug)]
enum CacheOp {
    /// Install a server copy of page `p` (fresh generation if `r` even).
    Install { p: u64, r: u8 },
    /// Locally update slot 0 of a cached page.
    Update { p: u64, v: u8 },
    /// Drop a page.
    Remove { p: u64 },
}

fn random_op(rng: &mut DetRng) -> CacheOp {
    let p = rng.gen_range(12);
    match rng.gen_range(3) {
        0 => CacheOp::Install {
            p,
            r: rng.gen_range(256) as u8,
        },
        1 => CacheOp::Update {
            p,
            v: rng.gen_range(256) as u8,
        },
        _ => CacheOp::Remove { p },
    }
}

fn server_copy(p: u64, generation: u64) -> Page {
    // Generations are spaced far apart so local +1 PSN bumps never
    // collide with the next generation (the real protocol guarantees
    // per-object monotonicity via callbacks; the model mirrors it).
    let mut page = Page::format(512, PageId(p), Psn(generation * 1000));
    page.insert_object(&[(generation % 251) as u8; 16]).unwrap();
    page
}

/// Capacity is a hard bound; every evicted dirty page is surfaced;
/// local updates survive merges with any incoming server copy.
#[test]
fn cache_invariants() {
    for case in 0..256u64 {
        let mut rng = DetRng::new(0xCAC4E ^ case);
        let ops: Vec<CacheOp> = (0..rng.range_usize(1, 80))
            .map(|_| random_op(&mut rng))
            .collect();
        let capacity = 4;
        let mut cache = ClientCache::new(capacity);
        // Track which pages we dirtied locally and with what value.
        let mut local: std::collections::HashMap<u64, u8> = Default::default();
        // Per-page server generation: advances only while we are not
        // holding dirty state for the page (protocol: our X lock blocks
        // remote writers).
        let mut gen: std::collections::HashMap<u64, u64> = Default::default();
        for op in ops {
            match op {
                CacheOp::Install { p, r } => {
                    let g = gen.entry(p).or_insert(1);
                    if r % 2 == 0 && !local.contains_key(&p) {
                        *g += 1; // fresh server state
                    } // else: re-deliver the same (possibly stale) copy
                    let copy = server_copy(p, *g);
                    let ev = cache.install_from_server(copy).unwrap();
                    if let Some(e) = ev {
                        // Dirty evictions carry the page; it must be one
                        // we dirtied, and its content must be our value.
                        assert!(e.dirty);
                        let pid = e.page.id().0;
                        let v = local.remove(&pid);
                        assert!(v.is_some(), "evicted dirty page we never dirtied");
                        assert_eq!(e.page.read_object(SlotId(0)).unwrap()[0], v.unwrap());
                    }
                    assert!(cache.len() <= capacity);
                }
                CacheOp::Update { p, v } => {
                    if cache.contains(PageId(p)) {
                        cache
                            .get_mut(PageId(p))
                            .unwrap()
                            .write_object(SlotId(0), &[v; 16])
                            .unwrap();
                        local.insert(p, v);
                        assert!(cache.is_dirty(PageId(p)));
                    }
                }
                CacheOp::Remove { p } => {
                    cache.remove(PageId(p));
                    local.remove(&p);
                }
            }
            // Every locally-dirty page still cached must show our value
            // (merges must never wash out the newer local update).
            for (&p, &v) in &local {
                if let Some(page) = cache.peek(PageId(p)) {
                    assert_eq!(page.read_object(SlotId(0)).unwrap()[0], v);
                    assert!(cache.is_dirty(PageId(p)));
                }
            }
            // Clean cached pages show the latest installed generation.
            for (&p, &g) in &gen {
                if !local.contains_key(&p) {
                    if let Some(page) = cache.peek(PageId(p)) {
                        assert_eq!(page.read_object(SlotId(0)).unwrap()[0], (g % 251) as u8);
                    }
                }
            }
        }
    }
}
