//! The slotted database page.
//!
//! Layout (`page_size` bytes total, all integers little-endian):
//!
//! ```text
//! +---------------------------+ 0
//! | header (32 bytes)         |
//! +---------------------------+ 32
//! | slot table (16 B / slot)  |   grows downward (towards high offsets)
//! +---------------------------+
//! | free space                |
//! +---------------------------+ data_start
//! | object data               |   grows upward (towards low offsets)
//! +---------------------------+ page_size
//! ```
//!
//! Header fields:
//!
//! | off | size | field       |
//! |-----|------|-------------|
//! | 0   | 4    | magic       |
//! | 4   | 2    | format ver  |
//! | 6   | 2    | slot_count  |
//! | 8   | 8    | page id     |
//! | 16  | 8    | PSN         |
//! | 24  | 2    | data_start  |
//! | 26  | 6    | reserved    |
//!
//! Each slot entry records, besides the byte extent of the object, the
//! **slot PSN**: the page PSN at the moment the object was last modified.
//! This is the "little more book-keeping" §3.1 accepts to make merging
//! page *copies* possible — when two copies of a page are merged, every
//! object is taken from the copy whose slot PSN is higher (callback-order
//! PSN monotonicity across clients, §2, makes these comparable).
//!
//! Slot entry layout (16 bytes): `data_off u16 | len u16 | flags u16 |
//! pad u16 | slot_psn u64`. Bit 0 of `flags` = live.

use fgl_common::{FglError, ObjectId, PageId, Psn, Result, SlotId};

/// Size of the fixed page header in bytes.
pub const PAGE_HEADER_SIZE: usize = 32;
/// Size of one slot-table entry in bytes.
pub const SLOT_ENTRY_SIZE: usize = 16;

const MAGIC: u32 = 0xF61C_DA7A;
const FORMAT_VERSION: u16 = 1;

const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 4;
const OFF_SLOT_COUNT: usize = 6;
const OFF_PAGE_ID: usize = 8;
const OFF_PSN: usize = 16;
const OFF_DATA_START: usize = 24;

const FLAG_LIVE: u16 = 1;

/// An in-memory database page. Owns its backing bytes.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8]>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Slot {
    data_off: u16,
    len: u16,
    flags: u16,
    psn: Psn,
}

impl Slot {
    fn live(&self) -> bool {
        self.flags & FLAG_LIVE != 0
    }
}

impl Page {
    /// Format a fresh page. `psn` is the seed PSN taken from the space
    /// allocation map entry (§2 / \[18\]); a brand-new database uses
    /// [`Psn::ZERO`].
    pub fn format(page_size: usize, id: PageId, psn: Psn) -> Page {
        assert!(
            (128..=1 << 16).contains(&page_size),
            "page size out of range"
        );
        let mut buf = vec![0u8; page_size].into_boxed_slice();
        buf[OFF_MAGIC..OFF_MAGIC + 4].copy_from_slice(&MAGIC.to_le_bytes());
        buf[OFF_VERSION..OFF_VERSION + 2].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        let mut p = Page { buf };
        p.set_slot_count(0);
        p.set_id(id);
        p.set_psn(psn);
        p.set_data_start(page_size as u16);
        p
    }

    /// Read the page id straight out of a raw frame's header without
    /// materializing (or validating) the whole page — what a partition
    /// router needs to pick the owning server for a shipped copy.
    pub fn peek_id(bytes: &[u8]) -> Result<PageId> {
        if bytes.len() < PAGE_HEADER_SIZE {
            return Err(FglError::Corrupt(
                "page frame shorter than its header".into(),
            ));
        }
        let magic = u32::from_le_bytes(bytes[OFF_MAGIC..OFF_MAGIC + 4].try_into().unwrap());
        if magic != MAGIC {
            return Err(FglError::Corrupt(format!("bad page magic {magic:#x}")));
        }
        Ok(PageId(u64::from_le_bytes(
            bytes[OFF_PAGE_ID..OFF_PAGE_ID + 8].try_into().unwrap(),
        )))
    }

    /// Reconstruct a page from raw bytes (e.g. read from disk or received
    /// over the network), validating the header.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Page> {
        if bytes.len() < 128 {
            return Err(FglError::Corrupt(
                "page buffer shorter than 128 bytes".into(),
            ));
        }
        let p = Page {
            buf: bytes.into_boxed_slice(),
        };
        let magic = u32::from_le_bytes(p.buf[OFF_MAGIC..OFF_MAGIC + 4].try_into().unwrap());
        if magic != MAGIC {
            return Err(FglError::Corrupt(format!("bad page magic {magic:#x}")));
        }
        let ver = u16::from_le_bytes(p.buf[OFF_VERSION..OFF_VERSION + 2].try_into().unwrap());
        if ver != FORMAT_VERSION {
            return Err(FglError::Corrupt(format!("unsupported page format {ver}")));
        }
        let slots_end = PAGE_HEADER_SIZE + p.slot_count() as usize * SLOT_ENTRY_SIZE;
        if slots_end > p.buf.len() || (p.data_start() as usize) > p.buf.len() {
            return Err(FglError::Corrupt("page extents out of range".into()));
        }
        // Validate every live slot's extent so later reads cannot slice
        // out of bounds on a corrupted page.
        for i in 0..p.slot_count() {
            if let Some(slot) = p.read_slot(SlotId(i)) {
                if slot.live() {
                    let end = slot.data_off as usize + slot.len as usize;
                    if (slot.data_off as usize) < slots_end || end > p.buf.len() {
                        return Err(FglError::Corrupt(format!(
                            "slot {i} extent [{}, {end}) out of range",
                            slot.data_off
                        )));
                    }
                }
            }
        }
        Ok(p)
    }

    /// The raw bytes of the page (what gets written to disk / the wire).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the page into its backing byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.into_vec()
    }

    /// Total size of the page in bytes.
    pub fn size(&self) -> usize {
        self.buf.len()
    }

    pub fn id(&self) -> PageId {
        PageId(u64::from_le_bytes(
            self.buf[OFF_PAGE_ID..OFF_PAGE_ID + 8].try_into().unwrap(),
        ))
    }

    fn set_id(&mut self, id: PageId) {
        self.buf[OFF_PAGE_ID..OFF_PAGE_ID + 8].copy_from_slice(&id.0.to_le_bytes());
    }

    /// Current page sequence number.
    pub fn psn(&self) -> Psn {
        Psn(u64::from_le_bytes(
            self.buf[OFF_PSN..OFF_PSN + 8].try_into().unwrap(),
        ))
    }

    /// Overwrite the PSN. Used by the merge procedure and by recovery when
    /// the server tells a client which PSN to install (§3.3, §3.4).
    pub fn set_psn(&mut self, psn: Psn) {
        self.buf[OFF_PSN..OFF_PSN + 8].copy_from_slice(&psn.0.to_le_bytes());
    }

    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes(
            self.buf[OFF_SLOT_COUNT..OFF_SLOT_COUNT + 2]
                .try_into()
                .unwrap(),
        )
    }

    fn set_slot_count(&mut self, n: u16) {
        self.buf[OFF_SLOT_COUNT..OFF_SLOT_COUNT + 2].copy_from_slice(&n.to_le_bytes());
    }

    fn data_start(&self) -> u16 {
        u16::from_le_bytes(
            self.buf[OFF_DATA_START..OFF_DATA_START + 2]
                .try_into()
                .unwrap(),
        )
    }

    fn set_data_start(&mut self, v: u16) {
        self.buf[OFF_DATA_START..OFF_DATA_START + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_entry_off(&self, slot: SlotId) -> usize {
        PAGE_HEADER_SIZE + slot.0 as usize * SLOT_ENTRY_SIZE
    }

    fn read_slot(&self, slot: SlotId) -> Option<Slot> {
        if slot.0 >= self.slot_count() {
            return None;
        }
        let off = self.slot_entry_off(slot);
        let e = &self.buf[off..off + SLOT_ENTRY_SIZE];
        Some(Slot {
            data_off: u16::from_le_bytes(e[0..2].try_into().unwrap()),
            len: u16::from_le_bytes(e[2..4].try_into().unwrap()),
            flags: u16::from_le_bytes(e[4..6].try_into().unwrap()),
            psn: Psn(u64::from_le_bytes(e[8..16].try_into().unwrap())),
        })
    }

    fn write_slot(&mut self, slot: SlotId, s: Slot) {
        let off = self.slot_entry_off(slot);
        let e = &mut self.buf[off..off + SLOT_ENTRY_SIZE];
        e[0..2].copy_from_slice(&s.data_off.to_le_bytes());
        e[2..4].copy_from_slice(&s.len.to_le_bytes());
        e[4..6].copy_from_slice(&s.flags.to_le_bytes());
        e[6..8].copy_from_slice(&0u16.to_le_bytes());
        e[8..16].copy_from_slice(&s.psn.0.to_le_bytes());
    }

    /// Bytes of contiguous free space between the slot table and the data
    /// region (not counting reclaimable dead-object space).
    pub fn contiguous_free(&self) -> usize {
        let slots_end = PAGE_HEADER_SIZE + self.slot_count() as usize * SLOT_ENTRY_SIZE;
        self.data_start() as usize - slots_end
    }

    /// Total free space assuming compaction (dead objects reclaimed).
    pub fn total_free(&self) -> usize {
        let slots_end = PAGE_HEADER_SIZE + self.slot_count() as usize * SLOT_ENTRY_SIZE;
        let live: usize = self.iter_slots().map(|(_, s)| s.len as usize).sum();
        self.size() - slots_end - live
    }

    fn iter_slots(&self) -> impl Iterator<Item = (SlotId, Slot)> + '_ {
        (0..self.slot_count()).filter_map(move |i| {
            let id = SlotId(i);
            self.read_slot(id).filter(|s| s.live()).map(|s| (id, s))
        })
    }

    /// Ids of all live slots on the page.
    pub fn live_slots(&self) -> Vec<SlotId> {
        self.iter_slots().map(|(id, _)| id).collect()
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.iter_slots().count()
    }

    /// Does `slot` name a live object?
    pub fn slot_is_live(&self, slot: SlotId) -> bool {
        self.read_slot(slot).map(|s| s.live()).unwrap_or(false)
    }

    /// The PSN the page had when `slot` was last modified, if the slot ever
    /// existed (live or dead).
    pub fn slot_psn(&self, slot: SlotId) -> Option<Psn> {
        self.read_slot(slot).map(|s| s.psn)
    }

    /// Read the bytes of a live object.
    pub fn read_object(&self, slot: SlotId) -> Result<&[u8]> {
        let s = self
            .read_slot(slot)
            .filter(|s| s.live())
            .ok_or(FglError::ObjectNotFound(ObjectId::new(self.id(), slot)))?;
        Ok(&self.buf[s.data_off as usize..s.data_off as usize + s.len as usize])
    }

    /// Bump the page PSN by one (a transaction modified the page, §2) and
    /// return the new value.
    fn bump_psn(&mut self) -> Psn {
        let next = self.psn().next();
        self.set_psn(next);
        next
    }

    /// The slot [`insert_object`](Self::insert_object) would pick right
    /// now (dead-slot reuse, else a new entry). Lets callers write the log
    /// record *before* mutating the page (WAL ordering).
    pub fn peek_insert_slot(&self) -> SlotId {
        (0..self.slot_count())
            .map(SlotId)
            .find(|&i| self.read_slot(i).map(|s| !s.live()).unwrap_or(false))
            .unwrap_or(SlotId(self.slot_count()))
    }

    /// Allocate a new object with the given contents; returns its slot.
    /// This is a **non-mergeable** structural update (§3.1): callers must
    /// hold a page-level exclusive lock.
    pub fn insert_object(&mut self, data: &[u8]) -> Result<SlotId> {
        // Reuse a dead slot if possible, else append a new slot entry.
        let reuse = (0..self.slot_count())
            .map(SlotId)
            .find(|&i| self.read_slot(i).map(|s| !s.live()).unwrap_or(false));
        let (slot, new_entry) = match reuse {
            Some(s) => (s, false),
            None => (SlotId(self.slot_count()), true),
        };
        self.place_object(slot, new_entry, data)?;
        Ok(slot)
    }

    /// Allocate a new object at a specific slot (used by redo and by the
    /// merge rebuild). Extends the slot table as needed.
    pub fn insert_object_at(&mut self, slot: SlotId, data: &[u8]) -> Result<()> {
        if self.slot_is_live(slot) {
            return Err(FglError::Protocol(format!(
                "insert_object_at: slot {slot:?} already live on {}",
                self.id()
            )));
        }
        let new_entry = slot.0 >= self.slot_count();
        if new_entry && slot.0 > self.slot_count() {
            // Create intermediate dead slots so the table stays dense.
            let needed =
                (slot.0 as usize + 1 - self.slot_count() as usize) * SLOT_ENTRY_SIZE + data.len();
            if self.contiguous_free() < needed && self.total_free() >= needed {
                self.compact();
            }
            if self.contiguous_free() < needed {
                return Err(FglError::PageFull {
                    page: self.id(),
                    needed,
                    free: self.contiguous_free(),
                });
            }
            let cur_psn = self.psn();
            while self.slot_count() <= slot.0 {
                let s = SlotId(self.slot_count());
                self.set_slot_count(self.slot_count() + 1);
                self.write_slot(
                    s,
                    Slot {
                        data_off: 0,
                        len: 0,
                        flags: 0,
                        psn: cur_psn,
                    },
                );
            }
            return self.place_object(slot, false, data);
        }
        self.place_object(slot, new_entry, data)
    }

    fn place_object(&mut self, slot: SlotId, new_entry: bool, data: &[u8]) -> Result<()> {
        let needed = data.len() + if new_entry { SLOT_ENTRY_SIZE } else { 0 };
        if self.contiguous_free() < needed {
            if self.total_free() >= needed {
                self.compact();
            }
            if self.contiguous_free() < needed {
                return Err(FglError::PageFull {
                    page: self.id(),
                    needed,
                    free: self.contiguous_free(),
                });
            }
        }
        if new_entry {
            self.set_slot_count(self.slot_count() + 1);
        }
        let new_start = self.data_start() - data.len() as u16;
        self.buf[new_start as usize..new_start as usize + data.len()].copy_from_slice(data);
        self.set_data_start(new_start);
        let psn = self.bump_psn();
        self.write_slot(
            slot,
            Slot {
                data_off: new_start,
                len: data.len() as u16,
                flags: FLAG_LIVE,
                psn,
            },
        );
        Ok(())
    }

    /// Overwrite the full contents of a live object **without changing its
    /// size** — the *mergeable* update of §3.1.
    pub fn write_object(&mut self, slot: SlotId, data: &[u8]) -> Result<()> {
        let s = self
            .read_slot(slot)
            .filter(|s| s.live())
            .ok_or(FglError::ObjectNotFound(ObjectId::new(self.id(), slot)))?;
        if s.len as usize != data.len() {
            return Err(FglError::Protocol(format!(
                "write_object: size change {} -> {} on {:?} requires resize_object",
                s.len,
                data.len(),
                ObjectId::new(self.id(), slot)
            )));
        }
        self.buf[s.data_off as usize..s.data_off as usize + s.len as usize].copy_from_slice(data);
        let psn = self.bump_psn();
        self.write_slot(slot, Slot { psn, ..s });
        Ok(())
    }

    /// Overwrite `data.len()` bytes of a live object starting at byte
    /// `offset` — a partial mergeable update.
    pub fn write_object_at(&mut self, slot: SlotId, offset: usize, data: &[u8]) -> Result<()> {
        let s = self
            .read_slot(slot)
            .filter(|s| s.live())
            .ok_or(FglError::ObjectNotFound(ObjectId::new(self.id(), slot)))?;
        if offset + data.len() > s.len as usize {
            return Err(FglError::Protocol(format!(
                "write_object_at: range {}..{} exceeds object length {}",
                offset,
                offset + data.len(),
                s.len
            )));
        }
        let base = s.data_off as usize + offset;
        self.buf[base..base + data.len()].copy_from_slice(data);
        let psn = self.bump_psn();
        self.write_slot(slot, Slot { psn, ..s });
        Ok(())
    }

    /// Change the size of a live object, preserving the common prefix.
    /// **Non-mergeable** (§3.1): requires a page-level exclusive lock.
    pub fn resize_object(&mut self, slot: SlotId, new_len: usize) -> Result<()> {
        let s = self
            .read_slot(slot)
            .filter(|s| s.live())
            .ok_or(FglError::ObjectNotFound(ObjectId::new(self.id(), slot)))?;
        let old = self.buf[s.data_off as usize..s.data_off as usize + s.len as usize].to_vec();
        let mut data = old.clone();
        data.resize(new_len, 0);
        // Free the old extent (mark dead), then re-place. Keep the psn
        // bookkeeping of place_object.
        self.write_slot(slot, Slot { flags: 0, ..s });
        match self.place_object(slot, false, &data) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Roll the slot back to its previous state on failure.
                self.write_slot(slot, s);
                Err(e)
            }
        }
    }

    /// Delete a live object. **Non-mergeable** (§3.1).
    pub fn free_object(&mut self, slot: SlotId) -> Result<Vec<u8>> {
        let s = self
            .read_slot(slot)
            .filter(|s| s.live())
            .ok_or(FglError::ObjectNotFound(ObjectId::new(self.id(), slot)))?;
        let old = self.buf[s.data_off as usize..s.data_off as usize + s.len as usize].to_vec();
        let psn = self.bump_psn();
        self.write_slot(
            slot,
            Slot {
                data_off: 0,
                len: 0,
                flags: 0,
                psn,
            },
        );
        Ok(old)
    }

    /// Install an exact object state at `slot` with an explicit slot PSN,
    /// without bumping the page PSN. `None` installs the *dead* state
    /// (object freed). This is the primitive behind the merge procedure and
    /// behind recovery redo/undo, which must reproduce historical PSNs
    /// rather than mint new ones.
    pub fn install_object(&mut self, slot: SlotId, data: Option<&[u8]>, psn: Psn) -> Result<()> {
        // Extend the slot table with dead entries up to `slot`.
        while self.slot_count() <= slot.0 {
            let needed = SLOT_ENTRY_SIZE;
            if self.contiguous_free() < needed {
                self.compact();
            }
            if self.contiguous_free() < needed {
                return Err(FglError::PageFull {
                    page: self.id(),
                    needed,
                    free: self.contiguous_free(),
                });
            }
            let s = SlotId(self.slot_count());
            self.set_slot_count(self.slot_count() + 1);
            self.write_slot(
                s,
                Slot {
                    data_off: 0,
                    len: 0,
                    flags: 0,
                    psn: Psn::ZERO,
                },
            );
        }
        let cur = self.read_slot(slot).expect("slot exists after extension");
        match data {
            None => {
                self.write_slot(
                    slot,
                    Slot {
                        data_off: 0,
                        len: 0,
                        flags: 0,
                        psn,
                    },
                );
                Ok(())
            }
            Some(bytes) => {
                if cur.live() && cur.len as usize == bytes.len() {
                    // Overwrite in place.
                    self.buf[cur.data_off as usize..cur.data_off as usize + bytes.len()]
                        .copy_from_slice(bytes);
                    self.write_slot(slot, Slot { psn, ..cur });
                    return Ok(());
                }
                // Mark dead, then re-place with the explicit PSN.
                self.write_slot(slot, Slot { flags: 0, ..cur });
                if self.contiguous_free() < bytes.len() {
                    self.compact();
                }
                if self.contiguous_free() < bytes.len() {
                    self.write_slot(slot, cur);
                    return Err(FglError::PageFull {
                        page: self.id(),
                        needed: bytes.len(),
                        free: self.contiguous_free(),
                    });
                }
                let new_start = self.data_start() - bytes.len() as u16;
                self.buf[new_start as usize..new_start as usize + bytes.len()]
                    .copy_from_slice(bytes);
                self.set_data_start(new_start);
                self.write_slot(
                    slot,
                    Slot {
                        data_off: new_start,
                        len: bytes.len() as u16,
                        flags: FLAG_LIVE,
                        psn,
                    },
                );
                Ok(())
            }
        }
    }

    /// Compact the data region, squeezing out dead-object space. Slot ids
    /// and PSNs are unaffected.
    pub fn compact(&mut self) {
        let live: Vec<(SlotId, Slot, Vec<u8>)> = self
            .iter_slots()
            .map(|(id, s)| {
                let d =
                    self.buf[s.data_off as usize..s.data_off as usize + s.len as usize].to_vec();
                (id, s, d)
            })
            .collect();
        let mut cursor = self.size() as u16;
        for (id, s, data) in live {
            cursor -= s.len;
            self.buf[cursor as usize..cursor as usize + s.len as usize].copy_from_slice(&data);
            self.write_slot(
                id,
                Slot {
                    data_off: cursor,
                    ..s
                },
            );
        }
        self.set_data_start(cursor);
    }

    /// Snapshot of the page's live objects: `(slot, slot_psn, bytes)`.
    /// Used by the merge procedure and the verification oracle.
    pub fn snapshot_objects(&self) -> Vec<(SlotId, Psn, Vec<u8>)> {
        self.iter_slots()
            .map(|(id, s)| {
                (
                    id,
                    s.psn,
                    self.buf[s.data_off as usize..s.data_off as usize + s.len as usize].to_vec(),
                )
            })
            .collect()
    }

    /// Snapshot including dead slots (needed by merge to propagate
    /// deletions): `(slot, slot_psn, live, bytes-if-live)`.
    pub fn snapshot_all_slots(&self) -> Vec<(SlotId, Psn, bool, Vec<u8>)> {
        (0..self.slot_count())
            .map(SlotId)
            .filter_map(|id| self.read_slot(id).map(|s| (id, s)))
            .map(|(id, s)| {
                let bytes = if s.live() {
                    self.buf[s.data_off as usize..s.data_off as usize + s.len as usize].to_vec()
                } else {
                    Vec::new()
                };
                (id, s.psn, s.live(), bytes)
            })
            .collect()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("id", &self.id())
            .field("psn", &self.psn())
            .field("slots", &self.slot_count())
            .field("live", &self.live_count())
            .field("free", &self.contiguous_free())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::format(4096, PageId(7), Psn::ZERO)
    }

    #[test]
    fn format_and_header_roundtrip() {
        let p = page();
        assert_eq!(p.id(), PageId(7));
        assert_eq!(p.psn(), Psn::ZERO);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.live_count(), 0);
        assert_eq!(p.contiguous_free(), 4096 - PAGE_HEADER_SIZE);
    }

    #[test]
    fn from_bytes_validates_magic() {
        let p = page();
        let mut bytes = p.into_bytes();
        let ok = Page::from_bytes(bytes.clone());
        assert!(ok.is_ok());
        bytes[0] ^= 0xFF;
        assert!(Page::from_bytes(bytes).is_err());
    }

    #[test]
    fn insert_read_roundtrip_bumps_psn() {
        let mut p = page();
        let s = p.insert_object(b"hello").unwrap();
        assert_eq!(p.read_object(s).unwrap(), b"hello");
        assert_eq!(p.psn(), Psn(1));
        assert_eq!(p.slot_psn(s), Some(Psn(1)));
        let s2 = p.insert_object(b"world!").unwrap();
        assert_ne!(s, s2);
        assert_eq!(p.psn(), Psn(2));
        assert_eq!(p.read_object(s).unwrap(), b"hello");
        assert_eq!(p.read_object(s2).unwrap(), b"world!");
    }

    #[test]
    fn write_object_same_size_only() {
        let mut p = page();
        let s = p.insert_object(b"aaaa").unwrap();
        p.write_object(s, b"bbbb").unwrap();
        assert_eq!(p.read_object(s).unwrap(), b"bbbb");
        assert!(p.write_object(s, b"toolong").is_err());
    }

    #[test]
    fn partial_write() {
        let mut p = page();
        let s = p.insert_object(b"abcdef").unwrap();
        p.write_object_at(s, 2, b"XY").unwrap();
        assert_eq!(p.read_object(s).unwrap(), b"abXYef");
        assert!(p.write_object_at(s, 5, b"ZZ").is_err());
    }

    #[test]
    fn free_then_reuse_slot() {
        let mut p = page();
        let s0 = p.insert_object(b"one").unwrap();
        let _s1 = p.insert_object(b"two").unwrap();
        let old = p.free_object(s0).unwrap();
        assert_eq!(old, b"one");
        assert!(p.read_object(s0).is_err());
        // Next insert reuses the dead slot.
        let s2 = p.insert_object(b"three").unwrap();
        assert_eq!(s2, s0);
        assert_eq!(p.read_object(s2).unwrap(), b"three");
    }

    #[test]
    fn resize_preserves_prefix() {
        let mut p = page();
        let s = p.insert_object(b"abcd").unwrap();
        p.resize_object(s, 8).unwrap();
        assert_eq!(p.read_object(s).unwrap(), b"abcd\0\0\0\0");
        p.resize_object(s, 2).unwrap();
        assert_eq!(p.read_object(s).unwrap(), b"ab");
    }

    #[test]
    fn page_fills_up_and_reports_full() {
        let mut p = Page::format(256, PageId(1), Psn::ZERO);
        let blob = [0xAB; 64];
        let mut inserted = 0;
        loop {
            match p.insert_object(&blob) {
                Ok(_) => inserted += 1,
                Err(FglError::PageFull { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(inserted >= 2, "inserted only {inserted}");
        // All previously inserted objects still readable.
        for s in p.live_slots() {
            assert_eq!(p.read_object(s).unwrap(), blob);
        }
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = Page::format(512, PageId(1), Psn::ZERO);
        let a = p.insert_object(&[1u8; 100]).unwrap();
        let b = p.insert_object(&[2u8; 100]).unwrap();
        let c = p.insert_object(&[3u8; 100]).unwrap();
        p.free_object(b).unwrap();
        // A 150-byte object does not fit contiguously but fits after
        // compaction.
        assert!(p.contiguous_free() < 150 + SLOT_ENTRY_SIZE);
        let d = p.insert_object(&[4u8; 150]).unwrap();
        assert_eq!(p.read_object(a).unwrap(), &[1u8; 100][..]);
        assert_eq!(p.read_object(c).unwrap(), &[3u8; 100][..]);
        assert_eq!(p.read_object(d).unwrap(), &[4u8; 150][..]);
    }

    #[test]
    fn insert_at_specific_slot_extends_table() {
        let mut p = page();
        p.insert_object_at(SlotId(3), b"x").unwrap();
        assert_eq!(p.slot_count(), 4);
        assert!(p.slot_is_live(SlotId(3)));
        assert!(!p.slot_is_live(SlotId(0)));
        assert_eq!(p.read_object(SlotId(3)).unwrap(), b"x");
        // Inserting at a live slot is a protocol error.
        assert!(p.insert_object_at(SlotId(3), b"y").is_err());
    }

    #[test]
    fn snapshot_includes_dead_slots() {
        let mut p = page();
        let a = p.insert_object(b"keep").unwrap();
        let b = p.insert_object(b"kill").unwrap();
        p.free_object(b).unwrap();
        let snap = p.snapshot_all_slots();
        assert_eq!(snap.len(), 2);
        let (_, _, live_a, data_a) = &snap[a.0 as usize];
        assert!(*live_a);
        assert_eq!(data_a, b"keep");
        let (_, psn_b, live_b, _) = &snap[b.0 as usize];
        assert!(!*live_b);
        // The dead slot's PSN reflects the free, for merge ordering.
        assert_eq!(*psn_b, p.psn());
    }

    #[test]
    fn clone_is_deep() {
        let mut p = page();
        let s = p.insert_object(b"orig").unwrap();
        let q = p.clone();
        p.write_object(s, b"new!").unwrap();
        assert_eq!(q.read_object(s).unwrap(), b"orig");
        assert_eq!(p.read_object(s).unwrap(), b"new!");
    }
}
