//! Space allocation map with PSN seeding.
//!
//! §2: *"The server initializes the PSN value of a page when this page is
//! allocated by following the approach presented in \[18\] (i.e. the PSN
//! stored on the space allocation map containing information about the
//! page in question is assigned to the PSN field of the page)."*
//!
//! The point of the trick: if a page is deallocated and its id later
//! reused, log records written against the *old* incarnation must not be
//! confused with the new one. Recording the page's final PSN in the space
//! map and seeding the new incarnation with `final + 1` keeps the PSN
//! stream of a page id monotone across incarnations.

use fgl_common::{FglError, PageId, Psn, Result};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    allocated: bool,
    /// PSN to seed the next incarnation with (when free) or the PSN the
    /// page was seeded with (when allocated).
    psn_seed: Psn,
}

/// The server's space allocation map. One entry per page id ever touched.
#[derive(Clone, Debug)]
pub struct SpaceMap {
    entries: BTreeMap<PageId, Entry>,
    /// Freed ids awaiting reuse, lowest-first. Kept alongside `entries`
    /// so [`allocate`](SpaceMap::allocate) is O(log n) — a linear scan
    /// for a free entry made bulk page allocation O(n²), which dominated
    /// database population in the big scaling sweeps (E16).
    free: BTreeSet<PageId>,
    next_unused: u64,
    step: u64,
}

impl Default for SpaceMap {
    fn default() -> Self {
        Self::with_stride(0, 1)
    }
}

impl SpaceMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// A map owning the page-id residue class `start mod step`: fresh
    /// allocations walk `start, start+step, start+2*step, …`. A sharded
    /// server gives shard *i* of *N* the stride `(i, N)` so sibling
    /// shards never hand out colliding ids.
    pub fn with_stride(start: u64, step: u64) -> Self {
        assert!(step >= 1 && start < step, "stride start must be < step");
        SpaceMap {
            entries: BTreeMap::new(),
            free: BTreeSet::new(),
            next_unused: start,
            step,
        }
    }

    /// Allocate a fresh page id (or reuse the lowest freed one) and return
    /// `(id, seed_psn)`. The caller formats the page with the returned PSN.
    pub fn allocate(&mut self) -> (PageId, Psn) {
        // Prefer reusing a freed page id (that is where PSN seeding matters).
        if let Some(id) = self.free.pop_first() {
            let e = self
                .entries
                .get_mut(&id)
                .expect("free-set id must have an entry");
            debug_assert!(!e.allocated);
            e.allocated = true;
            return (id, e.psn_seed);
        }
        let id = PageId(self.next_unused);
        self.next_unused += self.step;
        self.entries.insert(
            id,
            Entry {
                allocated: true,
                psn_seed: Psn::ZERO,
            },
        );
        (id, Psn::ZERO)
    }

    /// Deallocate a page, recording its final PSN so the next incarnation
    /// is seeded past it.
    pub fn deallocate(&mut self, id: PageId, final_psn: Psn) -> Result<()> {
        match self.entries.get_mut(&id) {
            Some(e) if e.allocated => {
                e.allocated = false;
                e.psn_seed = final_psn.next();
                self.free.insert(id);
                Ok(())
            }
            Some(_) => Err(FglError::Protocol(format!("{id} already free"))),
            None => Err(FglError::PageNotFound(id)),
        }
    }

    /// Is the page currently allocated?
    pub fn is_allocated(&self, id: PageId) -> bool {
        self.entries.get(&id).map(|e| e.allocated).unwrap_or(false)
    }

    /// The PSN seed recorded for a page id, if known.
    pub fn seed_psn(&self, id: PageId) -> Option<Psn> {
        self.entries.get(&id).map(|e| e.psn_seed)
    }

    /// Number of currently allocated pages.
    pub fn allocated_count(&self) -> usize {
        self.entries.values().filter(|e| e.allocated).count()
    }

    /// All currently allocated page ids, ascending.
    pub fn allocated_pages(&self) -> Vec<PageId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.allocated)
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocations_are_sequential_with_zero_seed() {
        let mut m = SpaceMap::new();
        let (a, pa) = m.allocate();
        let (b, pb) = m.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert_eq!(pa, Psn::ZERO);
        assert_eq!(pb, Psn::ZERO);
        assert!(m.is_allocated(a) && m.is_allocated(b));
        assert_eq!(m.allocated_count(), 2);
    }

    #[test]
    fn reallocation_seeds_past_final_psn() {
        let mut m = SpaceMap::new();
        let (a, _) = m.allocate();
        m.deallocate(a, Psn(17)).unwrap();
        assert!(!m.is_allocated(a));
        let (a2, seed) = m.allocate();
        assert_eq!(a2, a, "freed id is reused first");
        assert_eq!(seed, Psn(18), "seed continues past the final PSN");
    }

    #[test]
    fn double_free_and_unknown_free_are_errors() {
        let mut m = SpaceMap::new();
        let (a, _) = m.allocate();
        m.deallocate(a, Psn(1)).unwrap();
        assert!(m.deallocate(a, Psn(2)).is_err());
        assert!(m.deallocate(PageId(99), Psn(0)).is_err());
    }

    #[test]
    fn strided_allocation_walks_residue_class() {
        let mut m = SpaceMap::with_stride(2, 4);
        let (a, _) = m.allocate();
        let (b, _) = m.allocate();
        assert_eq!(a, PageId(2));
        assert_eq!(b, PageId(6));
        m.deallocate(a, Psn(9)).unwrap();
        let (a2, seed) = m.allocate();
        assert_eq!(a2, a, "freed id reused before striding on");
        assert_eq!(seed, Psn(10));
        let (c, _) = m.allocate();
        assert_eq!(c, PageId(10));
    }

    #[test]
    fn allocated_pages_lists_only_live() {
        let mut m = SpaceMap::new();
        let (a, _) = m.allocate();
        let (b, _) = m.allocate();
        let (c, _) = m.allocate();
        m.deallocate(b, Psn(4)).unwrap();
        assert_eq!(m.allocated_pages(), vec![a, c]);
    }
}
