//! A policy-free LRU page cache used for both the client page cache and
//! the server buffer pool.
//!
//! The pool never performs I/O itself: when inserting over capacity it
//! *returns* the evicted page and its dirty flag, and the owner (client or
//! server runtime) implements the paper's write-ahead / ship-to-server /
//! replacement-log-record obligations before letting the page go. This
//! keeps the §2 buffer policies (steal, no-force, in-place writes) in the
//! runtimes where they belong.

use crate::page::Page;
use fgl_common::PageId;
use std::collections::HashMap;

/// A page pushed out of the pool by an insertion.
#[derive(Debug)]
pub struct EvictedPage {
    pub page: Page,
    pub dirty: bool,
}

struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

/// Fixed-capacity LRU pool. Not internally synchronized; owners wrap it in
/// their own locks.
pub struct BufferPool {
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    tick: u64,
}

impl BufferPool {
    /// Create a pool holding at most `capacity` pages. The frame table
    /// starts empty and grows on demand — a pool that is never used costs
    /// nothing (important when thousands of simulated clients each own
    /// one); call [`warm`](Self::warm) to pre-size it.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            frames: HashMap::new(),
            capacity,
            tick: 0,
        }
    }

    /// Pre-size the frame table for the full capacity (plus the transient
    /// over-capacity entry `insert` creates before evicting), so the hot
    /// path never rehashes.
    pub fn warm(&mut self) {
        let want = self.capacity + 1;
        self.frames.reserve(want.saturating_sub(self.frames.len()));
    }

    fn touch(&mut self, id: PageId) {
        self.tick += 1;
        if let Some(f) = self.frames.get_mut(&id) {
            f.last_used = self.tick;
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn contains(&self, id: PageId) -> bool {
        self.frames.contains_key(&id)
    }

    /// Read access; refreshes recency.
    pub fn get(&mut self, id: PageId) -> Option<&Page> {
        self.touch(id);
        self.frames.get(&id).map(|f| &f.page)
    }

    /// Read access without refreshing recency (for scans/snapshots).
    pub fn peek(&self, id: PageId) -> Option<&Page> {
        self.frames.get(&id).map(|f| &f.page)
    }

    /// Mutable access; marks the page dirty and refreshes recency.
    pub fn get_mut(&mut self, id: PageId) -> Option<&mut Page> {
        self.touch(id);
        self.frames.get_mut(&id).map(|f| {
            f.dirty = true;
            &mut f.page
        })
    }

    /// Mutable access *without* setting the dirty flag (recovery installs
    /// PSNs on fetched pages without logically dirtying them).
    pub fn get_mut_clean(&mut self, id: PageId) -> Option<&mut Page> {
        self.touch(id);
        self.frames.get_mut(&id).map(|f| &mut f.page)
    }

    /// Is the cached copy dirty?
    pub fn is_dirty(&self, id: PageId) -> bool {
        self.frames.get(&id).map(|f| f.dirty).unwrap_or(false)
    }

    /// Set or clear the dirty flag explicitly (e.g. after shipping a copy
    /// to the server the client copy becomes clean).
    pub fn set_dirty(&mut self, id: PageId, dirty: bool) {
        if let Some(f) = self.frames.get_mut(&id) {
            f.dirty = dirty;
        }
    }

    /// Insert (or replace) a page. Returns the LRU victim if the pool
    /// exceeded capacity. Replacing an existing entry keeps the dirty flag
    /// ORed (an incoming stale clean copy must not wash out dirtiness —
    /// callers replace content deliberately via `get_mut`).
    pub fn insert(&mut self, page: Page, dirty: bool) -> Option<EvictedPage> {
        self.tick += 1;
        let id = page.id();
        let prev_dirty = self.frames.get(&id).map(|f| f.dirty).unwrap_or(false);
        self.frames.insert(
            id,
            Frame {
                page,
                dirty: dirty || prev_dirty,
                last_used: self.tick,
            },
        );
        if self.frames.len() > self.capacity {
            self.evict_lru(Some(id))
        } else {
            None
        }
    }

    /// Remove and return the least-recently-used page, excluding `keep`.
    fn evict_lru(&mut self, keep: Option<PageId>) -> Option<EvictedPage> {
        let victim = self
            .frames
            .iter()
            .filter(|(id, _)| Some(**id) != keep)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(id, _)| *id)?;
        self.remove(victim)
    }

    /// Pick the LRU page satisfying `pred` without removing it.
    pub fn lru_matching(&self, pred: impl Fn(PageId, bool) -> bool) -> Option<PageId> {
        self.frames
            .iter()
            .filter(|(id, f)| pred(**id, f.dirty))
            .min_by_key(|(_, f)| f.last_used)
            .map(|(id, _)| *id)
    }

    /// Remove a page from the pool, returning it.
    pub fn remove(&mut self, id: PageId) -> Option<EvictedPage> {
        self.frames.remove(&id).map(|f| EvictedPage {
            page: f.page,
            dirty: f.dirty,
        })
    }

    /// Drop every frame (models a crash: volatile cache contents are lost).
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// Ids of all cached pages.
    pub fn cached_ids(&self) -> Vec<PageId> {
        self.frames.keys().copied().collect()
    }

    /// Ids of all dirty cached pages.
    pub fn dirty_ids(&self) -> Vec<PageId> {
        self.frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::Psn;

    fn pg(id: u64) -> Page {
        Page::format(256, PageId(id), Psn::ZERO)
    }

    #[test]
    fn insert_get_within_capacity() {
        let mut bp = BufferPool::new(2);
        assert!(bp.insert(pg(1), false).is_none());
        assert!(bp.insert(pg(2), false).is_none());
        assert!(bp.get(PageId(1)).is_some());
        assert!(bp.get(PageId(3)).is_none());
        assert_eq!(bp.len(), 2);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let mut bp = BufferPool::new(2);
        bp.insert(pg(1), false);
        bp.insert(pg(2), false);
        bp.get(PageId(1)); // 2 becomes LRU
        let ev = bp.insert(pg(3), false).expect("eviction");
        assert_eq!(ev.page.id(), PageId(2));
        assert!(bp.contains(PageId(1)) && bp.contains(PageId(3)));
    }

    #[test]
    fn never_evicts_the_just_inserted_page() {
        let mut bp = BufferPool::new(1);
        bp.insert(pg(1), false);
        let ev = bp.insert(pg(2), true).expect("eviction");
        assert_eq!(ev.page.id(), PageId(1));
        assert!(bp.contains(PageId(2)));
    }

    #[test]
    fn dirty_flag_tracking() {
        let mut bp = BufferPool::new(4);
        bp.insert(pg(1), false);
        assert!(!bp.is_dirty(PageId(1)));
        bp.get_mut(PageId(1)).unwrap();
        assert!(bp.is_dirty(PageId(1)));
        bp.set_dirty(PageId(1), false);
        assert!(!bp.is_dirty(PageId(1)));
        // get_mut_clean does not dirty.
        bp.get_mut_clean(PageId(1)).unwrap();
        assert!(!bp.is_dirty(PageId(1)));
    }

    #[test]
    fn reinsert_keeps_dirtiness_sticky() {
        let mut bp = BufferPool::new(4);
        bp.insert(pg(1), true);
        bp.insert(pg(1), false);
        assert!(bp.is_dirty(PageId(1)), "clean reinsert must not wash dirt");
        assert_eq!(bp.len(), 1);
    }

    #[test]
    fn evicted_dirty_page_reported_dirty() {
        let mut bp = BufferPool::new(1);
        bp.insert(pg(1), true);
        let ev = bp.insert(pg(2), false).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn clear_models_crash() {
        let mut bp = BufferPool::new(4);
        bp.insert(pg(1), true);
        bp.insert(pg(2), false);
        bp.clear();
        assert!(bp.is_empty());
        assert!(bp.get(PageId(1)).is_none());
    }

    #[test]
    fn dirty_ids_and_lru_matching() {
        let mut bp = BufferPool::new(4);
        bp.insert(pg(1), true);
        bp.insert(pg(2), false);
        bp.insert(pg(3), true);
        let mut d = bp.dirty_ids();
        d.sort();
        assert_eq!(d, vec![PageId(1), PageId(3)]);
        // Oldest dirty page is 1.
        assert_eq!(bp.lru_matching(|_, dirty| dirty), Some(PageId(1)));
        bp.get(PageId(1));
        assert_eq!(bp.lru_matching(|_, dirty| dirty), Some(PageId(3)));
    }
}
