//! Storage substrate for the `fgl` page-server system: the slotted page
//! format with PSN bookkeeping, the page-copy merge procedure of §2/§3.1,
//! the space allocation map (PSN seeding on allocation, after \[18\]), disk
//! backends, and a policy-free buffer pool used by both the client cache
//! and the server buffer pool.

pub mod bufferpool;
pub mod disk;
pub mod merge;
pub mod page;
pub mod spacemap;

pub use bufferpool::{BufferPool, EvictedPage};
pub use disk::{DiskBackend, DiskStats, FileDisk, MemDisk, SimDisk};
pub use merge::{merge_pages, MergeOutcome};
pub use page::{Page, PAGE_HEADER_SIZE, SLOT_ENTRY_SIZE};
pub use spacemap::SpaceMap;
