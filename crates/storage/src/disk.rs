//! Disk backends for the server's stable database storage.
//!
//! The server writes replaced pages *in place* (§2). A [`DiskBackend`]
//! abstracts over a real file ([`FileDisk`]), a heap-backed store for
//! tests ([`MemDisk`]) and a latency-injecting, I/O-counting wrapper
//! ([`SimDisk`]) used by the experiment harness so that disk costs show up
//! deterministically in measurements.

use crate::page::Page;
use fgl_common::{FglError, PageId, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stable page storage. Implementations must be usable behind `Arc` from
/// multiple threads.
pub trait DiskBackend: Send + Sync {
    /// Read a page; `Ok(None)` when the page has never been written.
    fn read_page(&self, id: PageId) -> Result<Option<Page>>;
    /// Write a page in place.
    fn write_page(&self, page: &Page) -> Result<()>;
    /// Durably sync all previous writes.
    fn sync(&self) -> Result<()>;
    /// Number of pages ever written (highest id + 1 for file backends is
    /// not required; this is informational).
    fn page_count(&self) -> usize;
}

/// Counters maintained by [`SimDisk`].
#[derive(Debug, Default)]
pub struct DiskStats {
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub syncs: AtomicU64,
}

impl DiskStats {
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
            self.syncs.load(Ordering::Relaxed),
        )
    }
}

/// Heap-backed page store.
#[derive(Default)]
pub struct MemDisk {
    pages: Mutex<HashMap<PageId, Vec<u8>>>,
}

impl MemDisk {
    pub fn new() -> Self {
        Self::default()
    }
}

impl DiskBackend for MemDisk {
    fn read_page(&self, id: PageId) -> Result<Option<Page>> {
        match self.pages.lock().get(&id) {
            Some(bytes) => Ok(Some(Page::from_bytes(bytes.clone())?)),
            None => Ok(None),
        }
    }

    fn write_page(&self, page: &Page) -> Result<()> {
        self.pages
            .lock()
            .insert(page.id(), page.as_bytes().to_vec());
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn page_count(&self) -> usize {
        self.pages.lock().len()
    }
}

/// File-backed page store: page `i` lives at byte offset `i * page_size`.
pub struct FileDisk {
    file: Mutex<File>,
    page_size: usize,
    /// Pages known to have been written (sparse files read as zeroes, which
    /// would otherwise decode as corruption rather than absence).
    written: Mutex<HashMap<PageId, ()>>,
}

impl FileDisk {
    /// Open (creating if necessary) the database file at `path`.
    pub fn open(path: &Path, page_size: usize) -> Result<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let disk = FileDisk {
            file: Mutex::new(file),
            page_size,
            written: Mutex::new(HashMap::new()),
        };
        disk.scan_existing()?;
        Ok(disk)
    }

    /// Populate the written-set from an existing file (restart after a
    /// simulated server crash reopens the same file).
    fn scan_existing(&self) -> Result<()> {
        let mut file = self.file.lock();
        let len = file.metadata()?.len();
        let n = (len as usize) / self.page_size;
        let mut buf = vec![0u8; self.page_size];
        let mut written = self.written.lock();
        for i in 0..n {
            file.seek(SeekFrom::Start((i * self.page_size) as u64))?;
            file.read_exact(&mut buf)?;
            if let Ok(p) = Page::from_bytes(buf.clone()) {
                written.insert(p.id(), ());
            }
        }
        Ok(())
    }
}

impl DiskBackend for FileDisk {
    fn read_page(&self, id: PageId) -> Result<Option<Page>> {
        if !self.written.lock().contains_key(&id) {
            return Ok(None);
        }
        let mut file = self.file.lock();
        let off = id.0 * self.page_size as u64;
        file.seek(SeekFrom::Start(off))?;
        let mut buf = vec![0u8; self.page_size];
        file.read_exact(&mut buf)?;
        let page = Page::from_bytes(buf)?;
        if page.id() != id {
            return Err(FglError::Corrupt(format!(
                "page at offset of {id} has id {}",
                page.id()
            )));
        }
        Ok(Some(page))
    }

    fn write_page(&self, page: &Page) -> Result<()> {
        if page.size() != self.page_size {
            return Err(FglError::Protocol(format!(
                "page size {} does not match disk page size {}",
                page.size(),
                self.page_size
            )));
        }
        let mut file = self.file.lock();
        let off = page.id().0 * self.page_size as u64;
        file.seek(SeekFrom::Start(off))?;
        file.write_all(page.as_bytes())?;
        self.written.lock().insert(page.id(), ());
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn page_count(&self) -> usize {
        self.written.lock().len()
    }
}

/// Wrapper adding per-operation latency and counting I/Os.
pub struct SimDisk {
    inner: Arc<dyn DiskBackend>,
    latency: Duration,
    pub stats: DiskStats,
}

impl SimDisk {
    pub fn new(inner: Arc<dyn DiskBackend>, latency: Duration) -> Self {
        SimDisk {
            inner,
            latency,
            stats: DiskStats::default(),
        }
    }

    fn pause(&self) {
        if !self.latency.is_zero() {
            fgl_sched::pause(self.latency);
        }
    }
}

impl DiskBackend for SimDisk {
    fn read_page(&self, id: PageId) -> Result<Option<Page>> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.pause();
        self.inner.read_page(id)
    }

    fn write_page(&self, page: &Page) -> Result<()> {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.pause();
        self.inner.write_page(page)
    }

    fn sync(&self) -> Result<()> {
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        self.pause();
        self.inner.sync()
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::Psn;

    fn sample(id: u64) -> Page {
        let mut p = Page::format(512, PageId(id), Psn::ZERO);
        p.insert_object(format!("page-{id}").as_bytes()).unwrap();
        p
    }

    #[test]
    fn memdisk_roundtrip_and_absence() {
        let d = MemDisk::new();
        assert!(d.read_page(PageId(1)).unwrap().is_none());
        let p = sample(1);
        d.write_page(&p).unwrap();
        let back = d.read_page(PageId(1)).unwrap().unwrap();
        assert_eq!(back.as_bytes(), p.as_bytes());
        assert_eq!(d.page_count(), 1);
    }

    #[test]
    fn filedisk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("fgl-disk-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db-roundtrip.pages");
        let _ = std::fs::remove_file(&path);
        {
            let d = FileDisk::open(&path, 512).unwrap();
            d.write_page(&sample(0)).unwrap();
            d.write_page(&sample(3)).unwrap();
            d.sync().unwrap();
            assert!(d.read_page(PageId(1)).unwrap().is_none());
            let p3 = d.read_page(PageId(3)).unwrap().unwrap();
            assert_eq!(p3.read_object(fgl_common::SlotId(0)).unwrap(), b"page-3");
        }
        // Reopen: previously written pages are found again (crash restart).
        {
            let d = FileDisk::open(&path, 512).unwrap();
            assert!(d.read_page(PageId(0)).unwrap().is_some());
            assert!(d.read_page(PageId(3)).unwrap().is_some());
            assert!(d.read_page(PageId(2)).unwrap().is_none());
            assert_eq!(d.page_count(), 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn filedisk_rejects_wrong_page_size() {
        let dir = std::env::temp_dir().join(format!("fgl-disk-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db-size.pages");
        let _ = std::fs::remove_file(&path);
        let d = FileDisk::open(&path, 512).unwrap();
        let wrong = Page::format(1024, PageId(0), Psn::ZERO);
        assert!(d.write_page(&wrong).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simdisk_counts_operations() {
        let inner = Arc::new(MemDisk::new());
        let d = SimDisk::new(inner, Duration::ZERO);
        d.write_page(&sample(1)).unwrap();
        d.read_page(PageId(1)).unwrap();
        d.read_page(PageId(2)).unwrap();
        d.sync().unwrap();
        assert_eq!(d.stats.snapshot(), (2, 1, 1));
    }
}
