//! Merging two copies of the same page (§2, §3.1).
//!
//! The paper reconciles concurrent client updates to one page by merging
//! the updated *copies* rather than log records or token-serialized
//! versions. Our realization relies on the per-slot PSN bookkeeping of
//! [`crate::page`]: every object (slot) carries the page PSN it was last
//! modified at, and the callback protocol guarantees that PSNs written for
//! the *same object* by different clients are monotone (§2). Hence for
//! each slot the copy with the larger slot PSN holds the newer state, and
//! the merged page takes each object from its winning copy.
//!
//! The merged page PSN is `max(PSN_ours, PSN_theirs) + 1` (§2), strictly
//! greater than both inputs even on ties.

use crate::page::Page;
use fgl_common::{FglError, Psn, Result, SlotId};

/// Statistics describing what a merge did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// PSN installed on the merged page.
    pub merged_psn: Psn,
    /// Slots whose state was taken from the incoming copy.
    pub taken_from_incoming: usize,
    /// Slots whose state was kept from the resident copy.
    pub kept_from_resident: usize,
}

/// Parse an incoming shipped frame into an owned [`Page`] for merging.
///
/// Shipped copies travel the fabric as shared `Arc<[u8]>` frames: the
/// shipping client's `in_transit` stash and every racing callback wave
/// alias one snapshot instead of deep-copying per wave. This is the ship
/// path's single unavoidable copy — the one place the receiving side
/// materializes an owned page from the frame (a `Page` owns its bytes).
/// Callers account the copied bytes to the obs registry
/// (`page_ship_bytes_copied`).
pub fn parse_incoming(bytes: &[u8]) -> Result<Page> {
    Page::from_bytes(bytes.to_vec())
}

/// Merge `incoming` into `resident`, returning the merged page.
///
/// Both copies must be copies of the same page. The merge is symmetric in
/// content (the higher slot PSN wins regardless of direction); on a slot
/// PSN tie the resident state is kept — the protocol guarantees tied
/// versions are identical updates observed via different paths.
pub fn merge_pages(resident: &Page, incoming: &Page) -> Result<(Page, MergeOutcome)> {
    if resident.id() != incoming.id() {
        return Err(FglError::Protocol(format!(
            "merge of different pages: {} vs {}",
            resident.id(),
            incoming.id()
        )));
    }
    if resident.size() != incoming.size() {
        return Err(FglError::Protocol(format!(
            "merge of differently sized copies of {}: {} vs {}",
            resident.id(),
            resident.size(),
            incoming.size()
        )));
    }

    let ours = resident.snapshot_all_slots();
    let theirs = incoming.snapshot_all_slots();
    let max_slots = ours.len().max(theirs.len());

    let merged_psn = Psn::merge(resident.psn(), incoming.psn());
    let mut out = Page::format(resident.size(), resident.id(), Psn::ZERO);
    let mut outcome = MergeOutcome {
        merged_psn,
        taken_from_incoming: 0,
        kept_from_resident: 0,
    };

    for i in 0..max_slots {
        let slot = SlotId(i as u16);
        let a = ours.get(i);
        let b = theirs.get(i);
        // (psn, live, bytes) winner selection; resident wins ties.
        let (winner_psn, live, bytes, from_incoming) = match (a, b) {
            (Some((_, pa, la, da)), Some((_, pb, lb, db))) => {
                // Protocol invariant (§2): PSNs written for the same
                // object are monotone across clients, so two copies
                // carrying the same slot PSN must carry the same state.
                debug_assert!(
                    pa != pb || (la == lb && da == db) || pa == &Psn::ZERO,
                    "PSN monotonicity violated on {} slot {:?}: psn {:?} with diverging content",
                    resident.id(),
                    slot,
                    pa
                );
                if pb > pa {
                    (*pb, *lb, db, true)
                } else {
                    (*pa, *la, da, false)
                }
            }
            (Some((_, pa, la, da)), None) => (*pa, *la, da, false),
            (None, Some((_, pb, lb, db))) => (*pb, *lb, db, true),
            (None, None) => unreachable!("i < max_slots"),
        };
        if from_incoming {
            outcome.taken_from_incoming += 1;
        } else {
            outcome.kept_from_resident += 1;
        }
        let data = if live { Some(bytes.as_slice()) } else { None };
        out.install_object(slot, data, winner_psn)?;
    }

    out.set_psn(merged_psn);
    Ok((out, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::PageId;

    fn base_page() -> Page {
        let mut p = Page::format(1024, PageId(9), Psn::ZERO);
        p.insert_object(b"AAAA").unwrap(); // slot 0, psn 1
        p.insert_object(b"BBBB").unwrap(); // slot 1, psn 2
        p
    }

    #[test]
    fn merge_disjoint_object_updates_takes_both() {
        let base = base_page();
        // Client 1 updates slot 0; client 2 updates slot 1. Both started
        // from the same base copy (psn 2).
        let mut c1 = base.clone();
        c1.write_object(SlotId(0), b"aaaa").unwrap(); // psn 3, slot0 psn 3
        let mut c2 = base.clone();
        c2.write_object(SlotId(1), b"bbbb").unwrap(); // psn 3, slot1 psn 3

        let (m, out) = merge_pages(&c1, &c2).unwrap();
        assert_eq!(m.read_object(SlotId(0)).unwrap(), b"aaaa");
        assert_eq!(m.read_object(SlotId(1)).unwrap(), b"bbbb");
        // Both copies had PSN 3 -> merged PSN 4 (strictly increasing).
        assert_eq!(m.psn(), Psn(4));
        assert_eq!(out.merged_psn, Psn(4));
        assert_eq!(out.taken_from_incoming, 1);
        assert_eq!(out.kept_from_resident, 1);
    }

    #[test]
    fn merge_is_content_symmetric() {
        let base = base_page();
        let mut c1 = base.clone();
        c1.write_object(SlotId(0), b"aaaa").unwrap();
        let mut c2 = base.clone();
        c2.write_object(SlotId(1), b"bbbb").unwrap();

        let (m12, _) = merge_pages(&c1, &c2).unwrap();
        let (m21, _) = merge_pages(&c2, &c1).unwrap();
        assert_eq!(
            m12.read_object(SlotId(0)).unwrap(),
            m21.read_object(SlotId(0)).unwrap()
        );
        assert_eq!(
            m12.read_object(SlotId(1)).unwrap(),
            m21.read_object(SlotId(1)).unwrap()
        );
        assert_eq!(m12.psn(), m21.psn());
    }

    #[test]
    fn newer_version_of_same_object_wins() {
        let base = base_page();
        // Stale copy: the base itself (slot0 psn 1). Fresh copy: two more
        // updates to slot 0.
        let mut fresh = base.clone();
        fresh.write_object(SlotId(0), b"x1x1").unwrap();
        fresh.write_object(SlotId(0), b"x2x2").unwrap();

        let (m, _) = merge_pages(&base, &fresh).unwrap();
        assert_eq!(m.read_object(SlotId(0)).unwrap(), b"x2x2");
        let (m2, _) = merge_pages(&fresh, &base).unwrap();
        assert_eq!(m2.read_object(SlotId(0)).unwrap(), b"x2x2");
    }

    #[test]
    fn deletion_propagates_by_psn() {
        let base = base_page();
        let mut deleter = base.clone();
        deleter.free_object(SlotId(0)).unwrap(); // dead at psn 3
        let (m, _) = merge_pages(&base, &deleter).unwrap();
        assert!(!m.slot_is_live(SlotId(0)));
        assert!(m.slot_is_live(SlotId(1)));
    }

    #[test]
    fn insertion_in_one_copy_survives() {
        let base = base_page();
        let mut inserter = base.clone();
        let s = inserter.insert_object(b"new!").unwrap();
        let (m, _) = merge_pages(&base, &inserter).unwrap();
        assert_eq!(m.read_object(s).unwrap(), b"new!");
        assert_eq!(m.live_count(), 3);
    }

    #[test]
    fn merge_same_copy_still_bumps_psn() {
        let base = base_page();
        let (m, _) = merge_pages(&base, &base.clone()).unwrap();
        assert_eq!(m.psn(), Psn(base.psn().as_u64() + 1));
        assert_eq!(m.read_object(SlotId(0)).unwrap(), b"AAAA");
    }

    #[test]
    fn parse_incoming_round_trips_a_shared_frame() {
        let page = base_page();
        let frame: std::sync::Arc<[u8]> = std::sync::Arc::from(page.as_bytes());
        let parsed = parse_incoming(&frame).unwrap();
        assert_eq!(parsed.id(), page.id());
        assert_eq!(parsed.psn(), page.psn());
        assert_eq!(parsed.read_object(SlotId(0)).unwrap(), b"AAAA");
    }

    #[test]
    fn merging_different_pages_is_rejected() {
        let a = Page::format(1024, PageId(1), Psn::ZERO);
        let b = Page::format(1024, PageId(2), Psn::ZERO);
        assert!(merge_pages(&a, &b).is_err());
        let c = Page::format(2048, PageId(1), Psn::ZERO);
        assert!(merge_pages(&a, &c).is_err());
    }

    #[test]
    fn chained_merges_remain_monotone() {
        // Simulates the callback ping-pong: merge PSNs must strictly
        // increase across an arbitrary chain.
        let mut cur = base_page();
        let mut last = cur.psn();
        for i in 0..20u8 {
            let mut other = cur.clone();
            other.write_object(SlotId((i % 2) as u16), &[i; 4]).unwrap();
            let (m, _) = merge_pages(&cur, &other).unwrap();
            assert!(m.psn() > last);
            last = m.psn();
            cur = m;
        }
    }
}
