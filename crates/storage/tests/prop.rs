//! Randomized tests for the page format and the merge procedure, driven
//! by the in-tree deterministic PRNG so each case replays from its seed.

use fgl_common::rng::DetRng;
use fgl_common::{PageId, Psn, SlotId};
use fgl_storage::merge::merge_pages;
use fgl_storage::page::Page;

/// A random page operation.
#[derive(Clone, Debug)]
enum PageOp {
    Insert(Vec<u8>),
    Overwrite(usize, Vec<u8>),
    Free(usize),
    Resize(usize, usize),
    Compact,
}

fn random_bytes(rng: &mut DetRng, lo: usize, hi: usize) -> Vec<u8> {
    let mut buf = vec![0u8; rng.range_usize(lo, hi)];
    rng.fill_bytes(&mut buf);
    buf
}

fn random_op(rng: &mut DetRng) -> PageOp {
    match rng.gen_range(5) {
        0 => PageOp::Insert(random_bytes(rng, 1, 80)),
        1 => PageOp::Overwrite(rng.next_u64() as usize, random_bytes(rng, 1, 80)),
        2 => PageOp::Free(rng.next_u64() as usize),
        3 => PageOp::Resize(rng.next_u64() as usize, rng.range_usize(1, 80)),
        _ => PageOp::Compact,
    }
}

fn random_ops(rng: &mut DetRng, max_len: usize) -> Vec<PageOp> {
    let len = rng.range_usize(1, max_len);
    (0..len).map(|_| random_op(rng)).collect()
}

/// Reference model: slot -> bytes.
fn apply_model(model: &mut Vec<Option<Vec<u8>>>, page: &mut Page, op: &PageOp) {
    match op {
        PageOp::Insert(data) => {
            if page.insert_object(data).is_ok() {
                let slot = model.iter().position(|s| s.is_none());
                match slot {
                    Some(i) => model[i] = Some(data.clone()),
                    None => model.push(Some(data.clone())),
                }
            }
        }
        PageOp::Overwrite(i, data) => {
            let live: Vec<usize> = model
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                return;
            }
            let idx = live[i % live.len()];
            let mut d = data.clone();
            d.resize(model[idx].as_ref().unwrap().len(), 0);
            if page.write_object(SlotId(idx as u16), &d).is_ok() {
                model[idx] = Some(d);
            }
        }
        PageOp::Free(i) => {
            let live: Vec<usize> = model
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                return;
            }
            let idx = live[i % live.len()];
            if page.free_object(SlotId(idx as u16)).is_ok() {
                model[idx] = None;
            }
        }
        PageOp::Resize(i, n) => {
            let live: Vec<usize> = model
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                return;
            }
            let idx = live[i % live.len()];
            if page.resize_object(SlotId(idx as u16), *n).is_ok() {
                let mut d = model[idx].take().unwrap();
                d.resize(*n, 0);
                model[idx] = Some(d);
            }
        }
        PageOp::Compact => page.compact(),
    }
}

/// The page tracks a simple slot->bytes model under arbitrary operation
/// sequences, and survives a codec roundtrip.
#[test]
fn page_matches_model() {
    for case in 0..256u64 {
        let mut rng = DetRng::new(0x9A6E_0001 ^ case);
        let ops = random_ops(&mut rng, 60);
        let mut page = Page::format(2048, PageId(7), Psn::ZERO);
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        for op in &ops {
            apply_model(&mut model, &mut page, op);
        }
        // Codec roundtrip preserves everything.
        let page = Page::from_bytes(page.into_bytes()).unwrap();
        for (i, expected) in model.iter().enumerate() {
            let got = page.read_object(SlotId(i as u16)).ok().map(|b| b.to_vec());
            assert_eq!(&got, expected, "case {case}, slot {i}");
        }
        assert_eq!(
            page.live_count(),
            model.iter().filter(|s| s.is_some()).count()
        );
    }
}

/// PSN strictly increases with every successful mutation.
#[test]
fn psn_monotone() {
    for case in 0..256u64 {
        let mut rng = DetRng::new(0x9A6E_0002 ^ (case << 8));
        let ops = random_ops(&mut rng, 40);
        let mut page = Page::format(2048, PageId(7), Psn::ZERO);
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        let mut last = page.psn();
        for op in &ops {
            apply_model(&mut model, &mut page, op);
            assert!(page.psn() >= last, "case {case}");
            last = page.psn();
        }
    }
}

/// Merging two divergent copies is content-symmetric and the merged PSN
/// strictly exceeds both inputs.
#[test]
fn merge_symmetric() {
    for case in 0..256u64 {
        let mut rng = DetRng::new(0x3E46E ^ (case << 16));
        let seed_objs: Vec<Vec<u8>> = (0..rng.range_usize(2, 8))
            .map(|_| random_bytes(&mut rng, 4, 32))
            .collect();
        let a_ops: Vec<(usize, Vec<u8>)> = (0..rng.range_usize(0, 8))
            .map(|_| (rng.next_u64() as usize, random_bytes(&mut rng, 4, 32)))
            .collect();
        let b_ops: Vec<(usize, Vec<u8>)> = (0..rng.range_usize(0, 8))
            .map(|_| (rng.next_u64() as usize, random_bytes(&mut rng, 4, 32)))
            .collect();

        let mut base = Page::format(2048, PageId(3), Psn::ZERO);
        let slots: Vec<SlotId> = seed_objs
            .iter()
            .map(|d| base.insert_object(d).unwrap())
            .collect();
        // Two clients overwrite disjoint slot sets (even/odd), as the
        // locking protocol guarantees.
        let mut a = base.clone();
        for (i, d) in &a_ops {
            let s = slots[(i % slots.len()) & !1usize]; // even slots
            let mut dd = d.clone();
            dd.resize(a.read_object(s).unwrap().len(), 0);
            a.write_object(s, &dd).unwrap();
        }
        let mut b = base.clone();
        for (i, d) in &b_ops {
            let idx = (i % slots.len()) | 1usize; // odd slots
            if idx >= slots.len() {
                continue;
            }
            let s = slots[idx];
            let mut dd = d.clone();
            dd.resize(b.read_object(s).unwrap().len(), 0);
            b.write_object(s, &dd).unwrap();
        }
        let (m1, _) = merge_pages(&a, &b).unwrap();
        let (m2, _) = merge_pages(&b, &a).unwrap();
        for s in &slots {
            assert_eq!(m1.read_object(*s).unwrap(), m2.read_object(*s).unwrap());
        }
        assert!(m1.psn() > a.psn() && m1.psn() > b.psn());
        assert_eq!(m1.psn(), m2.psn());
    }
}

/// Merging a copy with a stale ancestor preserves the newest content.
#[test]
fn merge_with_stale_ancestor_keeps_newest() {
    for case in 0..256u64 {
        let mut rng = DetRng::new(0x3E46F ^ (case << 24));
        let objs: Vec<Vec<u8>> = (0..rng.range_usize(1, 6))
            .map(|_| random_bytes(&mut rng, 4, 32))
            .collect();
        let updates: Vec<(usize, Vec<u8>)> = (0..rng.range_usize(1, 6))
            .map(|_| (rng.next_u64() as usize, random_bytes(&mut rng, 4, 32)))
            .collect();

        let mut base = Page::format(2048, PageId(3), Psn::ZERO);
        let slots: Vec<SlotId> = objs
            .iter()
            .map(|d| base.insert_object(d).unwrap())
            .collect();
        let ancestor = base.clone();
        for (i, d) in &updates {
            let s = slots[i % slots.len()];
            let mut dd = d.clone();
            dd.resize(base.read_object(s).unwrap().len(), 0);
            base.write_object(s, &dd).unwrap();
        }
        let (m, _) = merge_pages(&base, &ancestor).unwrap();
        for s in &slots {
            assert_eq!(m.read_object(*s).unwrap(), base.read_object(*s).unwrap());
        }
    }
}

/// `Page::from_bytes` never panics on arbitrary garbage — it either
/// rejects the buffer or yields a page whose reads are all safe.
#[test]
fn from_bytes_never_panics_on_garbage() {
    for case in 0..512u64 {
        let mut rng = DetRng::new(0x6A4BA6E ^ case);
        let bytes = random_bytes(&mut rng, 0, 600);
        if let Ok(page) = Page::from_bytes(bytes) {
            for i in 0..page.slot_count() {
                let _ = page.read_object(SlotId(i));
            }
            let _ = page.snapshot_all_slots();
            let _ = page.total_free();
        }
    }
}

/// Corrupting any single byte of a valid page either keeps it readable
/// or fails decode — never a panic or out-of-bounds read.
#[test]
fn single_byte_corruption_is_contained() {
    for case in 0..512u64 {
        let mut rng = DetRng::new(0xF11B ^ (case << 32));
        let mut p = Page::format(512, PageId(1), Psn::ZERO);
        p.insert_object(b"victim-one").unwrap();
        p.insert_object(b"victim-two").unwrap();
        let mut bytes = p.into_bytes();
        let i = rng.range_usize(0, bytes.len());
        let xor = 1 + rng.gen_range(255) as u8;
        bytes[i] ^= xor;
        if let Ok(page) = Page::from_bytes(bytes) {
            for s in 0..page.slot_count() {
                let _ = page.read_object(SlotId(s));
            }
        }
    }
}
