//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a local crate with the same name exposing the (small) API
//! subset the codebase uses — `Mutex`, `RwLock` and `Condvar` with
//! guard-returning, non-poisoning `lock()`/`read()`/`write()` — backed
//! by `std::sync`. Poisoned locks are recovered into their inner guard:
//! parking_lot has no poisoning, and the panic that poisoned the lock
//! already aborts the affected test/thread, so propagating state is the
//! faithful translation.
//!
//! **Green-task awareness.** When the caller is a green task of the
//! `fgl-sched` scheduler (the simulator's `event` scheduler), blocking
//! here must never pin an OS worker thread:
//! - `lock()`/`read()`/`write()` spin on the `try_` variant and yield
//!   the *task* between rounds, so a worker whose lock holder is parked
//!   in the timer wheel keeps draining the run queue;
//! - `Condvar::wait`/`wait_for` register a task unparker, release the
//!   mutex, park the task, and re-acquire on wake — `notify_one`/
//!   `notify_all` wake both OS-thread waiters and task waiters.
//!
//! On a plain OS thread every primitive behaves exactly as before, so
//! the `threads` scheduler is untouched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

/// Try-acquire rounds between task yields while spinning on a held lock
/// from a green task.
const SPIN_ROUNDS: usize = 32;

/// A mutual-exclusion primitive. `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the `Option` dance lets [`Condvar::wait_for`]
/// move the inner std guard out and re-acquire it after a task park, and
/// the `lock` back-reference is what it re-acquires from.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

fn recover<T: ?Sized>(r: sync::LockResult<sync::MutexGuard<'_, T>>) -> sync::MutexGuard<'_, T> {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Acquire `m` without ever blocking the OS thread: spin on `try_lock`,
/// yielding the green task between rounds. Only called in task context.
fn task_lock<T: ?Sized>(m: &sync::Mutex<T>) -> sync::MutexGuard<'_, T> {
    loop {
        for _ in 0..SPIN_ROUNDS {
            match m.try_lock() {
                Ok(g) => return g,
                Err(TryLockError::Poisoned(p)) => return p.into_inner(),
                Err(TryLockError::WouldBlock) => std::hint::spin_loop(),
            }
        }
        fgl_sched::yield_now();
    }
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn raw_lock(&self) -> sync::MutexGuard<'_, T> {
        if fgl_sched::on_task() {
            task_lock(&self.inner)
        } else {
            recover(self.inner.lock())
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            lock: self,
            inner: Some(self.raw_lock()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
            }),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if fgl_sched::on_task() {
            loop {
                for _ in 0..SPIN_ROUNDS {
                    match self.inner.try_read() {
                        Ok(g) => return RwLockReadGuard { inner: g },
                        Err(TryLockError::Poisoned(p)) => {
                            return RwLockReadGuard {
                                inner: p.into_inner(),
                            }
                        }
                        Err(TryLockError::WouldBlock) => std::hint::spin_loop(),
                    }
                }
                fgl_sched::yield_now();
            }
        }
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if fgl_sched::on_task() {
            loop {
                for _ in 0..SPIN_ROUNDS {
                    match self.inner.try_write() {
                        Ok(g) => return RwLockWriteGuard { inner: g },
                        Err(TryLockError::Poisoned(p)) => {
                            return RwLockWriteGuard {
                                inner: p.into_inner(),
                            }
                        }
                        Err(TryLockError::WouldBlock) => std::hint::spin_loop(),
                    }
                }
                fgl_sched::yield_now();
            }
        }
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s. OS-thread waiters
/// block on the inner `std::sync::Condvar`; green-task waiters park
/// their task with an unparker registered here. Notification wakes both
/// populations.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
    task_waiters: sync::Mutex<Vec<TaskWaiter>>,
    next_waiter: AtomicU64,
}

struct TaskWaiter {
    id: u64,
    unparker: fgl_sched::Unparker,
}

impl std::fmt::Debug for TaskWaiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskWaiter").field("id", &self.id).finish()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
            task_waiters: sync::Mutex::new(Vec::new()),
            next_waiter: AtomicU64::new(0),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
        let waiter = {
            let mut w = recover(self.task_waiters.lock());
            if w.is_empty() {
                None
            } else {
                Some(w.remove(0))
            }
        };
        if let Some(w) = waiter {
            w.unparker.unpark();
        }
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
        let drained: Vec<TaskWaiter> = std::mem::take(&mut *recover(self.task_waiters.lock()));
        for w in drained {
            w.unparker.unpark();
        }
    }

    /// Register the calling task, drop the mutex, park until notified,
    /// re-acquire. Returns once parked-and-woken at least once; spurious
    /// wakeups are possible, exactly as with the std condvar.
    fn task_wait<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        unparker: fgl_sched::Unparker,
        deadline: Option<Instant>,
    ) {
        let id = self.next_waiter.fetch_add(1, Ordering::Relaxed);
        recover(self.task_waiters.lock()).push(TaskWaiter { id, unparker });
        // Registration happened while still holding the user mutex, so a
        // notifier that mutates state under it cannot slip between our
        // condition check and the park.
        let inner = guard.inner.take().expect("guard present");
        drop(inner);
        fgl_sched::park_until(deadline);
        recover(self.task_waiters.lock()).retain(|w| w.id != id);
        guard.inner = Some(guard.lock.raw_lock());
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(unparker) = fgl_sched::current_unparker() {
            self.task_wait(guard, unparker, None);
            return;
        }
        let inner = guard.inner.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if let Some(unparker) = fgl_sched::current_unparker() {
            let deadline = Instant::now() + timeout;
            self.task_wait(guard, unparker, Some(deadline));
            // Conservative: a wake racing the deadline reports a timeout.
            // Every call site loops on its condition, and the std condvar
            // makes the same call in that race.
            return WaitTimeoutResult {
                timed_out: Instant::now() >= deadline,
            };
        }
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let _a = l.read();
            let _b = l.read();
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_cross_thread_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(2));
            if r.timed_out() {
                break;
            }
        }
        assert!(*done);
        h.join().unwrap();
    }

    #[test]
    fn poisoned_mutex_recovers_value() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    // ---- green-task integration ---------------------------------------------

    fn boxed<'env>(f: impl FnOnce() + Send + 'env) -> Box<dyn FnOnce() + Send + 'env> {
        Box::new(f)
    }

    #[test]
    fn tasks_contend_on_mutex_without_blocking_workers() {
        if !fgl_sched::supported() {
            return;
        }
        let m = Mutex::new(0u64);
        // 64 tasks on 2 workers; each holds the lock across a timer park,
        // which only works if contenders yield instead of OS-blocking.
        let jobs = (0..64)
            .map(|_| {
                let m = &m;
                boxed(move || {
                    let mut g = m.lock();
                    fgl_sched::pause(Duration::from_micros(100));
                    *g += 1;
                })
            })
            .collect();
        fgl_sched::run_scoped(2, jobs);
        assert_eq!(m.into_inner(), 64);
    }

    #[test]
    fn condvar_between_tasks() {
        if !fgl_sched::supported() {
            return;
        }
        let state = Mutex::new(0u32);
        let cv = Condvar::new();
        let (state, cv) = (&state, &cv);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            boxed(move || {
                let mut g = state.lock();
                while *g != 1 {
                    cv.wait(&mut g);
                }
                *g = 2;
                drop(g);
                cv.notify_all();
            }),
            boxed(move || {
                fgl_sched::pause(Duration::from_millis(1));
                *state.lock() = 1;
                cv.notify_all();
                let mut g = state.lock();
                while *g != 2 {
                    let r = cv.wait_for(&mut g, Duration::from_secs(5));
                    if r.timed_out() {
                        panic!("handshake timed out");
                    }
                }
            }),
        ];
        fgl_sched::run_scoped(2, jobs);
        assert_eq!(*state.lock(), 2);
    }

    #[test]
    fn task_wait_for_times_out() {
        if !fgl_sched::supported() {
            return;
        }
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (m, cv) = (&m, &cv);
        fgl_sched::run_scoped(
            2,
            vec![boxed(move || {
                let mut g = m.lock();
                let start = Instant::now();
                let r = cv.wait_for(&mut g, Duration::from_millis(5));
                assert!(r.timed_out());
                assert!(start.elapsed() >= Duration::from_millis(5));
            })],
        );
    }

    #[test]
    fn notify_from_plain_thread_wakes_task_waiter() {
        if !fgl_sched::supported() {
            return;
        }
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        fgl_sched::run_scoped(
            2,
            vec![boxed(move || {
                let mut done = m.lock();
                while !*done {
                    let r = cv.wait_for(&mut done, Duration::from_secs(5));
                    if r.timed_out() {
                        panic!("never notified");
                    }
                }
            })],
        );
        h.join().unwrap();
    }
}
