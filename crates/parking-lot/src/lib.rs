//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a local crate with the same name exposing the (small) API
//! subset the codebase uses — `Mutex`, `RwLock` and `Condvar` with
//! guard-returning, non-poisoning `lock()`/`read()`/`write()` — backed
//! by `std::sync`. Poisoned locks are recovered into their inner guard:
//! parking_lot has no poisoning, and the panic that poisoned the lock
//! already aborts the affected test/thread, so propagating state is the
//! faithful translation.

use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive. `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the `Option` dance lets [`Condvar::wait_for`]
/// move the inner std guard through `std::sync::Condvar::wait_timeout`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let _a = l.read();
            let _b = l.read();
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_cross_thread_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(2));
            if r.timed_out() {
                break;
            }
        }
        assert!(*done);
        h.join().unwrap();
    }

    #[test]
    fn poisoned_mutex_recovers_value() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
