//! Focused tests of server restart recovery (§3.4): DCT reconstruction
//! via Property 2 (replacement records matched against on-disk PSNs), and
//! the GLM rebuild from reported client lock tables.

use fgl_common::{ClientId, Lsn, ObjectId, PageId, Psn, SystemConfig, TxnId};
use fgl_locks::glm::CallbackKind;
use fgl_locks::mode::{LockTarget, ObjMode};
use fgl_net::peer::{CallbackOutcome, ClientPeer, ClientStateReport, RecoveredPageOutcome};
use fgl_net::stats::NetSim;
use fgl_server::runtime::ServerCore;
use fgl_storage::disk::MemDisk;
use fgl_storage::page::Page;
use fgl_wal::records::DptEntry;
use parking_lot::Mutex;
use std::sync::Arc;

/// Scriptable peer: serves a fixed state report and replays nothing (its
/// `recover_page` returns the base unchanged).
struct ScriptedPeer {
    id: ClientId,
    report: Mutex<ClientStateReport>,
    cached_copies: Mutex<Vec<(PageId, Vec<u8>)>>,
}

impl ClientPeer for ScriptedPeer {
    fn client_id(&self) -> ClientId {
        self.id
    }
    fn deliver_callback(&self, _: CallbackKind) -> CallbackOutcome {
        CallbackOutcome::Done {
            retained: vec![],
            page_copy: None,
        }
    }
    fn notify_page_flushed(&self, _: PageId) {}
    fn report_state(&self) -> ClientStateReport {
        self.report.lock().clone()
    }
    fn callback_list_for(&self, _: PageId, _: ClientId, _: Lsn) -> Vec<(ObjectId, Psn)> {
        vec![]
    }
    fn ship_cached_page(&self, page: PageId) -> Option<std::sync::Arc<[u8]>> {
        self.cached_copies
            .lock()
            .iter()
            .find(|(p, _)| *p == page)
            .map(|(_, b)| b.as_slice().into())
    }
    fn recover_page(
        &self,
        _: PageId,
        base: Vec<u8>,
        _: Psn,
        _: Vec<(ObjectId, Psn)>,
    ) -> RecoveredPageOutcome {
        RecoveredPageOutcome::Done(base)
    }
}

fn server() -> Arc<ServerCore> {
    let net = Arc::new(NetSim::new(std::time::Duration::ZERO));
    ServerCore::new(SystemConfig::default(), net, Arc::new(MemDisk::new()))
}

#[test]
fn property2_dct_psns_rebuilt_from_matching_replacement_record() {
    // Build real server state: a page updated by one client, flushed
    // (replacement record forced, §3.1), then crash and restart with a
    // client whose DPT still references the page but does not cache it.
    let s = server();
    let state = Arc::new(Mutex::new(ClientStateReport::default()));
    let peer = Arc::new(ScriptedPeer {
        id: ClientId(1),
        report: Mutex::new(ClientStateReport::default()),
        cached_copies: Mutex::new(vec![]),
    });
    s.register_client(peer.clone());
    let _ = state;

    // Client 1 allocates, updates and ships the page; the server forces it.
    let bytes = s
        .allocate_page(ClientId(1), TxnId::compose(ClientId(1), 1))
        .unwrap();
    let mut copy = Page::from_bytes(bytes).unwrap();
    let slot = copy.insert_object(b"prop2-payload").unwrap();
    let shipped_psn = copy.psn();
    let pid = copy.id();
    s.ship_page(ClientId(1), copy.as_bytes().into(), true)
        .unwrap();
    s.flush_page(pid).unwrap();

    // Crash: pool/DCT/GLM gone. The client (operational) reports a DPT
    // entry for the page and no cached copy — the §3.4 candidate set.
    s.crash();
    *peer.report.lock() = ClientStateReport {
        dpt: vec![DptEntry {
            page: pid,
            redo_lsn: Lsn(1),
        }],
        cached_pages: vec![],
        locks: vec![LockTarget::Object(ObjectId::new(pid, slot), ObjMode::X)],
    };
    let report = s.restart_recovery().unwrap();
    assert_eq!(report.pages_recovered, 1);
    assert_eq!(report.recovery_units, 1);

    // Property 2: the replacement record whose PSN matches the on-disk
    // PSN identifies the client updates present on disk — the rebuilt DCT
    // must vouch for client 1 at (at least) the shipped/merged PSN.
    let (bytes, dct_psn) = s.fetch_page(ClientId(1), pid).unwrap();
    let disk = Page::from_bytes(bytes).unwrap();
    assert_eq!(disk.read_object(slot).unwrap(), b"prop2-payload");
    let vouched = dct_psn.expect("rebuilt DCT must have a PSN for client 1");
    assert!(
        vouched >= shipped_psn,
        "Property 2 PSN {vouched:?} must cover the shipped {shipped_psn:?}"
    );
}

#[test]
fn restart_pulls_cached_dpt_pages_from_operational_clients() {
    // §3.4 step 4: pages a client still caches are simply shipped and
    // merged — no replay unit is created for them.
    let s = server();
    let peer = Arc::new(ScriptedPeer {
        id: ClientId(1),
        report: Mutex::new(ClientStateReport::default()),
        cached_copies: Mutex::new(vec![]),
    });
    s.register_client(peer.clone());
    let bytes = s
        .allocate_page(ClientId(1), TxnId::compose(ClientId(1), 1))
        .unwrap();
    let mut copy = Page::from_bytes(bytes).unwrap();
    let slot = copy.insert_object(b"cached-state").unwrap();
    let pid = copy.id();
    // The client never ships; the server crashes with a virgin pool copy.
    s.crash();
    *peer.report.lock() = ClientStateReport {
        dpt: vec![DptEntry {
            page: pid,
            redo_lsn: Lsn(1),
        }],
        cached_pages: vec![(pid, copy.psn())],
        locks: vec![LockTarget::Object(ObjectId::new(pid, slot), ObjMode::X)],
    };
    peer.cached_copies
        .lock()
        .push((pid, copy.as_bytes().to_vec()));
    let report = s.restart_recovery().unwrap();
    assert_eq!(report.recovery_units, 0, "cached pages need no replay");
    let (bytes, _) = s.fetch_page(ClientId(1), pid).unwrap();
    let merged = Page::from_bytes(bytes).unwrap();
    assert_eq!(merged.read_object(slot).unwrap(), b"cached-state");
}

#[test]
fn restart_rebuilds_glm_from_reported_lock_tables() {
    let s = server();
    let peer = Arc::new(ScriptedPeer {
        id: ClientId(1),
        report: Mutex::new(ClientStateReport::default()),
        cached_copies: Mutex::new(vec![]),
    });
    s.register_client(peer.clone());
    let bytes = s
        .allocate_page(ClientId(1), TxnId::compose(ClientId(1), 1))
        .unwrap();
    let page = Page::from_bytes(bytes).unwrap();
    let pid = page.id();
    s.ship_page(ClientId(1), page.as_bytes().into(), true)
        .unwrap();
    s.flush_page(pid).unwrap();
    s.crash();
    let obj = ObjectId::new(pid, fgl_common::SlotId(0));
    *peer.report.lock() = ClientStateReport {
        dpt: vec![],
        cached_pages: vec![],
        locks: vec![LockTarget::Object(obj, ObjMode::X)],
    };
    s.restart_recovery().unwrap();
    // A second client's conflicting request must trigger the callback
    // protocol against the reinstalled lock.
    let peer2 = Arc::new(ScriptedPeer {
        id: ClientId(2),
        report: Mutex::new(ClientStateReport::default()),
        cached_copies: Mutex::new(vec![]),
    });
    s.register_client(peer2);
    match s
        .lock(
            ClientId(2),
            TxnId::compose(ClientId(2), 1),
            LockTarget::Object(obj, ObjMode::X),
            None,
        )
        .unwrap()
    {
        fgl_server::runtime::LockResponse::Granted { .. } => {
            // Granted only because ScriptedPeer 1 instantly complied with
            // the release callback — which proves the lock existed.
        }
        fgl_server::runtime::LockResponse::Wait(w) => {
            assert!(w.wait(std::time::Duration::from_secs(1)).is_some());
        }
    }
}
