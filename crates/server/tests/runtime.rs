//! Server-runtime behaviour tests driven through a scriptable fake
//! client peer: DCT lifecycle, replacement logging, flush notification
//! fan-out, crash/restart edges — without pulling in the full client.

use fgl_common::{ClientId, Lsn, ObjectId, PageId, Psn, SystemConfig, TxnId};
use fgl_locks::glm::CallbackKind;
use fgl_locks::mode::{LockTarget, ObjMode};
use fgl_net::peer::{CallbackOutcome, ClientPeer, ClientStateReport, RecoveredPageOutcome};
use fgl_net::stats::NetSim;
use fgl_server::runtime::{LockResponse, ServerCore};
use fgl_storage::disk::MemDisk;
use fgl_storage::page::Page;
use parking_lot::Mutex;
use std::sync::Arc;

/// A peer that always complies with callbacks and records what it saw.
#[derive(Default)]
struct FakePeerState {
    callbacks: Vec<CallbackKind>,
    flushes: Vec<PageId>,
}

struct FakePeer {
    id: ClientId,
    state: Arc<Mutex<FakePeerState>>,
}

impl ClientPeer for FakePeer {
    fn client_id(&self) -> ClientId {
        self.id
    }
    fn deliver_callback(&self, kind: CallbackKind) -> CallbackOutcome {
        self.state.lock().callbacks.push(kind);
        CallbackOutcome::Done {
            retained: vec![],
            page_copy: None,
        }
    }
    fn notify_page_flushed(&self, page: PageId) {
        self.state.lock().flushes.push(page);
    }
    fn report_state(&self) -> ClientStateReport {
        ClientStateReport::default()
    }
    fn callback_list_for(&self, _: PageId, _: ClientId, _: Lsn) -> Vec<(ObjectId, Psn)> {
        vec![]
    }
    fn ship_cached_page(&self, _: PageId) -> Option<std::sync::Arc<[u8]>> {
        None
    }
    fn recover_page(
        &self,
        _: PageId,
        base: Vec<u8>,
        _: Psn,
        _: Vec<(ObjectId, Psn)>,
    ) -> RecoveredPageOutcome {
        RecoveredPageOutcome::Done(base)
    }
}

fn server() -> Arc<ServerCore> {
    let net = Arc::new(NetSim::new(std::time::Duration::ZERO));
    ServerCore::new(SystemConfig::default(), net, Arc::new(MemDisk::new()))
}

fn register(server: &Arc<ServerCore>, id: u32) -> Arc<Mutex<FakePeerState>> {
    let state = Arc::new(Mutex::new(FakePeerState::default()));
    server.register_client(Arc::new(FakePeer {
        id: ClientId(id),
        state: state.clone(),
    }));
    state
}

fn txn(c: u32, n: u32) -> TxnId {
    TxnId::compose(ClientId(c), n)
}

#[test]
fn allocate_grants_page_exclusively_and_seeds_dct() {
    let s = server();
    let _p1 = register(&s, 1);
    let bytes = s.allocate_page(ClientId(1), txn(1, 1)).unwrap();
    let page = Page::from_bytes(bytes).unwrap();
    // A second client's object request triggers a de-escalation callback.
    let resp = s
        .lock(
            ClientId(2),
            txn(2, 1),
            LockTarget::Object(ObjectId::new(page.id(), fgl_common::SlotId(0)), ObjMode::S),
            None,
        )
        .unwrap();
    // FakePeer 1 complied instantly, so client 2 may already be granted
    // via the wait path.
    match resp {
        LockResponse::Granted { .. } => {}
        LockResponse::Wait(w) => {
            assert!(w.wait(std::time::Duration::from_secs(1)).is_some());
        }
    }
}

#[test]
fn ship_page_merges_and_updates_dct_psn() {
    let s = server();
    let _p1 = register(&s, 1);
    let bytes = s.allocate_page(ClientId(1), txn(1, 1)).unwrap();
    let mut copy = Page::from_bytes(bytes).unwrap();
    let slot = copy.insert_object(b"hello-dct").unwrap();
    let pid = copy.id();
    s.ship_page(ClientId(1), copy.as_bytes().into(), true)
        .unwrap();
    // The server's merged copy carries the update.
    let merged = s.page_copy(pid).unwrap();
    assert_eq!(merged.read_object(slot).unwrap(), b"hello-dct");
    assert!(merged.psn() > copy.psn(), "merge bumps the PSN");
    // Shipped frames travel shared; the parse into an owned Page is the
    // single copy of the path and is accounted per byte.
    let copied = s.metrics().snapshot().counters["page_ship_bytes_copied"];
    assert_eq!(copied, copy.as_bytes().len() as u64);
}

#[test]
fn force_page_notifies_replacers_once() {
    let s = server();
    let p1 = register(&s, 1);
    let bytes = s.allocate_page(ClientId(1), txn(1, 1)).unwrap();
    let mut copy = Page::from_bytes(bytes).unwrap();
    copy.insert_object(b"dirty").unwrap();
    let pid = copy.id();
    s.ship_page(ClientId(1), copy.as_bytes().into(), true)
        .unwrap();
    s.force_page(ClientId(1), pid).unwrap();
    assert_eq!(p1.lock().flushes, vec![pid]);
    // Forcing again (already clean): replaced_by was drained, no repeat.
    s.force_page(ClientId(1), pid).unwrap();
    assert_eq!(p1.lock().flushes, vec![pid]);
}

#[test]
fn replacement_records_written_before_page_force() {
    let s = server();
    let _p1 = register(&s, 1);
    let bytes = s.allocate_page(ClientId(1), txn(1, 1)).unwrap();
    let mut copy = Page::from_bytes(bytes).unwrap();
    copy.insert_object(b"payload").unwrap();
    let pid = copy.id();
    s.ship_page(ClientId(1), copy.as_bytes().into(), true)
        .unwrap();
    let before = s.stats();
    s.force_page(ClientId(1), pid).unwrap();
    let after = s.stats();
    assert_eq!(after.pages_flushed, before.pages_flushed + 1);
    assert_eq!(after.replacement_records, before.replacement_records + 1);
}

#[test]
fn crash_drops_volatile_state_but_disk_survives() {
    let s = server();
    let _p1 = register(&s, 1);
    let bytes = s.allocate_page(ClientId(1), txn(1, 1)).unwrap();
    let mut copy = Page::from_bytes(bytes).unwrap();
    copy.insert_object(b"durable-bytes").unwrap();
    let pid = copy.id();
    s.ship_page(ClientId(1), copy.as_bytes().into(), true)
        .unwrap();
    s.force_page(ClientId(1), pid).unwrap();
    s.crash();
    assert!(s.is_down());
    assert!(matches!(
        s.lock(
            ClientId(1),
            txn(1, 2),
            LockTarget::Page(pid, ObjMode::S),
            None
        ),
        Err(fgl_common::FglError::Disconnected(_))
    ));
    // Restart with no clients registered: trivially succeeds, flushed
    // data intact.
    let report = s.restart_recovery().unwrap();
    assert_eq!(report.recovery_units, 0);
    let back = s.page_copy(pid).unwrap();
    assert_eq!(
        back.read_object(fgl_common::SlotId(0)).unwrap(),
        b"durable-bytes"
    );
}

#[test]
fn client_crash_releases_shared_keeps_exclusive() {
    let s = server();
    let _p1 = register(&s, 1);
    let _p2 = register(&s, 2);
    let bytes = s.allocate_page(ClientId(1), txn(1, 1)).unwrap();
    let page = Page::from_bytes(bytes).unwrap().id();
    // Client 2 gets an S lock on an object (forces de-escalation of 1's
    // page lock).
    let obj = ObjectId::new(page, fgl_common::SlotId(0));
    match s
        .lock(
            ClientId(2),
            txn(2, 1),
            LockTarget::Object(obj, ObjMode::S),
            None,
        )
        .unwrap()
    {
        LockResponse::Granted { .. } => {}
        LockResponse::Wait(w) => {
            w.wait(std::time::Duration::from_secs(1)).unwrap();
        }
    }
    s.client_crashed(ClientId(2));
    // Client 1 can now take X on the object without waiting for client 2.
    match s
        .lock(
            ClientId(1),
            txn(1, 2),
            LockTarget::Object(obj, ObjMode::X),
            None,
        )
        .unwrap()
    {
        LockResponse::Granted { .. } => {}
        LockResponse::Wait(w) => {
            assert!(w.wait(std::time::Duration::from_secs(1)).is_some());
        }
    }
}

#[test]
fn fetch_unknown_page_errors() {
    let s = server();
    let _p1 = register(&s, 1);
    assert!(matches!(
        s.fetch_page(ClientId(1), PageId(404)),
        Err(fgl_common::FglError::PageNotFound(_))
    ));
}

#[test]
fn commit_log_ship_accumulates_per_client() {
    let s = server();
    let _p1 = register(&s, 1);
    s.commit_ship_log(ClientId(1), vec![1, 2, 3]).unwrap();
    s.commit_ship_log(ClientId(1), vec![4, 5]).unwrap();
    assert_eq!(
        s.fetch_client_log(ClientId(1)).unwrap(),
        vec![1, 2, 3, 4, 5]
    );
    assert!(s.fetch_client_log(ClientId(2)).unwrap().is_empty());
    assert_eq!(s.stats().commit_log_ships, 2);
}

#[test]
fn checkpoint_snapshots_dct_into_log() {
    let s = server();
    let _p1 = register(&s, 1);
    let bytes = s.allocate_page(ClientId(1), txn(1, 1)).unwrap();
    let _pid = Page::from_bytes(bytes).unwrap().id();
    let before = s.slog_bounds();
    s.checkpoint().unwrap();
    let after = s.slog_bounds();
    assert!(
        after.0 > before.0 || before.0.is_nil(),
        "checkpoint anchor advanced"
    );
    assert!(after.1 > before.1, "checkpoint record appended");
}
