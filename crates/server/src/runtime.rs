//! The page-server runtime: the methods clients invoke over the (counted)
//! message fabric, and the driver that turns GLM events into callbacks,
//! grants and aborts.
//!
//! # Sharding
//!
//! The hot path is partitioned into `cfg.server_shards` independent
//! `Shard`s keyed by `PageId % N`. Each shard owns its slice of the lock
//! table (a [`GlmCore`]), the buffer pool + space-map partition (a
//! [`PageStore`] allocating ids in the shard's residue class), the DCT,
//! the parked lock waiters, and the per-page bookkeeping (`replaced_by`,
//! `last_ship`). A page maps to exactly one shard, so per-page ordering
//! (PSN monotonicity, callback-before-grant) is untouched; requests on
//! pages of different shards never contend. Deadlock detection stays
//! process-global through the shared [`WaitGraph`] every shard's GLM
//! feeds, so cycles spanning shards are still found. What stays
//! deliberately global: the server log (one sequential device), the
//! §4.1 `commit_ship_log` baseline (its shared mutex *is* the bottleneck
//! the paper predicts — do not shard it), and client lifecycle state.
//!
//! # Locking discipline
//!
//! Internal mutexes (per-shard `glm`, `store`, `dct`, `waiters`, …) are
//! held only for short state transitions and **never** across a
//! [`ClientPeer`] call; clients, symmetrically, never invoke the server
//! while holding their own runtime mutex. This pair of rules is what
//! makes the direct-call message fabric deadlock-free. Shard mutexes also
//! never nest across shards, and a shard's GLM acquires the shared wait
//! graph's lock only while the graph never calls back into a shard, so
//! the order `shard → graph` is acyclic. Simulated disk latency
//! (page reads and in-place writes) runs with **no shard lock held**: the
//! store exposes pool-first primitives and a bare disk handle so every
//! sleep happens between lock acquisitions.

use crate::dct::Dct;
use crate::pagestore::PageStore;
use fgl_common::config::CommitPolicy;
use fgl_common::{ClientId, FglError, Lsn, PageId, Psn, Result, SystemConfig, TxnId};
use fgl_locks::contention::{ContentionProfiler, PageContention};
use fgl_locks::coordinator::DeadlockCoordinator;
use fgl_locks::glm::{CallbackKind, CallbackReply, GlmCore, GlmEvent, LockOutcome};
use fgl_locks::mode::{LockTarget, ObjMode};
use fgl_locks::WaitGraph;
use fgl_net::peer::{CallbackOutcome, ClientPeer};
use fgl_net::stats::{MsgKind, NetSim};
use fgl_net::wait::{grant_pair, GrantMsg, GrantSlot};
use fgl_obs::{emit, CallbackClass, Event, HistKind, LogOwner, Metrics};
use fgl_storage::disk::DiskBackend;
use fgl_storage::page::Page;
use fgl_wal::manager::LogManager;
use fgl_wal::records::{LogPayload, ReplacementRecord};
use fgl_wal::store::MemLogStore;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

// The request/response vocabulary lives with the RPC surface in
// `fgl-net::api`; re-exported here so server-side callers keep their
// historical paths.
pub use fgl_net::api::{LockResponse, RecoverPagePlan, RecoveryHandshake};

/// Aggregate counters exposed for experiments.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    pub lock_requests: u64,
    pub page_fetches: u64,
    pub pages_received: u64,
    pub pages_flushed: u64,
    pub replacement_records: u64,
    pub server_checkpoints: u64,
    pub commit_log_ships: u64,
    pub merges: u64,
    /// Hot-path traffic per shard, index = `PageId % server_shards` — the
    /// E11 scaling experiment reads the skew straight off this.
    pub per_shard: Vec<ShardStats>,
}

/// One shard's slice of the hot-path counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    pub lock_requests: u64,
    pub page_fetches: u64,
    pub merges: u64,
}

/// Map a GLM callback to its observability class.
fn class_of(kind: &CallbackKind) -> CallbackClass {
    match kind {
        CallbackKind::ReleaseObject(_) => CallbackClass::ReleaseObject,
        CallbackKind::DowngradeObject(_) => CallbackClass::DowngradeObject,
        CallbackKind::ReleasePage(_) => CallbackClass::ReleasePage,
        CallbackKind::DowngradePage(_) => CallbackClass::DowngradePage,
        CallbackKind::DeEscalatePage(_) => CallbackClass::DeEscalatePage,
    }
}

/// One partition of the server's hot path: everything keyed by a page in
/// the shard's residue class lives here, behind shard-local mutexes.
struct Shard {
    glm: Mutex<GlmCore>,
    store: Mutex<PageStore>,
    dct: Mutex<Dct>,
    /// Parked lock waiters plus the cached PSN their request carried
    /// (footnote 4 of §3.2). Keyed by txn; a txn's waiter lives in the
    /// shard of the page it is waiting on.
    waiters: Mutex<HashMap<TxnId, (GrantSlot, Option<Psn>)>>,
    /// Clients that replaced each page and must be told when it is forced
    /// (§3.6).
    replaced_by: Mutex<HashMap<PageId, HashSet<ClientId>>>,
    /// Last client to ship each page, with the shipped PSN — callback
    /// log-record evidence (§3.1).
    last_ship: Mutex<HashMap<PageId, (ClientId, Psn)>>,
    /// Shard-local traffic counters (surfaced in [`ServerStats::per_shard`]).
    lock_requests: AtomicU64,
    page_fetches: AtomicU64,
    merges: AtomicU64,
}

/// The page server.
pub struct ServerCore {
    /// Read-mostly and shared: clients hold `Arc` clones instead of
    /// per-client copies (see [`ServerCore::config_shared`]).
    cfg: Arc<SystemConfig>,
    pub net: Arc<NetSim>,
    /// This server's partition index in a multi-instance system: it owns
    /// pages with `PageId % instances == instance`. `(0, 1)` is the
    /// single-server system.
    instance: usize,
    instances: usize,
    /// Hot-path partitions; an owned page belongs to
    /// `shards[(page / instances) % len]`.
    shards: Vec<Shard>,
    /// Process-global waits-for graph fed by every shard's GLM —
    /// cross-shard deadlock cycles are detected here.
    wait_graph: Arc<WaitGraph>,
    /// Multi-server systems: the merged cycle search this instance's
    /// graph joined, plus our member id (skipped on our own broadcasts).
    coord: OnceLock<(Arc<DeadlockCoordinator>, usize)>,
    /// Round-robin cursor spreading fresh allocations across shards.
    alloc_next: AtomicU64,
    /// Server log: replacement records + server checkpoints (§3.1, §3.2).
    /// Global: one sequential log device.
    slog: Mutex<LogManager>,
    peers: RwLock<HashMap<ClientId, Arc<dyn ClientPeer>>>,
    /// Server-logging baseline (§4.1): log records shipped at commit,
    /// appended per client behind one (bottleneck) mutex.
    client_logs: Mutex<HashMap<ClientId, Vec<u8>>>,
    crashed_clients: Mutex<HashSet<ClientId>>,
    /// Clients that were down across a server restart: the rebuilt DCT is
    /// incomplete for them, so their recovery must use the §3.5 path.
    dct_incomplete: Mutex<HashSet<ClientId>>,
    /// Signals DCT PSN progress during parallel page recovery (§3.4).
    recovery_gen: Mutex<u64>,
    recovery_cv: Condvar,
    /// Outstanding partial-state needs: (provider client, page, PSN) —
    /// §3.4 step 3 ("the server will request P from CID").
    recovery_needs: Mutex<Vec<(ClientId, PageId, Psn)>>,
    down: AtomicBool,
    /// Shared metrics registry: histograms + counters for the whole
    /// system. Clients and WAL managers clone this handle.
    metrics: Arc<Metrics>,
    /// Per-page wait-time / callback fan-out accumulator (top-N hottest
    /// pages; surfaced through [`ServerCore::contention_top`]).
    contention: ContentionProfiler,
    lock_requests: AtomicU64,
    page_fetches: AtomicU64,
    pages_received: AtomicU64,
    pages_flushed: AtomicU64,
    replacement_records: AtomicU64,
    server_checkpoints: AtomicU64,
    commit_log_ships: AtomicU64,
    slog_appends_since_ckpt: AtomicU64,
}

impl ServerCore {
    pub fn new(cfg: SystemConfig, net: Arc<NetSim>, disk: Arc<dyn DiskBackend>) -> Arc<Self> {
        let metrics = Arc::new(Metrics::new());
        Self::new_instance(cfg, net, disk, 0, 1, metrics)
    }

    /// Build one instance of an N-way partitioned page service: the
    /// instance owns pages in the residue class `PageId % instances ==
    /// instance` and slices *those* across its own GLM shards by
    /// `(PageId / instances) % shards`. Every instance gets its own
    /// store partition, DCT, server log and §4.1 commit-log ship; the
    /// metrics registry is shared so one snapshot covers the system.
    /// `(0, 1)` with a fresh registry is exactly [`ServerCore::new`].
    pub fn new_instance(
        cfg: SystemConfig,
        net: Arc<NetSim>,
        disk: Arc<dyn DiskBackend>,
        instance: usize,
        instances: usize,
        metrics: Arc<Metrics>,
    ) -> Arc<Self> {
        assert!(instances >= 1 && instance < instances);
        let n = cfg.server_shards.max(1);
        let wait_graph = Arc::new(WaitGraph::new());
        // Split the buffer pool evenly; every shard keeps at least one
        // frame so tiny pools still make progress.
        let pool_per_shard = (cfg.server_cache_pages / n).max(1);
        // Shard i of instance k allocates ids ≡ i·instances + k modulo
        // shards·instances: every id it hands out satisfies both
        // `id % instances == k` (instance ownership) and
        // `(id / instances) % shards == i` (shard ownership).
        let shards = (0..n)
            .map(|i| Shard {
                glm: Mutex::new(GlmCore::with_graph(wait_graph.clone())),
                store: Mutex::new(PageStore::with_partition(
                    disk.clone(),
                    pool_per_shard,
                    cfg.page_size,
                    (i * instances + instance) as u64,
                    (n * instances) as u64,
                )),
                dct: Mutex::new(Dct::new()),
                waiters: Mutex::new(HashMap::new()),
                replaced_by: Mutex::new(HashMap::new()),
                last_ship: Mutex::new(HashMap::new()),
                lock_requests: AtomicU64::new(0),
                page_fetches: AtomicU64::new(0),
                merges: AtomicU64::new(0),
            })
            .collect();
        let mut slog = LogManager::new(
            Box::new(fgl_wal::store::SimLogStore::new(
                Box::new(MemLogStore::new()),
                cfg.disk_latency,
            )),
            cfg.server_log_bytes,
        );
        slog.attach_obs(metrics.clone(), LogOwner::Server);
        Arc::new(ServerCore {
            cfg: Arc::new(cfg),
            net,
            instance,
            instances,
            shards,
            wait_graph,
            coord: OnceLock::new(),
            alloc_next: AtomicU64::new(0),
            slog: Mutex::new(slog),
            peers: RwLock::new(HashMap::new()),
            client_logs: Mutex::new(HashMap::new()),
            crashed_clients: Mutex::new(HashSet::new()),
            dct_incomplete: Mutex::new(HashSet::new()),
            recovery_gen: Mutex::new(0),
            recovery_cv: Condvar::new(),
            recovery_needs: Mutex::new(Vec::new()),
            down: AtomicBool::new(false),
            metrics,
            contention: ContentionProfiler::new(),
            lock_requests: AtomicU64::new(0),
            page_fetches: AtomicU64::new(0),
            pages_received: AtomicU64::new(0),
            pages_flushed: AtomicU64::new(0),
            replacement_records: AtomicU64::new(0),
            server_checkpoints: AtomicU64::new(0),
            commit_log_ships: AtomicU64::new(0),
            slog_appends_since_ckpt: AtomicU64::new(0),
        })
    }

    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The shared configuration handle (what clients store — one config
    /// allocation per system, not per participant).
    pub fn config_shared(&self) -> Arc<SystemConfig> {
        self.cfg.clone()
    }

    /// Number of hot-path partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// This server's partition index (`0` in a single-server system).
    pub fn instance(&self) -> usize {
        self.instance
    }

    /// Total server instances in the system this server belongs to.
    pub fn instance_count(&self) -> usize {
        self.instances
    }

    /// Whether `page` belongs to this instance's residue class. Requests
    /// for pages of other instances are a routing bug upstream.
    pub fn owns_page(&self, page: PageId) -> bool {
        page.0 % self.instances as u64 == self.instance as u64
    }

    fn shard_of(&self, page: PageId) -> &Shard {
        debug_assert!(self.owns_page(page), "misrouted page {page:?}");
        &self.shards[((page.0 / self.instances as u64) % self.shards.len() as u64) as usize]
    }

    /// Join a multi-server system's merged deadlock search: this
    /// instance's wait graph starts feeding the coordinator, and victims
    /// detected elsewhere are torn down here through the registered
    /// abort hook (which hunts the victim's parked waiter across our
    /// shards — idempotent when the victim never waited here).
    pub fn attach_coordinator(self: &Arc<Self>, coord: &Arc<DeadlockCoordinator>) {
        let weak: Weak<ServerCore> = Arc::downgrade(self);
        let member = coord.register(
            self.wait_graph.clone(),
            Box::new(move |txn| {
                if let Some(srv) = weak.upgrade() {
                    srv.abort_parked(txn);
                }
            }),
        );
        let _ = self.coord.set((coord.clone(), member));
    }

    /// Cross-instance victim teardown: cancel `txn`'s parked waiter (if
    /// any) on this instance and drive the resulting GLM events. Runs
    /// with no server mutex held.
    fn abort_parked(&self, txn: TxnId) {
        if self.down.load(Ordering::Acquire) {
            return;
        }
        let mut events = Vec::new();
        for shard in &self.shards {
            let slot = shard.waiters.lock().remove(&txn);
            if let Some((slot, _)) = slot {
                self.net.msg(MsgKind::Abort, 16);
                slot.fulfil(GrantMsg::Victim);
            }
            events.extend(shard.glm.lock().cancel_wait(txn));
        }
        self.drive(events);
    }

    fn check_up(&self) -> Result<()> {
        if self.down.load(Ordering::Acquire) {
            Err(FglError::Disconnected("server down".into()))
        } else {
            Ok(())
        }
    }

    pub fn stats(&self) -> ServerStats {
        ServerStats {
            lock_requests: self.lock_requests.load(Ordering::Relaxed),
            page_fetches: self.page_fetches.load(Ordering::Relaxed),
            pages_received: self.pages_received.load(Ordering::Relaxed),
            pages_flushed: self.pages_flushed.load(Ordering::Relaxed),
            replacement_records: self.replacement_records.load(Ordering::Relaxed),
            server_checkpoints: self.server_checkpoints.load(Ordering::Relaxed),
            commit_log_ships: self.commit_log_ships.load(Ordering::Relaxed),
            merges: self.shards.iter().map(|s| s.store.lock().merges()).sum(),
            per_shard: self
                .shards
                .iter()
                .map(|s| ShardStats {
                    lock_requests: s.lock_requests.load(Ordering::Relaxed),
                    page_fetches: s.page_fetches.load(Ordering::Relaxed),
                    merges: s.merges.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// The shared metrics registry (histograms + counters). Clients attach
    /// to this same instance so one snapshot covers the whole system.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// The `n` pages with the most cumulative lock-wait time (callback
    /// fan-out breaks ties), hottest first.
    pub fn contention_top(&self, n: usize) -> Vec<(PageId, PageContention)> {
        self.contention.top_n(n)
    }

    /// Distinct pages that ever saw a queued wait or a callback.
    pub fn contention_pages_tracked(&self) -> usize {
        self.contention.pages_tracked()
    }

    // ---- registration ------------------------------------------------------

    pub fn register_client(&self, peer: Arc<dyn ClientPeer>) {
        self.net.msg(MsgKind::Control, 16);
        let id = peer.client_id();
        self.peers.write().insert(id, peer);
        self.crashed_clients.lock().remove(&id);
    }

    fn peer(&self, id: ClientId) -> Option<Arc<dyn ClientPeer>> {
        self.peers.read().get(&id).cloned()
    }

    // ---- locking -------------------------------------------------------------

    /// Client → server lock request (§3.2). `cached_psn` carries the PSN
    /// of the client's cached copy for DCT seeding (footnote 4).
    pub fn lock(
        &self,
        client: ClientId,
        txn: TxnId,
        target: LockTarget,
        cached_psn: Option<Psn>,
    ) -> Result<LockResponse> {
        self.check_up()?;
        self.net.msg(MsgKind::LockReq, 40);
        self.lock_requests.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(target.page());
        shard.lock_requests.fetch_add(1, Ordering::Relaxed);
        emit(Event::LockRequest {
            client,
            txn,
            page: target.page(),
            exclusive: target.mode() == ObjMode::X,
        });
        // Hold the waiter registry across the GLM call: once the GLM
        // queues the request (and releases its mutex), a concurrent
        // `drive` may already carry the Grant/Victim for this txn, and it
        // resolves the slot through this same mutex — registering after
        // releasing it would drop that wake-up and strand the client
        // until the timeout backstop.
        let mut parked = shard.waiters.lock();
        let (outcome, effective, events) = shard.glm.lock().lock(client, txn, target);
        match outcome {
            LockOutcome::Granted {
                first_exclusive_on_page,
            } => {
                drop(parked);
                if first_exclusive_on_page {
                    shard
                        .dct
                        .lock()
                        .insert(effective.page(), client, cached_psn);
                }
                self.drive(events);
                self.net.msg(MsgKind::LockReply, 24);
                emit(Event::LockGrant {
                    client,
                    txn,
                    page: effective.page(),
                    queued: false,
                });
                let evidence = self.grant_evidence(client, &effective);
                Ok(LockResponse::Granted {
                    target: effective,
                    first_exclusive_on_page,
                    evidence,
                })
            }
            LockOutcome::Queued => {
                let (slot, waiter) = grant_pair();
                parked.insert(txn, (slot, cached_psn));
                drop(parked);
                self.contention
                    .on_queue(txn, &target, self.metrics.now_us());
                emit(Event::LockQueue {
                    client,
                    txn,
                    page: target.page(),
                });
                self.drive(events);
                Ok(LockResponse::Wait(waiter))
            }
        }
    }

    /// A waiting client gave up (timeout) or aborted. The caller does not
    /// know which page the txn queued on, so every shard is asked; the
    /// non-owning ones no-op.
    pub fn cancel_wait(&self, _client: ClientId, txn: TxnId) {
        self.net.msg(MsgKind::Control, 16);
        self.contention.on_resolve(txn, self.metrics.now_us());
        let mut events = Vec::new();
        for shard in &self.shards {
            shard.waiters.lock().remove(&txn);
            events.extend(shard.glm.lock().cancel_wait(txn));
        }
        self.drive(events);
    }

    /// Turn GLM events into protocol actions. Runs with no server mutex
    /// held; each step routes to the owning shard and takes exactly the
    /// locks it needs.
    ///
    /// Callbacks are **batched per destination**: every `SendCallback` in
    /// the current wave of events is collected into one message per
    /// holder, the batches are delivered to distinct holders in parallel
    /// (legal precisely because `drive` holds no server mutex), and each
    /// holder's merged reply feeds the owning shards' GLMs in one pass.
    /// A grant blocked on N holders thus resolves after max(RTT) instead
    /// of sum(RTT), and the E2/E10 callbacks-per-commit constant drops
    /// with the fan-out. `cfg.callback_batching = false` reproduces the
    /// one-callback-one-round-trip protocol for ablation.
    fn drive(&self, events: Vec<GlmEvent>) {
        let mut queue: std::collections::VecDeque<GlmEvent> = events.into();
        loop {
            // Wave: drain the queue, accumulating callbacks into
            // per-destination batches; grants and aborts apply inline.
            let mut batches: Vec<(ClientId, Vec<CallbackKind>)> = Vec::new();
            while let Some(ev) = queue.pop_front() {
                match ev {
                    GlmEvent::SendCallback(cb) => {
                        if self.cfg.callback_batching {
                            match batches.iter_mut().find(|(to, _)| *to == cb.to) {
                                Some((_, kinds)) => kinds.push(cb.kind),
                                None => batches.push((cb.to, vec![cb.kind])),
                            }
                        } else {
                            self.deliver_callback_now(cb.to, cb.kind, &mut queue);
                        }
                    }
                    GlmEvent::Grant {
                        client,
                        txn,
                        target,
                        first_exclusive_on_page,
                    } => {
                        emit(Event::LockGrant {
                            client,
                            txn,
                            page: target.page(),
                            queued: true,
                        });
                        self.contention.on_resolve(txn, self.metrics.now_us());
                        let shard = self.shard_of(target.page());
                        let slot = shard.waiters.lock().remove(&txn);
                        if let Some((slot, cached_psn)) = slot {
                            if first_exclusive_on_page {
                                shard.dct.lock().insert(target.page(), client, cached_psn);
                            }
                            self.net.msg(MsgKind::LockReply, 24);
                            let evidence = self.grant_evidence(client, &target);
                            slot.fulfil(GrantMsg::Granted {
                                target,
                                first_exclusive_on_page,
                                evidence,
                            });
                        }
                    }
                    GlmEvent::AbortTxn { txn, .. } => {
                        emit(Event::DeadlockVictim { txn });
                        self.metrics.add("deadlock_victims", 1);
                        self.contention.on_resolve(txn, self.metrics.now_us());
                        // The victim of a cross-shard cycle may be parked
                        // on a page of *another* shard than the GLM that
                        // detected the cycle, so its waiter is hunted
                        // everywhere; the cancellation is idempotent on
                        // non-owning shards.
                        for shard in &self.shards {
                            let slot = shard.waiters.lock().remove(&txn);
                            if let Some((slot, _)) = slot {
                                self.net.msg(MsgKind::Abort, 16);
                                slot.fulfil(GrantMsg::Victim);
                            }
                            queue.extend(shard.glm.lock().cancel_wait(txn));
                        }
                        // A cross-*server* cycle's victim may be parked on
                        // another instance entirely: broadcast so every
                        // other member hunts (and cancels) it too.
                        if let Some((coord, me)) = self.coord.get() {
                            coord.broadcast_abort(txn, *me);
                        }
                    }
                }
            }
            if batches.is_empty() {
                break;
            }
            for (to, kinds, outcomes) in self.fan_out_batches(batches) {
                self.apply_batch_reply(to, kinds, outcomes, &mut queue);
            }
        }
    }

    /// Unbatched (ablation) delivery of a single callback, counted and
    /// applied exactly like the pre-batching protocol — except messages
    /// are now sized by payload.
    fn deliver_callback_now(
        &self,
        to: ClientId,
        kind: CallbackKind,
        queue: &mut std::collections::VecDeque<GlmEvent>,
    ) {
        if self.crashed_clients.lock().contains(&to) {
            return;
        }
        let Some(peer) = self.peer(to) else {
            return;
        };
        let _span = fgl_obs::trace::span(fgl_obs::SpanKind::CallbackRtt, TxnId(0));
        self.net
            .msg(MsgKind::Callback, fgl_net::wire::callback_batch(1));
        self.contention.on_callback(kind.page());
        emit(Event::CallbackIssued {
            to,
            page: kind.page(),
            class: class_of(&kind),
        });
        let issued_at = self.metrics.now_us();
        let outcome = peer.deliver_callback(kind);
        self.net.msg(
            MsgKind::CallbackReply,
            fgl_net::wire::callback_reply(std::slice::from_ref(&outcome)),
        );
        match &outcome {
            CallbackOutcome::Done { .. } => {
                // A synchronous completion bounds the round trip; deferred
                // callbacks are timed out-of-band when `callback_complete`
                // arrives.
                self.metrics
                    .observe_since(HistKind::CallbackRoundTrip, issued_at);
                emit(Event::CallbackCompleted {
                    from: to,
                    page: kind.page(),
                });
            }
            CallbackOutcome::Deferred { .. } => {
                emit(Event::CallbackDeferred {
                    from: to,
                    page: kind.page(),
                });
            }
        }
        self.apply_batch_reply(to, vec![kind], vec![outcome], queue);
    }

    /// Ship one callback batch per destination, concurrently for distinct
    /// destinations. Message counting (and the injected one-way latency)
    /// runs inside each delivery thread, so N holders cost max(RTT), not
    /// sum(RTT), while the per-kind message counts stay deterministic.
    #[allow(clippy::type_complexity)]
    fn fan_out_batches(
        &self,
        batches: Vec<(ClientId, Vec<CallbackKind>)>,
    ) -> Vec<(ClientId, Vec<CallbackKind>, Vec<CallbackOutcome>)> {
        let mut deliveries: Vec<(ClientId, Arc<dyn ClientPeer>, Vec<CallbackKind>)> = Vec::new();
        for (to, kinds) in batches {
            // A client that crashed between GLM decision and delivery is
            // skipped entirely: its callbacks stay outstanding in the GLM
            // and are re-delivered after recovery, and the GLM's
            // crash_client path re-evaluates the waiters so the grant is
            // not stranded.
            if self.crashed_clients.lock().contains(&to) {
                continue;
            }
            let Some(peer) = self.peer(to) else {
                continue;
            };
            deliveries.push((to, peer, kinds));
        }
        let deliver = |to: ClientId,
                       peer: &Arc<dyn ClientPeer>,
                       kinds: &[CallbackKind]|
         -> Vec<CallbackOutcome> {
            // One round-trip span per destination batch. A `fanout`
            // subtask inherits the spawner's trace tag, so concurrent
            // deliveries stay parented under the span that triggered the
            // callbacks.
            let _span = fgl_obs::trace::span(fgl_obs::SpanKind::CallbackRtt, TxnId(0));
            self.net.msg(
                MsgKind::Callback,
                fgl_net::wire::callback_batch(kinds.len()),
            );
            emit(Event::CallbackBatch {
                to,
                count: kinds.len() as u32,
            });
            for kind in kinds {
                self.contention.on_callback(kind.page());
                emit(Event::CallbackIssued {
                    to,
                    page: kind.page(),
                    class: class_of(kind),
                });
            }
            let issued_at = self.metrics.now_us();
            let outcomes = peer.deliver_callback_batch(kinds);
            self.net.msg(
                MsgKind::CallbackReply,
                fgl_net::wire::callback_reply(&outcomes),
            );
            for (kind, outcome) in kinds.iter().zip(&outcomes) {
                match outcome {
                    CallbackOutcome::Done { .. } => {
                        self.metrics
                            .observe_since(HistKind::CallbackRoundTrip, issued_at);
                        emit(Event::CallbackCompleted {
                            from: to,
                            page: kind.page(),
                        });
                    }
                    CallbackOutcome::Deferred { .. } => {
                        emit(Event::CallbackDeferred {
                            from: to,
                            page: kind.page(),
                        });
                    }
                }
            }
            outcomes
        };
        if deliveries.len() <= 1 {
            // One destination: no thread to pay for.
            return deliveries
                .into_iter()
                .map(|(to, peer, kinds)| {
                    let outcomes = deliver(to, &peer, &kinds);
                    (to, kinds, outcomes)
                })
                .collect();
        }
        // One concurrent delivery per destination holder: green subtasks
        // when driven from the event scheduler, scoped OS threads
        // otherwise (`fanout` joins either way before returning).
        let results: Vec<Mutex<Option<Vec<CallbackOutcome>>>> =
            deliveries.iter().map(|_| Mutex::new(None)).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = deliveries
            .iter()
            .zip(&results)
            .map(|((to, peer, kinds), slot)| {
                let deliver = &deliver;
                Box::new(move || {
                    *slot.lock() = Some(deliver(*to, peer, kinds));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        fgl_sched::fanout(jobs);
        deliveries
            .iter()
            .zip(results)
            .map(|((to, _, kinds), slot)| {
                (*to, kinds.clone(), slot.into_inner().expect("delivery ran"))
            })
            .collect()
    }

    /// Apply one destination's merged reply: absorb shipped page copies
    /// first (PSN monotonicity — merges still go through `absorb_page`),
    /// then feed the per-kind replies to each owning shard's GLM in one
    /// batch pass.
    fn apply_batch_reply(
        &self,
        from: ClientId,
        kinds: Vec<CallbackKind>,
        outcomes: Vec<CallbackOutcome>,
        queue: &mut std::collections::VecDeque<GlmEvent>,
    ) {
        let mut per_shard: Vec<(usize, Vec<(CallbackKind, CallbackReply)>)> = Vec::new();
        for (kind, outcome) in kinds.into_iter().zip(outcomes) {
            let reply = match outcome {
                CallbackOutcome::Done {
                    retained,
                    page_copy,
                } => {
                    if let Some(bytes) = page_copy {
                        let _ = self.absorb_page(from, &bytes, false);
                    }
                    CallbackReply::Done { retained }
                }
                CallbackOutcome::Deferred { blockers } => CallbackReply::Deferred { blockers },
            };
            let idx = (kind.page().0 % self.shards.len() as u64) as usize;
            match per_shard.iter_mut().find(|(i, _)| *i == idx) {
                Some((_, replies)) => replies.push((kind, reply)),
                None => per_shard.push((idx, vec![(kind, reply)])),
            }
        }
        for (idx, replies) in per_shard {
            let evs = self.shards[idx]
                .glm
                .lock()
                .callback_reply_batch(from, replies);
            queue.extend(evs);
        }
    }

    /// Evidence for the §3.1 callback log record: the last client that
    /// shipped this page (excluding the grantee itself), for exclusive
    /// grants only.
    fn grant_evidence(&self, grantee: ClientId, target: &LockTarget) -> Option<(ClientId, Psn)> {
        if target.mode() != ObjMode::X {
            return None;
        }
        self.shard_of(target.page())
            .last_ship
            .lock()
            .get(&target.page())
            .copied()
            .filter(|(c, _)| *c != grantee)
    }

    /// A client finished a previously deferred callback (its blocking
    /// transactions ended).
    pub fn callback_complete(
        &self,
        client: ClientId,
        kind: CallbackKind,
        retained: Vec<(fgl_common::ObjectId, ObjMode)>,
        page_copy: Option<std::sync::Arc<[u8]>>,
    ) -> Result<()> {
        self.check_up()?;
        self.net.msg(
            MsgKind::CallbackComplete,
            fgl_net::wire::callback_complete(
                retained.len(),
                page_copy.as_ref().map(|bytes| bytes.len()),
            ),
        );
        emit(Event::CallbackCompleted {
            from: client,
            page: kind.page(),
        });
        if let Some(bytes) = page_copy {
            self.absorb_page(client, &bytes, false)?;
        }
        let events = self.shard_of(kind.page()).glm.lock().callback_reply(
            client,
            kind,
            CallbackReply::Done { retained },
        );
        self.drive(events);
        Ok(())
    }

    // ---- pages ---------------------------------------------------------------

    /// Pool-first page read: on a miss, the disk read (and its simulated
    /// latency) runs with **no shard lock held**, then the copy is
    /// installed unless a newer one appeared meanwhile.
    fn read_page_copy(&self, page: PageId) -> Result<Page> {
        let shard = self.shard_of(page);
        if let Some(p) = shard.store.lock().pool_copy(page) {
            return Ok(p);
        }
        let disk = shard.store.lock().disk_handle();
        let from_disk = disk.read_page(page)?.ok_or(FglError::PageNotFound(page))?;
        let (copy, evicted) = shard.store.lock().install_clean(from_disk);
        self.flush_images(evicted)?;
        Ok(copy)
    }

    /// Fetch the current merged copy of a page. Returns the bytes plus the
    /// PSN remembered in the DCT for this client (§3.2: ignored during
    /// normal processing, used by rollback-after-replacement and by
    /// restart recovery).
    pub fn fetch_page(&self, client: ClientId, page: PageId) -> Result<(Vec<u8>, Option<Psn>)> {
        self.check_up()?;
        self.net.msg(MsgKind::FetchPage, 16);
        self.page_fetches.fetch_add(1, Ordering::Relaxed);
        self.shard_of(page)
            .page_fetches
            .fetch_add(1, Ordering::Relaxed);
        let copy = self.read_page_copy(page)?;
        let dct_psn = {
            let mut dct = self.shard_of(page).dct.lock();
            dct.set_psn_if_unset(page, client, copy.psn());
            dct.psn_of(page, client)
        };
        emit(Event::PageShip {
            client,
            page,
            psn: copy.psn(),
            to_server: false,
        });
        self.net.msg(MsgKind::PageShip, copy.size());
        Ok((copy.into_bytes(), dct_psn))
    }

    /// Allocate a fresh page on behalf of a client, granting it the page
    /// exclusively and seeding the DCT entry (creation is a structural
    /// update, §3.1). Allocations round-robin across shards; each shard's
    /// space map hands out ids in its own residue class.
    pub fn allocate_page(&self, client: ClientId, _txn: TxnId) -> Result<Vec<u8>> {
        self.check_up()?;
        self.net.msg(MsgKind::Control, 16);
        let idx =
            (self.alloc_next.fetch_add(1, Ordering::Relaxed) % self.shards.len() as u64) as usize;
        let shard = &self.shards[idx];
        let (page, evicted) = {
            let mut store = shard.store.lock();
            store.allocate()?
        };
        self.flush_images(evicted)?;
        shard
            .glm
            .lock()
            .install_holder(client, LockTarget::Page(page.id(), ObjMode::X));
        shard.dct.lock().insert(page.id(), client, Some(page.psn()));
        self.net.msg(MsgKind::PageShip, page.size());
        Ok(page.into_bytes())
    }

    /// A dirty page arrives from a client (cache replacement ships it to
    /// the server, §2). `replaced` marks cache replacement, which enrolls
    /// the client for the §3.6 flush notification.
    pub fn ship_page(
        &self,
        client: ClientId,
        bytes: std::sync::Arc<[u8]>,
        replaced: bool,
    ) -> Result<()> {
        self.check_up()?;
        self.net.msg(MsgKind::PageShip, bytes.len());
        let page = self.parse_frame(&bytes)?;
        emit(Event::PageShip {
            client,
            page: page.id(),
            psn: page.psn(),
            to_server: true,
        });
        self.absorb_parsed(client, page, replaced)
    }

    fn absorb_page(&self, client: ClientId, bytes: &[u8], replaced: bool) -> Result<()> {
        let page = self.parse_frame(bytes)?;
        self.absorb_parsed(client, page, replaced)
    }

    /// The ship path's single copy: materialize an owned page from a
    /// shared frame, accounting the copied bytes.
    fn parse_frame(&self, bytes: &[u8]) -> Result<Page> {
        self.metrics
            .add("page_ship_bytes_copied", bytes.len() as u64);
        fgl_storage::merge::parse_incoming(bytes)
    }

    fn absorb_parsed(&self, client: ClientId, page: Page, replaced: bool) -> Result<()> {
        let id = page.id();
        self.pages_received.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(id);
        shard.merges.fetch_add(1, Ordering::Relaxed);
        let merge_start = self.metrics.now_us();
        // Pool-first merge; on a miss the disk read runs unlocked and the
        // merge re-checks the pool (a copy that slipped in wins as the
        // resident side).
        let store = shard.store.lock();
        let (incoming_psn, _outcome, evicted) = {
            let mut store = store;
            if store.pool_has(id) {
                store.receive_with(page, None)?
            } else {
                let disk = store.disk_handle();
                drop(store);
                let disk_copy = disk.read_page(id)?;
                shard.store.lock().receive_with(page, disk_copy)?
            }
        };
        self.metrics.observe_since(HistKind::Merge, merge_start);
        emit(Event::PageMerge {
            from: client,
            page: id,
            psn: incoming_psn,
        });
        shard.dct.lock().set_psn(id, client, incoming_psn);
        shard.last_ship.lock().insert(id, (client, incoming_psn));
        if replaced {
            shard
                .replaced_by
                .lock()
                .entry(id)
                .or_default()
                .insert(client);
        }
        self.flush_images(evicted)?;
        self.bump_recovery_gen();
        Ok(())
    }

    /// §3.6: a client low on log space asks the server to force a page.
    pub fn force_page(&self, _client: ClientId, page: PageId) -> Result<()> {
        self.check_up()?;
        self.net.msg(MsgKind::ForcePage, 16);
        self.flush_page(page)
    }

    /// Force one page to disk: replacement log record first (§3.1), then
    /// the in-place write, then flush notifications and DCT pruning.
    pub fn flush_page(&self, page: PageId) -> Result<()> {
        let copy = self.shard_of(page).store.lock().dirty_copy(page);
        match copy {
            Some(img) => self.flush_images(vec![img]),
            None => {
                // Already clean on disk: just notify whoever waited.
                self.notify_flushed(page);
                Ok(())
            }
        }
    }

    pub(crate) fn flush_images_pub(&self, images: Vec<Page>) -> Result<()> {
        self.flush_images(images)
    }

    /// Write page images to disk with their replacement records. The
    /// in-place disk write (and its simulated latency) runs with no shard
    /// lock held; the log force serializes on the log's own mutex, which
    /// is the nature of a single sequential log device.
    fn flush_images(&self, images: Vec<Page>) -> Result<()> {
        for img in images {
            let id = img.id();
            let shard = self.shard_of(id);
            let entries = shard.dct.lock().entries_for_page(id);
            let record = LogPayload::Replacement(ReplacementRecord {
                page: id,
                psn: img.psn(),
                clients: entries
                    .iter()
                    .filter_map(|e| e.psn.map(|p| (e.client, p)))
                    .collect(),
            });
            let lsn = {
                let mut slog = self.slog.lock();
                let lsn = slog.append_critical(&record)?;
                slog.force()?;
                lsn
            };
            self.replacement_records.fetch_add(1, Ordering::Relaxed);
            shard.dct.lock().note_replacement_record(id, lsn);
            let disk = shard.store.lock().disk_handle();
            disk.write_page(&img)?;
            shard.store.lock().mark_clean_if_match(&img);
            self.pages_flushed.fetch_add(1, Ordering::Relaxed);
            self.notify_flushed(id);
            self.prune_dct(id);
            self.maybe_checkpoint()?;
        }
        Ok(())
    }

    fn notify_flushed(&self, page: PageId) {
        let clients: Vec<ClientId> = {
            let mut map = self.shard_of(page).replaced_by.lock();
            map.remove(&page)
                .map(|s| s.into_iter().collect())
                .unwrap_or_default()
        };
        let crashed = self.crashed_clients.lock().clone();
        for c in clients {
            if crashed.contains(&c) {
                continue;
            }
            if let Some(peer) = self.peer(c) {
                self.net.msg(MsgKind::FlushNotify, 16);
                peer.notify_page_flushed(page);
            }
        }
    }

    /// Drop DCT entries whose page is clean on disk and whose client no
    /// longer holds exclusive locks touching the page (§3.2).
    fn prune_dct(&self, page: PageId) {
        let shard = self.shard_of(page);
        if shard.store.lock().is_dirty(page) {
            return;
        }
        let entries = shard.dct.lock().entries_for_page(page);
        let glm = shard.glm.lock();
        let mut dct = shard.dct.lock();
        for e in entries {
            if !glm.client_has_exclusive_on_page(e.client, page) {
                dct.remove(page, e.client);
            }
        }
    }

    fn maybe_checkpoint(&self) -> Result<()> {
        let n = self.slog_appends_since_ckpt.fetch_add(1, Ordering::Relaxed) + 1;
        if n < self.cfg.server_checkpoint_every {
            return Ok(());
        }
        self.slog_appends_since_ckpt.store(0, Ordering::Relaxed);
        self.checkpoint()
    }

    /// Take a server fuzzy checkpoint (§3.2): persist the DCT (merged
    /// across all shards) and advance the log low-water mark.
    pub fn checkpoint(&self) -> Result<()> {
        let mut snapshot = Vec::new();
        for shard in &self.shards {
            snapshot.extend(shard.dct.lock().snapshot());
        }
        let min_redo = snapshot.iter().filter_map(|e| e.redo_lsn).min();
        let mut slog = self.slog.lock();
        let lsn = slog.append_critical(&LogPayload::ServerCheckpoint { dct: snapshot })?;
        slog.force()?;
        slog.set_checkpoint(lsn)?;
        if let Some(lw) = min_redo {
            slog.advance_low_water(lw.min(lsn))?;
        } else {
            slog.advance_low_water(lsn)?;
        }
        drop(slog);
        emit(Event::Checkpoint {
            owner: LogOwner::Server,
            lsn,
        });
        self.server_checkpoints.fetch_add(1, Ordering::Relaxed);
        self.metrics.add("server_checkpoints", 1);
        Ok(())
    }

    // ---- server-logging baselines (§4.1) --------------------------------------

    /// ARIES/CSA-shape commit: the client ships its log records; the
    /// server appends them to its (single, shared) client-log store and
    /// forces. The shared mutex *is* the bottleneck the paper predicts —
    /// it stays deliberately unsharded, and the disk sleep deliberately
    /// runs under it.
    pub fn commit_ship_log(&self, client: ClientId, records: Vec<u8>) -> Result<()> {
        self.check_up()?;
        let _span = fgl_obs::trace::span(fgl_obs::SpanKind::CommitLogShip, TxnId(0));
        self.net.msg(MsgKind::CommitLogShip, records.len());
        self.commit_log_ships.fetch_add(1, Ordering::Relaxed);
        let mut logs = self.client_logs.lock();
        logs.entry(client).or_default().extend_from_slice(&records);
        // Force: one disk write per commit, serialized on this mutex.
        if !self.cfg.disk_latency.is_zero() {
            fgl_sched::pause(self.cfg.disk_latency);
        }
        Ok(())
    }

    /// Return the log bytes a client shipped (baseline client-crash
    /// recovery reads its log from the server).
    pub fn fetch_client_log(&self, client: ClientId) -> Result<Vec<u8>> {
        self.check_up()?;
        self.net.msg(MsgKind::Recovery, 16);
        let bytes = self
            .client_logs
            .lock()
            .get(&client)
            .cloned()
            .unwrap_or_default();
        self.net.msg(MsgKind::Recovery, bytes.len());
        Ok(bytes)
    }

    /// True when running one of the server-logging baselines.
    pub fn server_logging(&self) -> bool {
        matches!(
            self.cfg.commit_policy,
            CommitPolicy::ServerLog | CommitPolicy::ShipPagesAtCommit
        )
    }

    // ---- client crash handling (§3.3) ------------------------------------------

    /// A client crashed: release its shared locks, keep its exclusive
    /// locks, queue callbacks addressed to it. Every shard holds a slice
    /// of its state.
    pub fn client_crashed(&self, client: ClientId) {
        self.crashed_clients.lock().insert(client);
        self.peers.write().remove(&client);
        let mut events = Vec::new();
        for shard in &self.shards {
            // Its parked waiters die with it.
            let its: Vec<TxnId> = shard
                .waiters
                .lock()
                .keys()
                .copied()
                .filter(|t| t.client() == client)
                .collect();
            for t in &its {
                shard.waiters.lock().remove(t);
            }
            let mut glm = shard.glm.lock();
            for t in its {
                events.extend(glm.cancel_wait(t));
            }
            events.extend(glm.crash_client(client));
        }
        self.drive(events);
    }

    /// Restarting client: hand it the exclusive locks it held (§3.3) and
    /// the DCT PSNs for its pages (Property 1 filtering), unioned across
    /// shards.
    pub fn client_recovery_begin(
        &self,
        client: ClientId,
        peer: Arc<dyn ClientPeer>,
    ) -> Result<RecoveryHandshake> {
        self.check_up()?;
        self.net.msg(MsgKind::Recovery, 16);
        self.peers.write().insert(client, peer);
        let mut locks = Vec::new();
        let mut psns: Vec<(PageId, Option<Psn>)> = Vec::new();
        for shard in &self.shards {
            locks.extend(shard.glm.lock().exclusive_locks(client));
            psns.extend(
                shard
                    .dct
                    .lock()
                    .entries_for_client(client)
                    .into_iter()
                    .map(|e| (e.page, e.psn)),
            );
        }
        let dct_complete = !self.dct_incomplete.lock().contains(&client);
        self.net
            .msg(MsgKind::Recovery, 16 * (locks.len() + psns.len()).max(1));
        Ok((locks, psns, dct_complete))
    }

    /// Recovery finished: deliver queued callbacks, then let the client
    /// release the locks of its (now resolved) pre-crash transactions.
    pub fn client_recovery_end(&self, client: ClientId) -> Result<()> {
        self.check_up()?;
        self.net.msg(MsgKind::Recovery, 16);
        self.crashed_clients.lock().remove(&client);
        self.dct_incomplete.lock().remove(&client);
        let mut events = Vec::new();
        for shard in &self.shards {
            let mut glm = shard.glm.lock();
            glm.client_recovered(client);
            events.extend(glm.release_all(client));
        }
        self.drive(events);
        self.bump_recovery_gen();
        Ok(())
    }

    // ---- server crash plumbing (the restart algorithm lives in recovery.rs) ----

    /// Simulate a server crash: all volatile state (buffer pools, GLM
    /// shards, DCT, waits-for graph, parked waiters, un-forced log tail)
    /// vanishes; disk and forced log survive.
    pub fn crash(&self) {
        self.down.store(true, Ordering::Release);
        self.wait_graph.clear();
        for shard in &self.shards {
            shard.store.lock().crash();
            shard.dct.lock().clear();
            *shard.glm.lock() = GlmCore::with_graph(self.wait_graph.clone());
            shard.waiters.lock().clear();
            shard.replaced_by.lock().clear();
            shard.last_ship.lock().clear();
        }
        self.slog.lock().crash();
        self.slog_appends_since_ckpt.store(0, Ordering::Relaxed);
    }

    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    pub(crate) fn mark_up(&self) {
        self.down.store(false, Ordering::Release);
    }

    pub(crate) fn glm_for(&self, page: PageId) -> parking_lot::MutexGuard<'_, GlmCore> {
        self.shard_of(page).glm.lock()
    }

    pub(crate) fn store_for(&self, page: PageId) -> parking_lot::MutexGuard<'_, PageStore> {
        self.shard_of(page).store.lock()
    }

    pub(crate) fn dct_for(&self, page: PageId) -> parking_lot::MutexGuard<'_, Dct> {
        self.shard_of(page).dct.lock()
    }

    pub(crate) fn slog_mut(&self) -> parking_lot::MutexGuard<'_, LogManager> {
        self.slog.lock()
    }

    pub(crate) fn all_peers(&self) -> Vec<Arc<dyn ClientPeer>> {
        self.peers.read().values().cloned().collect()
    }

    pub(crate) fn crashed_set(&self) -> HashSet<ClientId> {
        self.crashed_clients.lock().clone()
    }

    pub(crate) fn mark_dct_incomplete(&self, clients: &HashSet<ClientId>) {
        self.dct_incomplete.lock().extend(clients.iter().copied());
    }

    fn bump_recovery_gen(&self) {
        let mut gen = self.recovery_gen.lock();
        *gen += 1;
        self.recovery_cv.notify_all();
    }

    /// §3.4 step 3 of per-client page recovery: a recovering client hit a
    /// callback log record for an object *not* in its `CallBack_P` list
    /// and needs the page state of client `cid` at PSN ≥ `psn`. Blocks
    /// (bounded) until the server's merged copy reflects it.
    pub fn recovery_fetch(
        &self,
        client: ClientId,
        page: PageId,
        need: Option<(ClientId, Psn)>,
    ) -> Result<(Vec<u8>, Option<Psn>)> {
        self.net.msg(MsgKind::Recovery, 24);
        if let Some((cid, psn)) = need {
            // Needs on *operational* clients are already satisfied: their
            // cached DPT pages were absorbed in step 4 before replay
            // began, and their flushed state is on disk — the current
            // merged copy covers them. Only a crashed client recovering
            // in parallel (§3.5) can still owe state.
            let provider_recovering = self.crashed_clients.lock().contains(&cid);
            if provider_recovering {
                self.wait_for_recovery_progress(cid, page, psn);
            }
        }
        let copy = self.read_page_copy(page)?;
        let dct_psn = self.shard_of(page).dct.lock().psn_of(page, client);
        self.net.msg(MsgKind::PageShip, copy.size());
        Ok((copy.into_bytes(), dct_psn))
    }

    /// Block (bounded) until `cid`'s recovery of `page` passes `psn`.
    fn wait_for_recovery_progress(&self, cid: ClientId, page: PageId, psn: Psn) {
        {
            self.recovery_needs.lock().push((cid, page, psn));
            // Bounded wait: if the provider has not recovered the page
            // past the needed PSN in time (it may itself be a crashed
            // client whose recovery runs later), fall back to the current
            // merged copy — per-object slot-PSN merging reorders the
            // provider's state correctly whenever it does arrive, so the
            // fallback trades a transient stale read (repaired at the
            // provider's ship) for liveness.
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(500);
            loop {
                // Hold the generation lock across the condition check so a
                // concurrent bump cannot slip between check and wait.
                let mut gen = self.recovery_gen.lock();
                let have = self.shard_of(page).dct.lock().psn_of(page, cid);
                if have.map(|p| p >= psn).unwrap_or(false) {
                    break;
                }
                let timeout = deadline.saturating_duration_since(std::time::Instant::now());
                if timeout.is_zero() {
                    if fgl_obs::trace_enabled() {
                        eprintln!(
                            "[fgl] recovery_fetch fallback: {cid} has not recovered {page} past {psn:?}"
                        );
                    }
                    break;
                }
                self.recovery_cv.wait_for(&mut gen, timeout);
            }
            self.recovery_needs
                .lock()
                .retain(|&(c, p, q)| !(c == cid && p == page && q == psn));
        }
    }

    /// §3.5: prepare one page for a crashed client's post-server-restart
    /// recovery — the base copy (current merged view, or a fresh format
    /// when the page never reached disk), the PSN the server can vouch
    /// for (rebuilt DCT via Property 2, else zero = replay everything),
    /// and the merged `CallBack_P` list from the operational clients.
    pub fn recover_client_page(&self, client: ClientId, page: PageId) -> Result<RecoverPagePlan> {
        self.net.msg(MsgKind::Recovery, 16);
        let shard = self.shard_of(page);
        let (base, evicted) = shard.store.lock().get_or_format(page)?;
        self.flush_images(evicted)?;
        let install_psn = shard.dct.lock().psn_of(page, client).unwrap_or(Psn::ZERO);
        // Ensure a DCT entry exists so parallel recoveries can wait on our
        // progress for this page.
        shard.dct.lock().insert(page, client, None);
        let mut merged: HashMap<fgl_common::ObjectId, Psn> = HashMap::new();
        for peer in self.all_peers() {
            if peer.client_id() == client {
                continue;
            }
            self.net.msg(MsgKind::Recovery, 16);
            let list = peer.callback_list_for(page, client, fgl_common::Lsn::NIL);
            self.net.msg(MsgKind::Recovery, 16 + 24 * list.len());
            for (obj, psn) in list {
                let e = merged.entry(obj).or_insert(psn);
                if psn > *e {
                    *e = psn;
                }
            }
        }
        let mut list: Vec<_> = merged.into_iter().collect();
        list.sort_by_key(|(o, _)| (o.page.0, o.slot.0));
        self.net.msg(MsgKind::PageShip, base.size());
        Ok((base.into_bytes(), install_psn, list))
    }

    /// A recovering client polls for partial-state needs addressed to it
    /// (§3.4 step 3: "CID will send P to the server only after it has
    /// processed all log records containing a PSN value that is less than
    /// the PSN value C sent"). Returns pages another recovering client is
    /// waiting on, with the PSN threshold.
    pub fn poll_recovery_needs(&self, provider: ClientId) -> Vec<(PageId, Psn)> {
        self.recovery_needs
            .lock()
            .iter()
            .filter(|(c, _, _)| *c == provider)
            .map(|&(_, p, q)| (p, q))
            .collect()
    }

    /// Install a client's recovered copy of a page (final phase of §3.4).
    pub fn install_recovered(&self, client: ClientId, bytes: Vec<u8>) -> Result<()> {
        self.net.msg(MsgKind::PageShip, bytes.len());
        self.absorb_page(client, &bytes, false)
    }

    /// Diagnostics: PSN of the server's current copy (pool else disk).
    pub fn current_psn(&self, page: PageId) -> Option<Psn> {
        self.shard_of(page)
            .store
            .lock()
            .current_psn(page)
            .ok()
            .flatten()
    }

    /// Diagnostics / oracle verification: a copy of the page as the server
    /// sees it now.
    pub fn page_copy(&self, page: PageId) -> Result<Page> {
        self.read_page_copy(page)
    }

    /// Diagnostics: ids of every allocated page (across all shards).
    pub fn allocated_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .shards
            .iter()
            .flat_map(|s| s.store.lock().allocated_pages())
            .collect();
        pages.sort();
        pages
    }

    /// Server log state: `(last checkpoint, end)` (diagnostics).
    pub fn slog_bounds(&self) -> (Lsn, Lsn) {
        let slog = self.slog.lock();
        (slog.last_checkpoint(), slog.end_lsn())
    }

    /// Bytes appended to the server log per record kind (non-zero only).
    pub fn wal_bytes_by_kind(&self) -> Vec<(&'static str, u64)> {
        self.slog.lock().bytes_by_kind()
    }
}

// The typed RPC surface: pure delegation to the inherent methods above.
// The sim transport IS this impl — clients hold `Arc<dyn ServerApi>` and
// the trait object dispatches straight into the runtime, so the direct
// call path (and its nominal `NetSim` accounting) is unchanged.
impl fgl_net::api::ServerApi for ServerCore {
    fn register_client(&self, peer: Arc<dyn ClientPeer>) {
        ServerCore::register_client(self, peer);
    }

    fn lock(
        &self,
        client: ClientId,
        txn: TxnId,
        target: LockTarget,
        cached_psn: Option<Psn>,
    ) -> Result<LockResponse> {
        ServerCore::lock(self, client, txn, target, cached_psn)
    }

    fn cancel_wait(&self, client: ClientId, txn: TxnId) {
        ServerCore::cancel_wait(self, client, txn);
    }

    fn callback_complete(
        &self,
        client: ClientId,
        kind: CallbackKind,
        retained: Vec<(fgl_common::ObjectId, ObjMode)>,
        page_copy: Option<std::sync::Arc<[u8]>>,
    ) -> Result<()> {
        ServerCore::callback_complete(self, client, kind, retained, page_copy)
    }

    fn fetch_page(&self, client: ClientId, page: PageId) -> Result<(Vec<u8>, Option<Psn>)> {
        ServerCore::fetch_page(self, client, page)
    }

    fn allocate_page(&self, client: ClientId, txn: TxnId) -> Result<Vec<u8>> {
        ServerCore::allocate_page(self, client, txn)
    }

    fn ship_page(
        &self,
        client: ClientId,
        bytes: std::sync::Arc<[u8]>,
        replaced: bool,
    ) -> Result<()> {
        ServerCore::ship_page(self, client, bytes, replaced)
    }

    fn force_page(&self, client: ClientId, page: PageId) -> Result<()> {
        ServerCore::force_page(self, client, page)
    }

    fn commit_ship_log(
        &self,
        client: ClientId,
        records: Vec<u8>,
        _touched: Vec<PageId>,
    ) -> Result<()> {
        // The hint routes at the partition layer; a single instance logs
        // everything it is handed.
        ServerCore::commit_ship_log(self, client, records)
    }

    fn fetch_client_log(&self, client: ClientId) -> Result<Vec<u8>> {
        ServerCore::fetch_client_log(self, client)
    }

    fn server_logging(&self) -> bool {
        ServerCore::server_logging(self)
    }

    fn client_crashed(&self, client: ClientId) {
        ServerCore::client_crashed(self, client);
    }

    fn client_recovery_begin(
        &self,
        client: ClientId,
        peer: Arc<dyn ClientPeer>,
    ) -> Result<RecoveryHandshake> {
        ServerCore::client_recovery_begin(self, client, peer)
    }

    fn client_recovery_end(&self, client: ClientId) -> Result<()> {
        ServerCore::client_recovery_end(self, client)
    }

    fn recovery_fetch(
        &self,
        client: ClientId,
        page: PageId,
        need: Option<(ClientId, Psn)>,
    ) -> Result<(Vec<u8>, Option<Psn>)> {
        ServerCore::recovery_fetch(self, client, page, need)
    }

    fn recover_client_page(&self, client: ClientId, page: PageId) -> Result<RecoverPagePlan> {
        ServerCore::recover_client_page(self, client, page)
    }

    fn poll_recovery_needs(&self, provider: ClientId) -> Vec<(PageId, Psn)> {
        ServerCore::poll_recovery_needs(self, provider)
    }

    fn install_recovered(&self, client: ClientId, bytes: Vec<u8>) -> Result<()> {
        ServerCore::install_recovered(self, client, bytes)
    }

    fn config(&self) -> &SystemConfig {
        ServerCore::config(self)
    }

    fn config_shared(&self) -> Arc<SystemConfig> {
        ServerCore::config_shared(self)
    }

    fn metrics(&self) -> Arc<Metrics> {
        ServerCore::metrics(self)
    }
}
