//! The server's **dirty client table** (DCT, §3.2).
//!
//! One entry per `(page, client)` pair for which the client *may* have
//! updates not yet on disk:
//!
//! * inserted the first time the server grants the client an exclusive
//!   lock touching the page, recording the PSN the page had (footnote 4:
//!   the client sends the PSN of its cached copy with the request, or the
//!   server uses the PSN of the copy it ships);
//! * the PSN field is refreshed each time the server receives the page
//!   from the client;
//! * `RedoLSN` is set to the LSN of the first replacement log record
//!   written for the page;
//! * removed once the page is on disk and the client no longer holds any
//!   exclusive lock touching it.
//!
//! Property 1 (§3.1) rests on this bookkeeping: a client log record for
//! page P whose PSN is **less than** the PSN the server remembers for
//! (P, client) is already reflected in the server's copy of P.

use fgl_common::{ClientId, Lsn, PageId, Psn};
use fgl_wal::records::DctEntry;
use std::collections::HashMap;

/// The dirty client table.
#[derive(Default, Debug)]
pub struct Dct {
    entries: HashMap<(PageId, ClientId), DctEntry>,
}

impl Dct {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an entry at first exclusive grant (no-op if present).
    pub fn insert(&mut self, page: PageId, client: ClientId, psn: Option<Psn>) {
        self.entries.entry((page, client)).or_insert(DctEntry {
            page,
            client,
            psn,
            redo_lsn: None,
        });
    }

    /// Install an entry verbatim (checkpoint reload / restart rebuild).
    pub fn install(&mut self, entry: DctEntry) {
        self.entries.insert((entry.page, entry.client), entry);
    }

    /// Refresh the remembered PSN when the server receives the page from
    /// the client (§3.2). Also used at first page fetch when the insert
    /// happened without a PSN.
    pub fn set_psn(&mut self, page: PageId, client: ClientId, psn: Psn) {
        if let Some(e) = self.entries.get_mut(&(page, client)) {
            e.psn = Some(psn);
        }
    }

    /// Like [`set_psn`](Self::set_psn) but only fills a missing value.
    pub fn set_psn_if_unset(&mut self, page: PageId, client: ClientId, psn: Psn) {
        if let Some(e) = self.entries.get_mut(&(page, client)) {
            if e.psn.is_none() {
                e.psn = Some(psn);
            }
        }
    }

    /// Record the first replacement log record for the page (§3.2): every
    /// entry about the page with a NULL RedoLSN takes this LSN.
    pub fn note_replacement_record(&mut self, page: PageId, lsn: Lsn) {
        for e in self.entries.values_mut() {
            if e.page == page && e.redo_lsn.is_none() {
                e.redo_lsn = Some(lsn);
            }
        }
    }

    pub fn get(&self, page: PageId, client: ClientId) -> Option<&DctEntry> {
        self.entries.get(&(page, client))
    }

    pub fn psn_of(&self, page: PageId, client: ClientId) -> Option<Psn> {
        self.entries.get(&(page, client)).and_then(|e| e.psn)
    }

    /// All entries about one page.
    pub fn entries_for_page(&self, page: PageId) -> Vec<DctEntry> {
        let mut v: Vec<DctEntry> = self
            .entries
            .values()
            .filter(|e| e.page == page)
            .copied()
            .collect();
        v.sort_by_key(|e| e.client.0);
        v
    }

    /// All entries about one client.
    pub fn entries_for_client(&self, client: ClientId) -> Vec<DctEntry> {
        let mut v: Vec<DctEntry> = self
            .entries
            .values()
            .filter(|e| e.client == client)
            .copied()
            .collect();
        v.sort_by_key(|e| e.page.0);
        v
    }

    /// Remove one entry (page flushed + no exclusive locks, §3.2).
    pub fn remove(&mut self, page: PageId, client: ClientId) -> Option<DctEntry> {
        self.entries.remove(&(page, client))
    }

    /// Full snapshot, ordered, for server checkpoints.
    pub fn snapshot(&self) -> Vec<DctEntry> {
        let mut v: Vec<DctEntry> = self.entries.values().copied().collect();
        v.sort_by_key(|e| (e.page.0, e.client.0));
        v
    }

    /// Minimum RedoLSN across all entries (server checkpoint scan start).
    pub fn min_redo_lsn(&self) -> Option<Lsn> {
        self.entries.values().filter_map(|e| e.redo_lsn).min()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Crash: the DCT is volatile server state.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ClientId = ClientId(1);
    const C2: ClientId = ClientId(2);
    const P: PageId = PageId(7);

    #[test]
    fn insert_is_idempotent_and_keeps_first_psn() {
        let mut d = Dct::new();
        d.insert(P, C1, Some(Psn(5)));
        d.insert(P, C1, Some(Psn(9)));
        assert_eq!(d.psn_of(P, C1), Some(Psn(5)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn set_psn_refreshes_on_receive() {
        let mut d = Dct::new();
        d.insert(P, C1, None);
        assert_eq!(d.psn_of(P, C1), None);
        d.set_psn(P, C1, Psn(12));
        assert_eq!(d.psn_of(P, C1), Some(Psn(12)));
        d.set_psn_if_unset(P, C1, Psn(20));
        assert_eq!(d.psn_of(P, C1), Some(Psn(12)), "if_unset must not clobber");
    }

    #[test]
    fn replacement_record_sets_first_redo_lsn_only() {
        let mut d = Dct::new();
        d.insert(P, C1, Some(Psn(1)));
        d.insert(P, C2, Some(Psn(2)));
        d.note_replacement_record(P, Lsn(100));
        d.note_replacement_record(P, Lsn(200));
        assert_eq!(d.get(P, C1).unwrap().redo_lsn, Some(Lsn(100)));
        assert_eq!(d.get(P, C2).unwrap().redo_lsn, Some(Lsn(100)));
    }

    #[test]
    fn per_page_and_per_client_views() {
        let mut d = Dct::new();
        d.insert(P, C1, None);
        d.insert(P, C2, None);
        d.insert(PageId(9), C1, None);
        assert_eq!(d.entries_for_page(P).len(), 2);
        assert_eq!(d.entries_for_client(C1).len(), 2);
        assert_eq!(d.entries_for_client(C2).len(), 1);
    }

    #[test]
    fn min_redo_lsn_ignores_nulls() {
        let mut d = Dct::new();
        d.insert(P, C1, None);
        assert_eq!(d.min_redo_lsn(), None);
        d.note_replacement_record(P, Lsn(50));
        d.insert(PageId(9), C1, None);
        d.note_replacement_record(PageId(9), Lsn(30));
        assert_eq!(d.min_redo_lsn(), Some(Lsn(30)));
    }

    #[test]
    fn remove_and_clear() {
        let mut d = Dct::new();
        d.insert(P, C1, Some(Psn(1)));
        assert!(d.remove(P, C1).is_some());
        assert!(d.remove(P, C1).is_none());
        d.insert(P, C2, None);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn snapshot_round_trips_via_install() {
        let mut d = Dct::new();
        d.insert(P, C1, Some(Psn(3)));
        d.note_replacement_record(P, Lsn(44));
        let snap = d.snapshot();
        let mut d2 = Dct::new();
        for e in snap {
            d2.install(e);
        }
        assert_eq!(d2.get(P, C1), d.get(P, C1));
    }
}
