//! The `fgl` page server (§2, §3): global lock manager driver, buffer
//! pool with in-place writes, the dirty client table, replacement
//! logging, server checkpoints, the §4.1 server-logging baselines, and
//! restart recovery (§3.4/§3.5).

pub mod dct;
pub mod pagestore;
pub mod recovery;
pub mod runtime;

pub use dct::Dct;
pub use pagestore::PageStore;
pub use recovery::RestartReport;
pub use runtime::{LockResponse, ServerCore, ServerStats, ShardStats};
