//! The server's page storage: buffer pool over the database disk, the
//! space allocation map, and the §2 merge-on-receive procedure.
//!
//! I/O ordering (write-ahead of replacement log records, §3.1) is owned by
//! the runtime: every method that can evict dirty pages *returns* them,
//! and the runtime logs a replacement record before each one reaches the
//! disk.

use fgl_common::{FglError, PageId, Psn, Result};
use fgl_storage::bufferpool::BufferPool;
use fgl_storage::disk::DiskBackend;
use fgl_storage::merge::{merge_pages, MergeOutcome};
use fgl_storage::page::Page;
use fgl_storage::spacemap::SpaceMap;
use std::sync::Arc;

/// Dirty pages pushed out of the pool; the runtime must write them to
/// disk (after their replacement log records).
pub type EvictedDirty = Vec<Page>;

/// Buffer pool + disk + space map.
pub struct PageStore {
    pool: BufferPool,
    disk: Arc<dyn DiskBackend>,
    spacemap: SpaceMap,
    page_size: usize,
    merges: u64,
}

impl PageStore {
    pub fn new(disk: Arc<dyn DiskBackend>, pool_pages: usize, page_size: usize) -> Self {
        Self::with_partition(disk, pool_pages, page_size, 0, 1)
    }

    /// A store owning one page partition of a sharded server: fresh
    /// allocations walk the residue class `start mod step`, so sibling
    /// shards never hand out colliding page ids. `(0, 1)` is the whole
    /// id space (the unsharded server).
    pub fn with_partition(
        disk: Arc<dyn DiskBackend>,
        pool_pages: usize,
        page_size: usize,
        start: u64,
        step: u64,
    ) -> Self {
        PageStore {
            pool: BufferPool::new(pool_pages),
            disk,
            spacemap: SpaceMap::with_stride(start, step),
            page_size,
            merges: 0,
        }
    }

    /// Allocate a fresh page (PSN seeded from the space map, §2/\[18\]).
    pub fn allocate(&mut self) -> Result<(Page, EvictedDirty)> {
        let (id, seed) = self.spacemap.allocate();
        let page = Page::format(self.page_size, id, seed);
        let evicted = self.insert_dirty(page.clone());
        Ok((page, evicted))
    }

    /// Deallocate a page, remembering its final PSN in the space map.
    pub fn deallocate(&mut self, id: PageId) -> Result<()> {
        let psn = self.current_psn(id)?.unwrap_or(Psn::ZERO);
        self.pool.remove(id);
        self.spacemap.deallocate(id, psn)
    }

    fn insert_dirty(&mut self, page: Page) -> EvictedDirty {
        match self.pool.insert(page, true) {
            Some(ev) if ev.dirty => vec![ev.page],
            _ => Vec::new(),
        }
    }

    fn insert_clean(&mut self, page: Page) -> EvictedDirty {
        match self.pool.insert(page, false) {
            Some(ev) if ev.dirty => vec![ev.page],
            _ => Vec::new(),
        }
    }

    /// A copy of the page for shipping to a client. Reads through to disk.
    pub fn get_copy(&mut self, id: PageId) -> Result<(Page, EvictedDirty)> {
        if let Some(p) = self.pool.get(id) {
            return Ok((p.clone(), Vec::new()));
        }
        let page = self.disk.read_page(id)?.ok_or(FglError::PageNotFound(id))?;
        let evicted = self.insert_clean(page.clone());
        Ok((page, evicted))
    }

    /// The pool-resident copy, if any (counts as an LRU touch). A miss
    /// means the caller should read the disk *without holding the store
    /// lock* and hand the result to [`install_clean`](Self::install_clean).
    pub fn pool_copy(&mut self, id: PageId) -> Option<Page> {
        self.pool.get(id).cloned()
    }

    /// Is the page pool-resident? (LRU touch on hit.)
    pub fn pool_has(&mut self, id: PageId) -> bool {
        self.pool.get(id).is_some()
    }

    /// Handle to the backing disk, for I/O performed while no store lock
    /// is held (the simulated disk latency must not run under a shard
    /// mutex).
    pub fn disk_handle(&self) -> Arc<dyn DiskBackend> {
        self.disk.clone()
    }

    /// Install a copy the caller read from disk outside the lock. If a
    /// (necessarily at-least-as-new) pool copy appeared meanwhile, that
    /// copy wins and the disk read is discarded.
    pub fn install_clean(&mut self, page: Page) -> (Page, EvictedDirty) {
        if let Some(p) = self.pool.get(page.id()) {
            return (p.clone(), Vec::new());
        }
        let evicted = self.insert_clean(page.clone());
        (page, evicted)
    }

    /// §2 merge-on-receive: merge a copy arriving from a client with the
    /// resident version (pool, else disk). Returns the PSN carried by the
    /// incoming copy (DCT refresh) and the merge outcome.
    pub fn receive(&mut self, incoming: Page) -> Result<(Psn, MergeOutcome, EvictedDirty)> {
        let disk_copy = if self.pool.get(incoming.id()).is_some() {
            None
        } else {
            self.disk.read_page(incoming.id())?
        };
        self.receive_with(incoming, disk_copy)
    }

    /// [`receive`](Self::receive) with the disk read hoisted out:
    /// `disk_copy` is the caller's pre-fetched on-disk version, consulted
    /// only when the pool has no resident copy.
    pub fn receive_with(
        &mut self,
        incoming: Page,
        disk_copy: Option<Page>,
    ) -> Result<(Psn, MergeOutcome, EvictedDirty)> {
        let id = incoming.id();
        let incoming_psn = incoming.psn();
        let mut evicted = Vec::new();
        let resident = match self.pool.get(id) {
            Some(p) => Some(p.clone()),
            None => disk_copy,
        };
        let (merged, outcome) = match resident {
            Some(res) => merge_pages(&res, &incoming)?,
            None => {
                // First sighting of this page (allocated by the client via
                // the server, so normally resident; tolerate disk-less
                // arrival by treating the incoming copy as authoritative).
                let out = MergeOutcome {
                    merged_psn: incoming.psn(),
                    taken_from_incoming: incoming.slot_count() as usize,
                    kept_from_resident: 0,
                };
                (incoming, out)
            }
        };
        self.merges += 1;
        evicted.extend(self.insert_dirty(merged));
        Ok((incoming_psn, outcome, evicted))
    }

    /// Like [`get_copy`](Self::get_copy) but formats a fresh page (PSN
    /// seeded from the space map) when the page exists in the space map
    /// yet never reached disk — possible when a server crash wipes a pool
    /// holding a never-flushed allocation (§3.4 restart).
    pub fn get_or_format(&mut self, id: PageId) -> Result<(Page, EvictedDirty)> {
        match self.get_copy(id) {
            Ok(r) => Ok(r),
            Err(FglError::PageNotFound(_)) => {
                let seed = self.spacemap.seed_psn(id).unwrap_or(Psn::ZERO);
                let page = Page::format(self.page_size, id, seed);
                let evicted = self.insert_dirty(page.clone());
                Ok((page, evicted))
            }
            Err(e) => Err(e),
        }
    }

    /// Current PSN of the resident copy (pool, else disk), if any.
    pub fn current_psn(&mut self, id: PageId) -> Result<Option<Psn>> {
        if let Some(p) = self.pool.get(id) {
            return Ok(Some(p.psn()));
        }
        Ok(self.disk.read_page(id)?.map(|p| p.psn()))
    }

    /// The cached copy of a page if dirty, for flushing.
    pub fn dirty_copy(&mut self, id: PageId) -> Option<Page> {
        if self.pool.is_dirty(id) {
            self.pool.get(id).cloned()
        } else {
            None
        }
    }

    pub fn is_dirty(&self, id: PageId) -> bool {
        self.pool.is_dirty(id)
    }

    pub fn dirty_pages(&self) -> Vec<PageId> {
        self.pool.dirty_ids()
    }

    /// Write a page image in place on disk and mark the pool copy clean if
    /// it still matches. The caller has already logged the replacement
    /// record (§3.1).
    pub fn write_to_disk(&mut self, page: &Page) -> Result<()> {
        self.disk.write_page(page)?;
        self.mark_clean_if_match(page);
        Ok(())
    }

    /// The caller wrote `page` to disk (outside the store lock); mark the
    /// pool copy clean if it still matches that image.
    pub fn mark_clean_if_match(&mut self, page: &Page) {
        if let Some(resident) = self.pool.peek(page.id()) {
            if resident.psn() == page.psn() {
                self.pool.set_dirty(page.id(), false);
            }
        }
    }

    /// Read the on-disk version (restart recovery step 2 of §3.4).
    pub fn read_disk(&self, id: PageId) -> Result<Option<Page>> {
        self.disk.read_page(id)
    }

    /// Install a page into the pool marked dirty (restart recovery merges).
    pub fn install_dirty(&mut self, page: Page) -> EvictedDirty {
        self.insert_dirty(page)
    }

    /// Crash: volatile pool contents vanish; disk and space map survive.
    pub fn crash(&mut self) {
        self.pool.clear();
    }

    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    pub fn merges(&self) -> u64 {
        self.merges
    }

    pub fn allocated_pages(&self) -> Vec<PageId> {
        self.spacemap.allocated_pages()
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::SlotId;
    use fgl_storage::disk::MemDisk;

    fn store(pool: usize) -> PageStore {
        PageStore::new(Arc::new(MemDisk::new()), pool, 512)
    }

    #[test]
    fn allocate_and_get() {
        let mut s = store(4);
        let (p, ev) = s.allocate().unwrap();
        assert!(ev.is_empty());
        let (copy, _) = s.get_copy(p.id()).unwrap();
        assert_eq!(copy.id(), p.id());
        assert_eq!(s.pool_len(), 1);
    }

    #[test]
    fn get_missing_page_fails() {
        let mut s = store(4);
        assert!(matches!(
            s.get_copy(PageId(42)),
            Err(FglError::PageNotFound(_))
        ));
    }

    #[test]
    fn receive_merges_concurrent_updates() {
        let mut s = store(4);
        let (base, _) = s.allocate().unwrap();
        let pid = base.id();
        // Seed an object via a client-style copy.
        let mut c1 = base.clone();
        let slot = c1.insert_object(b"seed").unwrap();
        s.receive(c1.clone()).unwrap();
        // Two clients update the same object in callback order.
        let (ship1, _) = s.get_copy(pid).unwrap();
        let mut v1 = ship1.clone();
        v1.write_object(slot, b"aaaa").unwrap();
        s.receive(v1).unwrap();
        let (ship2, _) = s.get_copy(pid).unwrap();
        let mut v2 = ship2.clone();
        v2.write_object(slot, b"bbbb").unwrap();
        let (psn, outcome, _) = s.receive(v2.clone()).unwrap();
        assert_eq!(psn, v2.psn());
        assert!(outcome.merged_psn > v2.psn());
        let (merged, _) = s.get_copy(pid).unwrap();
        assert_eq!(merged.read_object(slot).unwrap(), b"bbbb");
    }

    #[test]
    fn eviction_returns_dirty_pages_for_flush() {
        let mut s = store(2);
        let (a, _) = s.allocate().unwrap();
        let (_b, ev) = s.allocate().unwrap();
        assert!(ev.is_empty());
        let (_c, ev) = s.allocate().unwrap();
        assert_eq!(ev.len(), 1, "third page evicts the LRU dirty page");
        assert_eq!(ev[0].id(), a.id());
        // Runtime writes it; page later readable from disk.
        s.write_to_disk(&ev[0]).unwrap();
        let (back, _) = s.get_copy(a.id()).unwrap();
        assert_eq!(back.id(), a.id());
    }

    #[test]
    fn write_to_disk_cleans_matching_pool_copy() {
        let mut s = store(4);
        let (p, _) = s.allocate().unwrap();
        assert!(s.is_dirty(p.id()));
        let copy = s.dirty_copy(p.id()).unwrap();
        s.write_to_disk(&copy).unwrap();
        assert!(!s.is_dirty(p.id()));
    }

    #[test]
    fn write_to_disk_keeps_dirty_when_pool_moved_on() {
        let mut s = store(4);
        let (p, _) = s.allocate().unwrap();
        let old_copy = s.dirty_copy(p.id()).unwrap();
        // Pool copy advances (another client update merged).
        let mut newer = old_copy.clone();
        newer.insert_object(b"x").unwrap();
        s.receive(newer).unwrap();
        s.write_to_disk(&old_copy).unwrap();
        assert!(s.is_dirty(p.id()), "newer pool copy must stay dirty");
    }

    #[test]
    fn crash_clears_pool_but_disk_survives() {
        let mut s = store(4);
        let (p, _) = s.allocate().unwrap();
        let copy = s.dirty_copy(p.id()).unwrap();
        s.write_to_disk(&copy).unwrap();
        s.crash();
        assert_eq!(s.pool_len(), 0);
        let back = s.read_disk(p.id()).unwrap();
        assert!(back.is_some());
    }

    #[test]
    fn deallocate_seeds_next_incarnation() {
        let mut s = store(4);
        let (p, _) = s.allocate().unwrap();
        let pid = p.id();
        // Bump the PSN a bit.
        let mut c = p.clone();
        c.insert_object(b"zz").unwrap();
        let final_psn = c.psn();
        s.receive(c).unwrap();
        s.deallocate(pid).unwrap();
        let (p2, _) = s.allocate().unwrap();
        assert_eq!(p2.id(), pid, "freed id reused");
        assert!(p2.psn() > final_psn, "PSN continues past prior incarnation");
    }

    #[test]
    fn receive_unknown_page_is_tolerated() {
        let mut s = store(4);
        let mut foreign = Page::format(512, PageId(33), Psn(5));
        foreign.insert_object(b"data").unwrap();
        let (psn, _, _) = s.receive(foreign.clone()).unwrap();
        assert_eq!(psn, foreign.psn());
        let (copy, _) = s.get_copy(PageId(33)).unwrap();
        assert_eq!(copy.read_object(SlotId(0)).unwrap(), b"data");
    }
}
