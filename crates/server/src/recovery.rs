//! Server restart recovery (§3.4) and the complex-crash variant (§3.5).
//!
//! After a server crash the buffer pool, GLM, DCT and the un-forced log
//! tail are gone; the database disk and the forced prefix of the server
//! log (replacement records + checkpoints) survive. Restart must
//!
//! (a) determine the pages requiring recovery,
//! (b) identify the clients involved,
//! (c) reconstruct the DCT, and
//! (d) coordinate the recovery among the involved clients,
//!
//! exactly the four duties §3.4 lists. Clients recover *their own*
//! updates to the affected pages by replaying their private logs —
//! private logs are never merged — and multiple clients may recover the
//! same page **in parallel**, coordinated through the `CallBack_P` lists
//! and the partial-state requests of §3.4 step 3.

use crate::runtime::ServerCore;
use fgl_common::{ClientId, Lsn, PageId, Psn, Result};
use fgl_net::peer::{ClientPeer, RecoveredPageOutcome};
use fgl_net::stats::MsgKind;
use fgl_obs::{emit, Event, LogOwner, RecoveryPhase};
use fgl_wal::records::LogPayload;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What restart recovery did (experiment E5 reports these).
#[derive(Clone, Debug, Default)]
pub struct RestartReport {
    /// Pages that needed client log replay.
    pub pages_recovered: usize,
    /// Clients that participated in page recovery.
    pub clients_involved: usize,
    /// (page, client) replay units executed.
    pub recovery_units: usize,
    /// Server log records scanned during DCT reconstruction.
    pub records_scanned: usize,
    /// Wall-clock duration of the whole restart.
    pub elapsed: Duration,
    /// Phase (a)+(b): gathering client states, rebuilding the GLM.
    pub gather: Duration,
    /// Phase (c): DCT reconstruction from checkpoint + replacement records.
    pub dct_rebuild: Duration,
    /// Phase (d): coordinated per-(page, client) log replay.
    pub replay: Duration,
}

impl ServerCore {
    /// Run §3.4 restart recovery against the currently registered
    /// (operational) clients. Crashed clients (complex crash, §3.5)
    /// simply aren't registered; their DCT entries are rebuilt from the
    /// surviving server log so their own client-crash recovery can run
    /// afterwards.
    pub fn restart_recovery(&self) -> Result<RestartReport> {
        let start = Instant::now();
        let peers = self.all_peers();
        let crashed = self.crashed_set();

        // ---- (a)+(b): gather client states, rebuild the GLM ----------------
        emit(Event::RecoveryPhase {
            owner: LogOwner::Server,
            phase: RecoveryPhase::Gather,
        });
        let mut dpt_by_client: HashMap<ClientId, Vec<(PageId, Lsn)>> = HashMap::new();
        let mut cached_by_client: HashMap<ClientId, HashMap<PageId, Psn>> = HashMap::new();
        // Clients report their full state; a restarting *partition* of a
        // multi-server system keeps only the slice in its residue class —
        // locks, DPT entries and cached copies on other instances' pages
        // are those servers' concern, and they kept serving throughout.
        for peer in &peers {
            let id = peer.client_id();
            self.net.msg(MsgKind::Recovery, 16);
            let report = peer.report_state();
            self.net.msg(MsgKind::Recovery, 64 + 24 * report.dpt.len());
            for lock in report.locks.iter().filter(|l| self.owns_page(l.page())) {
                self.glm_for(lock.page()).install_holder(id, *lock);
            }
            dpt_by_client.insert(
                id,
                report
                    .dpt
                    .iter()
                    .filter(|e| self.owns_page(e.page))
                    .map(|e| (e.page, e.redo_lsn))
                    .collect(),
            );
            cached_by_client.insert(
                id,
                report
                    .cached_pages
                    .into_iter()
                    .filter(|(p, _)| self.owns_page(*p))
                    .collect(),
            );
        }

        // Pages needing replay: in a client's DPT but not in its cache.
        let mut involved: HashMap<PageId, Vec<ClientId>> = HashMap::new();
        for (client, dpt) in &dpt_by_client {
            let cached = &cached_by_client[client];
            for (page, _) in dpt {
                if !cached.contains_key(page) {
                    involved.entry(*page).or_default().push(*client);
                }
            }
        }

        // ---- (c): reconstruct the DCT ---------------------------------------
        let gather = start.elapsed();
        emit(Event::RecoveryPhase {
            owner: LogOwner::Server,
            phase: RecoveryPhase::DctRebuild,
        });
        let dct_start = Instant::now();
        // Step 1: <PID, CID, NULL, NULL> for all DPT pages of operational
        // clients.
        for (client, dpt) in &dpt_by_client {
            for (page, _) in dpt {
                self.dct_for(*page).insert(*page, *client, None);
            }
        }
        // Step 2: read candidate pages from disk, remember their PSNs.
        let mut disk_psn: HashMap<PageId, Psn> = HashMap::new();
        for page in involved.keys() {
            if let Some(p) = self.store_for(*page).read_disk(*page)? {
                disk_psn.insert(*page, p.psn());
            }
        }
        // Step 3: reload the checkpoint DCT, then scan forward through
        // the shared checkpoint-anchored iterator — the floor is the
        // checkpointed DCT's minimum RedoLSN (or the low-water mark when
        // the checkpoint is unusable).
        let (scan_floor, ckpt_dct) = {
            let slog = self.slog_mut();
            match slog.checkpoint_entry() {
                Some(entry) => match entry.payload {
                    LogPayload::ServerCheckpoint { dct } => {
                        let min_redo = dct
                            .iter()
                            .filter_map(|e| e.redo_lsn)
                            .min()
                            .unwrap_or(Lsn::NIL);
                        (min_redo, dct)
                    }
                    _ => (slog.low_water(), Vec::new()),
                },
                None => (slog.low_water(), Vec::new()),
            }
        };
        // §3.5: checkpointed entries (which may reference crashed
        // clients' pages) seed the table, each in its page's shard.
        for e in ckpt_dct {
            self.dct_for(e.page).install(e);
        }
        let replacement_records: Vec<(Lsn, LogPayload)> = {
            let slog = self.slog_mut();
            slog.scan_from_checkpoint(scan_floor)
                .map(|e| (e.lsn, e.payload))
                .collect()
        };
        let records_scanned = replacement_records.len();
        for (lsn, payload) in replacement_records {
            if let LogPayload::Replacement(r) = payload {
                let mut dct = self.dct_for(r.page);
                for (cid, _) in &r.clients {
                    dct.insert(r.page, *cid, None);
                }
                dct.note_replacement_record(r.page, lsn);
                // Property 2: the replacement record matching the
                // on-disk PSN tells exactly which client updates the
                // disk copy holds.
                if disk_psn.get(&r.page) == Some(&r.psn) {
                    for (cid, psn) in &r.clients {
                        dct.set_psn(r.page, *cid, *psn);
                    }
                }
            }
        }
        // Step 4: pull cached DPT pages from operational clients and merge
        // them (their updates are in those copies).
        for peer in &peers {
            let id = peer.client_id();
            let dpt = &dpt_by_client[&id];
            let cached = &cached_by_client[&id];
            for (page, _) in dpt {
                if cached.contains_key(page) {
                    self.net.msg(MsgKind::Recovery, 16);
                    if let Some(bytes) = peer.ship_cached_page(*page) {
                        self.net.msg(MsgKind::PageShip, bytes.len());
                        self.install_recovered(id, bytes.to_vec())?;
                    }
                }
            }
        }

        // ---- (d): coordinate per-page client replay --------------------------
        let dct_rebuild = dct_start.elapsed();
        emit(Event::RecoveryPhase {
            owner: LogOwner::Server,
            phase: RecoveryPhase::Replay,
        });
        let replay_start = Instant::now();
        let peer_map: HashMap<ClientId, Arc<dyn ClientPeer>> =
            peers.iter().map(|p| (p.client_id(), p.clone())).collect();
        let units: Vec<(PageId, ClientId)> = involved
            .iter()
            .flat_map(|(page, clients)| clients.iter().map(|c| (*page, *c)))
            .collect();
        let involved_clients: HashSet<ClientId> = units.iter().map(|(_, c)| *c).collect();

        // Build the merged CallBack_P list for every (page, C) unit first.
        let mut cb_lists: HashMap<(PageId, ClientId), Vec<(fgl_common::ObjectId, Psn)>> =
            HashMap::new();
        for (page, c) in &units {
            let mut merged: HashMap<fgl_common::ObjectId, Psn> = HashMap::new();
            for peer in &peers {
                if peer.client_id() == *c {
                    continue;
                }
                self.net.msg(MsgKind::Recovery, 16);
                let from_lsn = dpt_by_client[&peer.client_id()]
                    .iter()
                    .find(|(p, _)| p == page)
                    .map(|(_, l)| *l)
                    .unwrap_or(Lsn::NIL);
                let list = peer.callback_list_for(*page, *c, from_lsn);
                self.net.msg(MsgKind::Recovery, 16 + 24 * list.len());
                for (obj, psn) in list {
                    let e = merged.entry(obj).or_insert(psn);
                    if psn > *e {
                        *e = psn;
                    }
                }
            }
            let mut list: Vec<_> = merged.into_iter().collect();
            list.sort_by_key(|(o, _)| (o.page.0, o.slot.0));
            cb_lists.insert((*page, *c), list);
        }

        // Replay units run in parallel — §3.4: "clients may recover the
        // same page in parallel"; cross-client dependencies resolve via
        // recovery_fetch/poll_recovery_needs.
        let unit_results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = units
                .iter()
                .map(|(page, c)| {
                    let peer = peer_map[c].clone();
                    let list = cb_lists[&(*page, *c)].clone();
                    let page = *page;
                    let c = *c;
                    scope.spawn(move || -> Result<()> {
                        // Base copy: the server's current merged view.
                        let (base, evicted) = self.store_for(page).get_or_format(page)?;
                        self.flush_images_pub(evicted)?;
                        let install_psn = self.dct_for(page).psn_of(page, c).unwrap_or(base.psn());
                        self.net.msg(MsgKind::Recovery, 32 + 24 * list.len());
                        self.net.msg(MsgKind::PageShip, base.size());
                        let outcome = peer.recover_page(page, base.into_bytes(), install_psn, list);
                        match outcome {
                            RecoveredPageOutcome::Done(bytes) => {
                                self.install_recovered(c, bytes)?;
                                Ok(())
                            }
                            RecoveredPageOutcome::Failed(msg) => {
                                Err(fgl_common::FglError::Protocol(format!(
                                    "client {c} failed to recover {page}: {msg}"
                                )))
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in unit_results {
            r?;
        }

        // Clients that were down across this restart must recover via the
        // §3.5 path (the rebuilt DCT cannot be trusted to cover them).
        self.mark_dct_incomplete(&crashed);
        // Fresh checkpoint so the next crash starts from the rebuilt DCT.
        self.mark_up();
        self.checkpoint()?;
        let replay = replay_start.elapsed();
        emit(Event::RecoveryPhase {
            owner: LogOwner::Server,
            phase: RecoveryPhase::Done,
        });
        let report = RestartReport {
            pages_recovered: involved.len(),
            clients_involved: involved_clients.len(),
            recovery_units: units.len(),
            records_scanned,
            elapsed: start.elapsed(),
            gather,
            dct_rebuild,
            replay,
        };
        let metrics = self.metrics();
        let strategy = self.config().logging_strategy.name();
        for (phase, took) in [
            ("gather", gather),
            ("dct_rebuild", dct_rebuild),
            ("replay", replay),
        ] {
            metrics.observe_named(
                &format!("recovery_phase_us_{strategy}_server_{phase}"),
                took.as_micros() as u64,
            );
        }
        metrics.add("server_restarts", 1);
        metrics.add("server_recovery_gather_us", gather.as_micros() as u64);
        metrics.add(
            "server_recovery_dct_rebuild_us",
            dct_rebuild.as_micros() as u64,
        );
        metrics.add("server_recovery_replay_us", replay.as_micros() as u64);
        metrics.add("server_recovery_records_scanned", records_scanned as u64);
        metrics.add("server_recovery_pages", report.pages_recovered as u64);
        Ok(report)
    }
}
