//! fgl-sched: a dependency-free M:N green-task scheduler.
//!
//! The simulator historically modeled every client as an OS thread, and
//! every simulated disk or network latency as a `thread::sleep` — capping
//! realistic scale at a few dozen clients. This crate multiplexes client
//! transactions, as **stackful green tasks**, onto a fixed worker pool: a
//! waiting client costs a parked task (a queue entry plus a timer-wheel
//! slot), not an OS thread.
//!
//! Design:
//! - [`run_scoped`] runs a batch of jobs as green tasks on `workers` OS
//!   threads and returns when all of them (and any subtasks they spawned
//!   via [`fanout`]) have finished. Jobs may borrow from the caller —
//!   the call joins everything before returning.
//! - Each task owns a heap-allocated stack; the `ctx` module switches between the
//!   worker's stack and the task's with one small assembly routine.
//! - [`pause`] is the drop-in replacement for `thread::sleep` at the
//!   simulated-latency points: on a green task it parks in the shared
//!   [`TimerWheel`]; on a plain OS thread it sleeps, so code that is not
//!   running under the scheduler behaves exactly as before.
//! - [`current_unparker`]/[`park_until`] are the primitive the local
//!   `parking_lot` shim uses to make condition-variable waits park the
//!   *task*: blocking primitives auto-detect task context, so the same
//!   protocol code runs unchanged under both the `threads` and `event`
//!   schedulers.
//!
//! Determinism: the scheduler never reorders the *semantics* of the
//! protocol — message counting happens inside the counted fabric before
//! any wait — so per-kind message counts for conflict-free workloads are
//! identical under both schedulers (asserted by the workspace
//! `scheduler_determinism` test).
//!
//! On architectures without a context-switch implementation (anything
//! but x86-64 today), [`supported`] is `false` and [`run_scoped`] /
//! [`fanout`] degrade to one OS thread per job — the `threads` behavior.

mod ctx;
mod stack;
mod timer;

pub use timer::TimerWheel;

use stack::{Stack, StackPool};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---- instrumentation --------------------------------------------------------

static TASKS_SPAWNED: AtomicU64 = AtomicU64::new(0);
static CONTEXT_SWITCHES: AtomicU64 = AtomicU64::new(0);
static MAX_RUN_QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);
static WORKER_PARKS: AtomicU64 = AtomicU64::new(0);
static STACK_HIGH_WATER: AtomicU64 = AtomicU64::new(0);
static RUNNABLE_WAIT_US: AtomicU64 = AtomicU64::new(0);
static RUNNABLE_WAITS: AtomicU64 = AtomicU64::new(0);

/// Process-wide scheduler instrumentation counters (see [`sched_stats`]).
///
/// All fields except the two high-water marks are cumulative for the
/// process; scope them to a run with [`SchedStats::delta_since`].
/// `runnable_wait_*` are only tracked while a trace hook is installed
/// (see [`set_trace_hook`]) so the untraced hot path never reads the
/// clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Green tasks ever spawned (seeds and `fanout` subtasks).
    pub tasks_spawned: u64,
    /// Worker → task context switches (task activations).
    pub context_switches: u64,
    /// Deepest run queue observed at any push (high-water mark).
    pub max_run_queue_depth: u64,
    /// Idle condvar waits by workers with an empty run queue.
    pub worker_parks: u64,
    /// Timer-wheel entries visited but not yet due (later rotation).
    pub timer_cascades: u64,
    /// Timer-wheel entries fired.
    pub timer_fires: u64,
    /// Deepest task-stack use observed at any switch point, in bytes
    /// (high-water mark; an underestimate — only suspension points are
    /// sampled, not the deepest frame between them).
    pub stack_high_water_bytes: u64,
    /// Total µs tasks spent queued runnable before a worker picked them
    /// up (only while a trace hook is installed).
    pub runnable_wait_us_total: u64,
    /// Number of queued→running transitions timed into
    /// `runnable_wait_us_total`.
    pub runnable_wait_count: u64,
    /// Effective task stack size in bytes (gauge — the size new stacks
    /// are allocated with, after env/API overrides).
    pub stack_size_bytes: u64,
    /// Stacks allocated fresh (first activations the pool could not
    /// serve).
    pub stacks_allocated: u64,
    /// Stacks returned to the pool by finished tasks.
    pub stacks_pooled: u64,
    /// Stack acquisitions served from the pool. In steady state
    /// `stacks_reused / (stacks_reused + stacks_allocated)` approaches 1.
    pub stacks_reused: u64,
    /// Pooled stacks trimmed past the warm limit (pages released with
    /// `madvise(MADV_FREE)` on Linux).
    pub stacks_madvised: u64,
}

impl SchedStats {
    /// Counters accumulated since `base` was captured. Monotonic fields
    /// subtract; the high-water marks keep their current value (they are
    /// gauges, not counters).
    pub fn delta_since(&self, base: &SchedStats) -> SchedStats {
        SchedStats {
            tasks_spawned: self.tasks_spawned - base.tasks_spawned,
            context_switches: self.context_switches - base.context_switches,
            max_run_queue_depth: self.max_run_queue_depth,
            worker_parks: self.worker_parks - base.worker_parks,
            timer_cascades: self.timer_cascades - base.timer_cascades,
            timer_fires: self.timer_fires - base.timer_fires,
            stack_high_water_bytes: self.stack_high_water_bytes,
            runnable_wait_us_total: self.runnable_wait_us_total - base.runnable_wait_us_total,
            runnable_wait_count: self.runnable_wait_count - base.runnable_wait_count,
            stack_size_bytes: self.stack_size_bytes,
            stacks_allocated: self.stacks_allocated - base.stacks_allocated,
            stacks_pooled: self.stacks_pooled - base.stacks_pooled,
            stacks_reused: self.stacks_reused - base.stacks_reused,
            stacks_madvised: self.stacks_madvised - base.stacks_madvised,
        }
    }
}

/// Snapshot the process-wide scheduler counters.
pub fn sched_stats() -> SchedStats {
    SchedStats {
        tasks_spawned: TASKS_SPAWNED.load(Ordering::Relaxed),
        context_switches: CONTEXT_SWITCHES.load(Ordering::Relaxed),
        max_run_queue_depth: MAX_RUN_QUEUE_DEPTH.load(Ordering::Relaxed),
        worker_parks: WORKER_PARKS.load(Ordering::Relaxed),
        timer_cascades: timer::TIMER_CASCADES.load(Ordering::Relaxed),
        timer_fires: timer::TIMER_FIRES.load(Ordering::Relaxed),
        stack_high_water_bytes: STACK_HIGH_WATER.load(Ordering::Relaxed),
        runnable_wait_us_total: RUNNABLE_WAIT_US.load(Ordering::Relaxed),
        runnable_wait_count: RUNNABLE_WAITS.load(Ordering::Relaxed),
        stack_size_bytes: stack_size() as u64,
        stacks_allocated: stack_pool().stats.allocated.load(Ordering::Relaxed),
        stacks_pooled: stack_pool().stats.pooled.load(Ordering::Relaxed),
        stacks_reused: stack_pool().stats.reused.load(Ordering::Relaxed),
        stacks_madvised: stack_pool().stats.madvised.load(Ordering::Relaxed),
    }
}

/// Called with `(trace_tag, wait_us)` each time a task that carries a
/// non-zero trace tag is picked up after waiting runnable in the queue.
pub type TraceHook = fn(tag: u64, wait_us: u64);

static TRACE_HOOK: OnceLock<TraceHook> = OnceLock::new();
static TRACE_HOOK_SET: AtomicBool = AtomicBool::new(false);

/// Install the process-wide runnable-wait hook (first caller wins). Also
/// switches on queued-at stamping, so `runnable_wait_*` in
/// [`SchedStats`] start accumulating.
pub fn set_trace_hook(hook: TraceHook) {
    let _ = TRACE_HOOK.set(hook);
    TRACE_HOOK_SET.store(true, Ordering::Release);
}

fn sched_now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

thread_local! {
    /// Trace-tag fallback for code running on a plain OS thread.
    static THREAD_TRACE_TAG: Cell<u64> = const { Cell::new(0) };
}

/// The current trace tag: an opaque u64 the tracing layer attaches to
/// whatever logical context is executing. On a green task it lives on the
/// task (so it follows the task across worker threads); on a plain OS
/// thread it is thread-local. 0 means "none".
pub fn trace_tag() -> u64 {
    match current_task() {
        Some(task) => task.trace_tag.load(Ordering::Relaxed),
        None => THREAD_TRACE_TAG.with(|c| c.get()),
    }
}

/// Set the current trace tag (see [`trace_tag`]).
pub fn set_trace_tag(tag: u64) {
    match current_task() {
        Some(task) => task.trace_tag.store(tag, Ordering::Relaxed),
        None => THREAD_TRACE_TAG.with(|c| c.set(tag)),
    }
}

/// Granularity of the shared timer wheel. Fine enough that the smallest
/// simulated latencies in the experiment configs (tens of microseconds)
/// round up by at most one tick.
const TICK: Duration = Duration::from_micros(20);

/// Idle workers re-check for shutdown/timers at least this often.
const IDLE_POLL: Duration = Duration::from_millis(1);

// ---- task states ------------------------------------------------------------

const QUEUED: u8 = 0;
const RUNNING: u8 = 1;
const PARKED: u8 = 2;
/// An unpark arrived while the task was running (or mid-park); the next
/// park attempt consumes it and returns immediately.
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// Why a task switched back to its worker.
#[derive(Clone, Copy)]
enum Intent {
    None,
    Yield,
    Park(Option<Instant>),
    Done,
}

// ---- stacks -----------------------------------------------------------------

/// Default task stack: 256 KiB reserved. Allocations this size are
/// served by `mmap` and only the touched pages become resident, so a
/// thousand mostly-idle tasks stay cheap. Harness workloads with a known
/// shallow `stack_high_water_bytes` can shrink it via [`set_stack_size`]
/// or `FGL_SCHED_STACK_KB`.
const DEFAULT_STACK: usize = 256 * 1024;

/// Smallest stack accepted: the protocol's deepest observed paths stay
/// well under this, but anything smaller risks silent corruption (task
/// stacks have no guard page).
pub const MIN_STACK: usize = 32 * 1024;

/// Panic unless `bytes` is a usable task-stack size: at least
/// [`MIN_STACK`] and a whole number of pages. A mis-sized stack fails
/// loudly here instead of overflowing mid-protocol.
fn validate_stack_size(bytes: usize, origin: &str) {
    if bytes == 0 {
        panic!("{origin}: task stack size must be non-zero");
    }
    if bytes < MIN_STACK {
        panic!(
            "{origin}: task stack of {bytes} bytes is below the {} KiB safety floor",
            MIN_STACK / 1024
        );
    }
    if !bytes.is_multiple_of(stack::PAGE) {
        panic!(
            "{origin}: task stack of {bytes} bytes is not a multiple of the {} B page size",
            stack::PAGE
        );
    }
}

/// `FGL_SCHED_STACK_KB` override, parsed and validated once. An invalid
/// value is a configuration error and panics with the offending value.
fn env_stack_size() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("FGL_SCHED_STACK_KB").ok()?;
        let kb: usize = raw
            .parse()
            .unwrap_or_else(|_| panic!("FGL_SCHED_STACK_KB must be an integer, got {raw:?}"));
        let bytes = kb
            .checked_mul(1024)
            .unwrap_or_else(|| panic!("FGL_SCHED_STACK_KB={kb} overflows"));
        validate_stack_size(bytes, "FGL_SCHED_STACK_KB");
        Some(bytes)
    })
}

static CONFIGURED_STACK: AtomicUsize = AtomicUsize::new(DEFAULT_STACK);

/// Set the task stack size for stacks allocated from now on (pooled
/// stacks of other sizes stay in their own size class). The
/// `FGL_SCHED_STACK_KB` environment override, when present, wins over
/// this. Panics on sizes below [`MIN_STACK`] or not page-multiples.
pub fn set_stack_size(bytes: usize) {
    validate_stack_size(bytes, "set_stack_size");
    CONFIGURED_STACK.store(bytes, Ordering::Relaxed);
}

/// The size new task stacks are allocated with.
pub fn stack_size() -> usize {
    env_stack_size().unwrap_or_else(|| CONFIGURED_STACK.load(Ordering::Relaxed))
}

/// The process-wide stack free list (see the `stack` module).
fn stack_pool() -> &'static StackPool {
    static POOL: OnceLock<StackPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let limit = std::env::var("FGL_SCHED_STACK_POOL_WARM")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(StackPool::DEFAULT_WARM_LIMIT);
        StackPool::new(limit)
    })
}

/// Pooled stacks kept fully resident per size class; stacks released
/// beyond this have their pages returned to the kernel (`MADV_FREE`)
/// while staying reusable. Also settable via `FGL_SCHED_STACK_POOL_WARM`.
pub fn set_stack_pool_warm_limit(n: usize) {
    stack_pool().set_warm_limit(n);
}

// ---- the shared scheduler ---------------------------------------------------

struct TimerTarget {
    task: Arc<TaskCore>,
    seq: u64,
}

struct Shared {
    queue: Mutex<VecDeque<Arc<TaskCore>>>,
    queue_cv: Condvar,
    timers: Mutex<TimerWheel<TimerTarget>>,
    seeds_left: AtomicUsize,
    shutdown: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct TaskCore {
    state: AtomicU8,
    /// Bumped once per park; timer entries carry the seq they were armed
    /// for, so a stale timer firing after an early wakeup is ignored.
    park_seq: AtomicU64,
    /// Saved stack pointer while the task is suspended; null until the
    /// first activation lazily acquires a stack.
    sp: Cell<*mut u8>,
    intent: Cell<Intent>,
    entry: Cell<Option<Box<dyn FnOnce() + Send + 'static>>>,
    /// Trace tag carried across worker threads (see [`trace_tag`]).
    trace_tag: AtomicU64,
    /// µs timestamp of the last queue push, `u64::MAX` when not stamped.
    /// Only written while a trace hook is installed.
    queued_at_us: AtomicU64,
    /// Highest address of the task stack, for high-water accounting
    /// (null until the stack is acquired).
    stack_top: Cell<*mut u8>,
    /// Acquired from the pool at first activation, returned on `Done`.
    stack: Cell<Option<Stack>>,
    shared: Arc<Shared>,
    /// Seed tasks gate scheduler shutdown; subtasks are joined by their
    /// parent's wait group instead.
    seed: bool,
    wg: Option<Arc<WaitGroup>>,
}

// SAFETY: `sp`, `intent`, `entry`, `stack` and `stack_top` are only
// touched by the worker currently running the task (or holding it
// freshly popped from the run queue); cross-worker handoff is
// synchronized by the queue mutex and the `state` atomic.
unsafe impl Send for TaskCore {}
unsafe impl Sync for TaskCore {}

/// Completion barrier for [`fanout`]: the parent task parks until every
/// subtask has finished; the first subtask panic is delivered to the
/// parent.
struct WaitGroup {
    remaining: AtomicUsize,
    waiter: Mutex<Option<Unparker>>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl WaitGroup {
    fn new(n: usize) -> Self {
        WaitGroup {
            remaining: AtomicUsize::new(n),
            waiter: Mutex::new(None),
            panic: Mutex::new(None),
        }
    }

    fn complete(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            if let Some(u) = self.waiter.lock().unwrap().take() {
                u.unpark();
            }
        }
    }

    fn wait(&self) {
        *self.waiter.lock().unwrap() = Some(current_unparker().expect("fanout wait on a task"));
        while self.remaining.load(Ordering::Acquire) != 0 {
            park_until(None);
        }
    }
}

// ---- per-worker thread-local state ------------------------------------------

struct WorkerTls {
    shared: Arc<Shared>,
    /// Saved worker stack pointer while a task runs; the task switches
    /// back through it.
    worker_sp: Cell<*mut u8>,
    current: RefCell<Option<Arc<TaskCore>>>,
}

thread_local! {
    static TLS: RefCell<Option<Rc<WorkerTls>>> = const { RefCell::new(None) };
}

fn worker_tls() -> Option<Rc<WorkerTls>> {
    TLS.with(|t| t.borrow().clone())
}

fn current_task() -> Option<Arc<TaskCore>> {
    TLS.with(|t| {
        t.borrow()
            .as_ref()
            .and_then(|tls| tls.current.borrow().clone())
    })
}

// ---- public API -------------------------------------------------------------

/// Whether green tasks are available on this architecture.
pub fn supported() -> bool {
    ctx::SUPPORTED
}

/// True when the calling code is running on a green task.
pub fn on_task() -> bool {
    TLS.with(|t| {
        t.borrow()
            .as_ref()
            .is_some_and(|tls| tls.current.borrow().is_some())
    })
}

/// Worker-pool width used by `run_scoped` callers that don't choose one:
/// one worker per core, but at least two so a task parked mid-protocol
/// never leaves the pool without a runner.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

/// Drop-in replacement for `thread::sleep` at simulated-latency points:
/// parks the green task in the timer wheel when called on one, sleeps
/// the OS thread otherwise. Never returns before `d` has elapsed.
pub fn pause(d: Duration) {
    if d.is_zero() {
        return;
    }
    if !on_task() {
        std::thread::sleep(d);
        return;
    }
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        park_until(Some(deadline));
    }
}

/// Reschedule the current task (or OS thread) without blocking.
pub fn yield_now() {
    if on_task() {
        switch_out(Intent::Yield);
    } else {
        std::thread::yield_now();
    }
}

/// Wake handle for a parked task; clonable and usable from any thread.
#[derive(Clone)]
pub struct Unparker {
    task: Arc<TaskCore>,
}

impl Unparker {
    pub fn unpark(&self) {
        unpark_task(&self.task);
    }
}

/// Unparker for the calling green task; `None` on a plain OS thread.
/// The local `parking_lot` shim uses this to decide whether a condvar
/// wait should park the task or the thread.
pub fn current_unparker() -> Option<Unparker> {
    current_task().map(|task| Unparker { task })
}

/// Park the calling green task until [`Unparker::unpark`] or `deadline`.
/// May wake spuriously (a stale timer or a consumed notification), so
/// callers re-check their condition in a loop — exactly the condvar
/// contract. Must be called on a green task.
pub fn park_until(deadline: Option<Instant>) {
    let task = current_task().expect("park_until called off-task");
    // Consume a notification that raced ahead of the park.
    if task
        .state
        .compare_exchange(NOTIFIED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        return;
    }
    drop(task);
    switch_out(Intent::Park(deadline));
}

/// Push a runnable task onto the shared queue, maintaining the
/// queue-depth high-water mark and (when a trace hook is installed) the
/// queued-at stamp used for runnable-wait attribution.
fn push_runnable(shared: &Shared, task: Arc<TaskCore>) {
    if TRACE_HOOK_SET.load(Ordering::Acquire) {
        task.queued_at_us.store(sched_now_us(), Ordering::Relaxed);
    }
    let mut queue = shared.queue.lock().unwrap();
    queue.push_back(task);
    let depth = queue.len() as u64;
    drop(queue);
    MAX_RUN_QUEUE_DEPTH.fetch_max(depth, Ordering::Relaxed);
    shared.queue_cv.notify_one();
}

fn unpark_task(task: &Arc<TaskCore>) {
    loop {
        match task.state.load(Ordering::Acquire) {
            PARKED => {
                if task
                    .state
                    .compare_exchange(PARKED, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    push_runnable(&task.shared, task.clone());
                    return;
                }
            }
            RUNNING => {
                if task
                    .state
                    .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return;
                }
            }
            // QUEUED and NOTIFIED already guarantee a wakeup; DONE needs
            // none.
            _ => return,
        }
    }
}

/// Run `jobs` concurrently and return once all have finished. On a green
/// task this spawns subtasks onto the running scheduler and parks the
/// caller until they complete; elsewhere it falls back to scoped OS
/// threads. Panics in a job propagate to the caller after all jobs have
/// settled, mirroring `thread::scope`.
pub fn fanout<'env>(jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
    if jobs.is_empty() {
        return;
    }
    if on_task() {
        let shared = worker_tls().expect("on_task implies worker").shared.clone();
        let wg = Arc::new(WaitGroup::new(jobs.len()));
        for job in jobs {
            // SAFETY: lifetime erasure only; `wg.wait()` below joins
            // every subtask before this frame returns, so borrows in the
            // closures outlive their use.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'env>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(job)
            };
            spawn_onto(&shared, job, false, Some(wg.clone()));
        }
        wg.wait();
        if let Some(p) = wg.panic.lock().unwrap().take() {
            resume_unwind(p);
        }
        return;
    }
    std::thread::scope(|scope| {
        for job in jobs {
            scope.spawn(job);
        }
    });
}

/// Run `jobs` as green tasks on a pool of `workers` OS threads (the
/// calling thread is one of them) and return once every job — and every
/// subtask spawned via [`fanout`] — has finished. Jobs may borrow from
/// the caller's environment. Returns the number of pool threads actually
/// used (0 when green tasks are unsupported and the call degraded to one
/// OS thread per job). The first job panic is re-raised after the pool
/// drains, mirroring `thread::scope`.
pub fn run_scoped<'env>(workers: usize, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) -> usize {
    if jobs.is_empty() {
        return 0;
    }
    assert!(!on_task(), "run_scoped cannot be nested inside a task");
    if !ctx::SUPPORTED {
        std::thread::scope(|scope| {
            for job in jobs {
                scope.spawn(job);
            }
        });
        return 0;
    }
    let workers = workers.max(1);
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        timers: Mutex::new(TimerWheel::new(TICK)),
        seeds_left: AtomicUsize::new(jobs.len()),
        shutdown: AtomicBool::new(false),
        panic: Mutex::new(None),
    });
    for job in jobs {
        // SAFETY: lifetime erasure only; the worker scope below joins
        // every task before `run_scoped` returns.
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        spawn_onto(&shared, job, true, None);
    }
    std::thread::scope(|scope| {
        for _ in 1..workers {
            let shared = shared.clone();
            scope.spawn(move || worker_loop(&shared));
        }
        worker_loop(&shared);
    });
    // Stale entries for tasks that were woken early would otherwise keep
    // task→shared→timer→task reference cycles alive.
    shared.timers.lock().unwrap().clear();
    if let Some(p) = shared.panic.lock().unwrap().take() {
        resume_unwind(p);
    }
    workers
}

// ---- scheduler internals ----------------------------------------------------

fn spawn_onto(
    shared: &Arc<Shared>,
    job: Box<dyn FnOnce() + Send + 'static>,
    seed: bool,
    wg: Option<Arc<WaitGroup>>,
) {
    // No stack yet: the first activation acquires one from the pool (see
    // `run_task`), so a large spawned-but-not-started backlog costs queue
    // entries, not stacks.
    //
    // A fresh task inherits the spawner's trace tag, so `fanout` subtasks
    // (callback deliveries, recovery jobs) stay causally linked to the
    // span that spawned them.
    let task = Arc::new(TaskCore {
        state: AtomicU8::new(QUEUED),
        park_seq: AtomicU64::new(0),
        sp: Cell::new(std::ptr::null_mut()),
        intent: Cell::new(Intent::None),
        entry: Cell::new(Some(job)),
        trace_tag: AtomicU64::new(trace_tag()),
        queued_at_us: AtomicU64::new(u64::MAX),
        stack_top: Cell::new(std::ptr::null_mut()),
        stack: Cell::new(None),
        shared: shared.clone(),
        seed,
        wg,
    });
    TASKS_SPAWNED.fetch_add(1, Ordering::Relaxed);
    push_runnable(shared, task);
}

/// First frame of every task. Runs the job under `catch_unwind`, records
/// a panic, then switches back to the worker for good. Everything owned
/// by this frame is dropped *before* the final switch — frames live at
/// that point are abandoned with the stack, never unwound.
extern "C" fn trampoline() -> ! {
    let task = current_task().expect("trampoline without a current task");
    let job = task.entry.take().expect("task entry already taken");
    let result = catch_unwind(AssertUnwindSafe(job));
    if let Err(payload) = result {
        let slot = match &task.wg {
            Some(wg) => &wg.panic,
            None => &task.shared.panic,
        };
        let mut slot = slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    drop(task);
    switch_out(Intent::Done);
    unreachable!("completed task resumed");
}

/// Switch from the current task back to its worker. All TLS borrows and
/// owned handles are released before the switch: for `Done` the frame is
/// abandoned (drops would never run), and for the resumable intents the
/// worker mutates the same TLS cells while we are suspended.
fn switch_out(intent: Intent) {
    let (task_sp_cell, worker_sp) = TLS.with(|t| {
        let borrow = t.borrow();
        let tls = borrow.as_ref().expect("switch_out off-worker");
        let current = tls.current.borrow();
        let task = current.as_ref().expect("switch_out without current task");
        task.intent.set(intent);
        (task.sp.as_ptr(), tls.worker_sp.get())
    });
    // SAFETY: `worker_sp` is the stack the worker saved when it switched
    // into this task; `task_sp_cell` stays valid because the worker holds
    // an `Arc` to the task for the whole activation.
    unsafe { ctx::fgl_sched_switch(task_sp_cell, worker_sp) };
}

fn worker_loop(shared: &Arc<Shared>) {
    let tls = Rc::new(WorkerTls {
        shared: shared.clone(),
        worker_sp: Cell::new(std::ptr::null_mut()),
        current: RefCell::new(None),
    });
    TLS.with(|t| {
        let prev = t.borrow_mut().replace(tls.clone());
        assert!(prev.is_none(), "nested worker_loop on one thread");
    });
    loop {
        fire_due_timers(shared);
        let popped = shared.queue.lock().unwrap().pop_front();
        if let Some(task) = popped {
            run_task(&tls, task);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let wait = shared
            .timers
            .lock()
            .unwrap()
            .next_deadline()
            .map(|d| d.saturating_duration_since(Instant::now()))
            .unwrap_or(IDLE_POLL)
            .min(IDLE_POLL);
        let queue = shared.queue.lock().unwrap();
        if queue.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
            WORKER_PARKS.fetch_add(1, Ordering::Relaxed);
            let _ = shared
                .queue_cv
                .wait_timeout(queue, wait.max(Duration::from_micros(1)))
                .unwrap();
        }
    }
    TLS.with(|t| t.borrow_mut().take());
}

fn fire_due_timers(shared: &Arc<Shared>) {
    let fired = shared.timers.lock().unwrap().advance(Instant::now());
    for t in fired {
        // A stale entry (the task was unparked early and has parked
        // again since) is ignored; at worst a matching-seq entry for a
        // task that already resumed produces a spurious notification.
        if t.task.park_seq.load(Ordering::Acquire) == t.seq {
            unpark_task(&t.task);
        }
    }
}

fn run_task(tls: &Rc<WorkerTls>, task: Arc<TaskCore>) {
    CONTEXT_SWITCHES.fetch_add(1, Ordering::Relaxed);
    if TRACE_HOOK_SET.load(Ordering::Acquire) {
        let queued_at = task.queued_at_us.swap(u64::MAX, Ordering::Relaxed);
        if queued_at != u64::MAX {
            let wait = sched_now_us().saturating_sub(queued_at);
            RUNNABLE_WAIT_US.fetch_add(wait, Ordering::Relaxed);
            RUNNABLE_WAITS.fetch_add(1, Ordering::Relaxed);
            let tag = task.trace_tag.load(Ordering::Relaxed);
            if tag != 0 {
                if let Some(hook) = TRACE_HOOK.get() {
                    hook(tag, wait);
                }
            }
        }
    }
    task.state.store(RUNNING, Ordering::Release);
    if task.sp.get().is_null() {
        // First activation: acquire a (usually recycled) stack and lay
        // out the bootstrap frame on it.
        let stack = stack_pool().acquire(stack_size());
        let top = stack.top();
        // SAFETY: `top` is one past a freshly acquired, writable stack
        // region of at least MIN_STACK bytes.
        task.sp.set(unsafe { ctx::bootstrap(top, trampoline) });
        task.stack_top.set(top);
        task.stack.set(Some(stack));
    }
    tls.current.borrow_mut().replace(task.clone());
    // SAFETY: `task.sp` holds either the bootstrap frame or the stack
    // pointer saved at the task's last `switch_out`; the queue mutex
    // hand-off ordered that write before this read.
    unsafe { ctx::fgl_sched_switch(tls.worker_sp.as_ptr(), task.sp.get()) };
    tls.current.borrow_mut().take();
    // `task.sp` now holds the stack pointer saved at the switch-out; the
    // distance from the stack top is this activation's depth.
    let used = (task.stack_top.get() as usize).saturating_sub(task.sp.get() as usize) as u64;
    STACK_HIGH_WATER.fetch_max(used, Ordering::Relaxed);
    let shared = &tls.shared;
    match task.intent.replace(Intent::None) {
        Intent::Done => {
            task.state.store(DONE, Ordering::Release);
            // The abandoned stack goes back to the free list for the
            // next spawn (the task frame was already dropped inside the
            // trampoline before its final switch).
            if let Some(stack) = task.stack.take() {
                stack_pool().release(stack);
            }
            if let Some(wg) = &task.wg {
                wg.complete();
            }
            if task.seed && shared.seeds_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                shared.shutdown.store(true, Ordering::Release);
                shared.queue_cv.notify_all();
            }
        }
        Intent::Yield => {
            task.state.store(QUEUED, Ordering::Release);
            push_runnable(shared, task);
        }
        Intent::Park(deadline) => {
            let seq = task.park_seq.fetch_add(1, Ordering::AcqRel) + 1;
            if let Some(d) = deadline {
                shared.timers.lock().unwrap().insert(
                    d,
                    TimerTarget {
                        task: task.clone(),
                        seq,
                    },
                );
            }
            if task
                .state
                .compare_exchange(RUNNING, PARKED, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // Notified while switching out: runnable again at once.
                task.state.store(QUEUED, Ordering::Release);
                push_runnable(shared, task);
            }
        }
        Intent::None => unreachable!("task switched out without an intent"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn boxed<'env>(f: impl FnOnce() + Send + 'env) -> Box<dyn FnOnce() + Send + 'env> {
        Box::new(f)
    }

    #[test]
    fn runs_every_job_with_borrows() {
        let counter = AtomicU32::new(0);
        let jobs = (0..100)
            .map(|_| {
                boxed(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        run_scoped(2, jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn many_tasks_few_workers_with_pauses() {
        if !supported() {
            return;
        }
        let counter = AtomicU32::new(0);
        let jobs = (0..256)
            .map(|_| {
                boxed(|| {
                    pause(Duration::from_micros(200));
                    counter.fetch_add(1, Ordering::Relaxed);
                    pause(Duration::from_micros(100));
                })
            })
            .collect();
        run_scoped(2, jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn pause_never_returns_early() {
        if !supported() {
            return;
        }
        let jobs = (0..8)
            .map(|_| {
                boxed(|| {
                    let start = Instant::now();
                    pause(Duration::from_millis(5));
                    assert!(start.elapsed() >= Duration::from_millis(5));
                })
            })
            .collect();
        run_scoped(2, jobs);
    }

    #[test]
    fn fanout_joins_subtasks_and_their_results() {
        if !supported() {
            return;
        }
        let total = AtomicU32::new(0);
        run_scoped(
            2,
            vec![boxed(|| {
                let results: Mutex<Vec<u32>> = Mutex::new(Vec::new());
                let jobs = (0..10u32)
                    .map(|i| {
                        let results = &results;
                        boxed(move || {
                            pause(Duration::from_micros(50));
                            results.lock().unwrap().push(i);
                        })
                    })
                    .collect();
                fanout(jobs);
                let got = results.into_inner().unwrap();
                assert_eq!(got.len(), 10);
                total.fetch_add(got.iter().sum::<u32>(), Ordering::Relaxed);
            })],
        );
        assert_eq!(total.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn nested_fanout() {
        if !supported() {
            return;
        }
        let count = AtomicU32::new(0);
        run_scoped(
            3,
            vec![boxed(|| {
                fanout(
                    (0..4)
                        .map(|_| {
                            boxed(|| {
                                fanout(
                                    (0..4)
                                        .map(|_| {
                                            boxed(|| {
                                                pause(Duration::from_micros(30));
                                                count.fetch_add(1, Ordering::Relaxed);
                                            })
                                        })
                                        .collect(),
                                );
                            })
                        })
                        .collect(),
                );
            })],
        );
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn unparker_wakes_a_parked_task() {
        if !supported() {
            return;
        }
        let woke = AtomicBool::new(false);
        let handle: Mutex<Option<Unparker>> = Mutex::new(None);
        run_scoped(2, {
            vec![
                boxed(|| {
                    *handle.lock().unwrap() = Some(current_unparker().unwrap());
                    // Long backstop: the sibling's unpark must arrive first.
                    park_until(Some(Instant::now() + Duration::from_secs(5)));
                    woke.store(true, Ordering::Release);
                }),
                boxed(|| {
                    pause(Duration::from_millis(2));
                    loop {
                        if let Some(u) = handle.lock().unwrap().take() {
                            u.unpark();
                            break;
                        }
                        yield_now();
                    }
                }),
            ]
        });
        assert!(woke.load(Ordering::Acquire));
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        if !supported() {
            return;
        }
        let survived = Arc::new(AtomicU32::new(0));
        let s2 = survived.clone();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_scoped(
                2,
                vec![
                    boxed(|| panic!("boom")),
                    boxed(move || {
                        pause(Duration::from_millis(1));
                        s2.fetch_add(1, Ordering::Relaxed);
                    }),
                ],
            );
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(
            survived.load(Ordering::Relaxed),
            1,
            "other tasks still drain"
        );
    }

    #[test]
    fn stacks_recycle_across_run_scoped_generations() {
        if !supported() {
            return;
        }
        let before = sched_stats();
        for _ in 0..3 {
            let counter = AtomicU32::new(0);
            let jobs = (0..64)
                .map(|_| {
                    boxed(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            run_scoped(2, jobs);
            assert_eq!(counter.load(Ordering::Relaxed), 64);
        }
        let delta = sched_stats().delta_since(&before);
        assert!(delta.tasks_spawned >= 192);
        // Every finished task returned its stack…
        assert!(
            delta.stacks_pooled >= 192,
            "finished tasks must pool their stacks (pooled {})",
            delta.stacks_pooled
        );
        // …and later activations were served from the pool instead of
        // the allocator (run-to-completion jobs on 2 workers need only a
        // handful of live stacks).
        assert!(
            delta.stacks_reused > 0,
            "later generations must reuse pooled stacks"
        );
        assert!(
            delta.stacks_allocated < delta.tasks_spawned,
            "lazy pooled stacks: {} allocations for {} tasks",
            delta.stacks_allocated,
            delta.tasks_spawned
        );
    }

    #[test]
    fn effective_stack_size_is_surfaced_and_settable() {
        let base = sched_stats().stack_size_bytes;
        assert!(base as usize >= MIN_STACK);
        if std::env::var("FGL_SCHED_STACK_KB").is_ok() {
            return; // env override wins; nothing to set
        }
        set_stack_size(MIN_STACK);
        assert_eq!(sched_stats().stack_size_bytes as usize, MIN_STACK);
        set_stack_size(base as usize);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_stack_size_is_rejected() {
        validate_stack_size(0, "test");
    }

    #[test]
    #[should_panic(expected = "safety floor")]
    fn tiny_stack_size_is_rejected() {
        set_stack_size(MIN_STACK - stack::PAGE);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn unaligned_stack_size_is_rejected() {
        set_stack_size(MIN_STACK + 1024);
    }

    #[test]
    fn off_task_primitives_fall_back() {
        assert!(!on_task());
        assert!(current_unparker().is_none());
        let start = Instant::now();
        pause(Duration::from_millis(2));
        assert!(start.elapsed() >= Duration::from_millis(2));
        yield_now();
    }
}
