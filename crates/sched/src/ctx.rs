//! Stackful context switching.
//!
//! One tiny assembly routine, `fgl_sched_switch(save, load)`, stores the
//! callee-saved register set and the stack pointer of the caller, writes
//! the resulting stack pointer to `*save`, switches to the stack pointer
//! `load`, restores the register set found there and returns into
//! whatever return address that stack holds. A task's very first
//! activation returns into [`bootstrap`]'s trampoline entry; every later
//! activation returns into the `fgl_sched_switch` call the task suspended
//! in.
//!
//! Only the integer callee-saved registers are switched: on x86-64 SysV
//! the vector registers are all caller-saved, so the compiler has already
//! spilled any live ones around the `extern "C"` call.
//!
//! On architectures without an implementation here, [`SUPPORTED`] is
//! `false` and the scheduler falls back to one OS thread per task (the
//! behavior of the `threads` scheduler), keeping the build portable.

#[cfg(target_arch = "x86_64")]
mod imp {
    std::arch::global_asm!(
        ".text",
        ".globl fgl_sched_switch",
        ".hidden fgl_sched_switch",
        ".align 16",
        "fgl_sched_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    );

    extern "C" {
        pub fn fgl_sched_switch(save: *mut *mut u8, load: *mut u8);
    }

    pub const SUPPORTED: bool = true;

    /// Lay out a bootstrap frame on a fresh stack so that the first
    /// switch into it "returns" into `entry` with the ABI-required stack
    /// alignment (rsp ≡ 8 mod 16 at function entry). Returns the initial
    /// stack pointer to hand to `fgl_sched_switch`.
    ///
    /// # Safety
    /// `stack_top` must point one-past-the-end of a writable region with
    /// at least 128 bytes below it.
    pub unsafe fn bootstrap(stack_top: *mut u8, entry: extern "C" fn() -> !) -> *mut u8 {
        let top = (stack_top as usize) & !15usize;
        let mut sp = top as *mut usize;
        // Fake return address: stops unwinders and faults loudly if the
        // trampoline ever returned.
        sp = sp.sub(1);
        *sp = 0;
        // `ret` target of the first switch.
        sp = sp.sub(1);
        *sp = entry as usize;
        // Zeroed r15, r14, r13, r12, rbx, rbp.
        for _ in 0..6 {
            sp = sp.sub(1);
            *sp = 0;
        }
        sp as *mut u8
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    pub const SUPPORTED: bool = false;

    /// # Safety
    /// Never called when `SUPPORTED` is false.
    pub unsafe fn fgl_sched_switch(_save: *mut *mut u8, _load: *mut u8) {
        unreachable!("context switch on unsupported architecture")
    }

    /// # Safety
    /// Never called when `SUPPORTED` is false.
    pub unsafe fn bootstrap(_stack_top: *mut u8, _entry: extern "C" fn() -> !) -> *mut u8 {
        unreachable!("bootstrap on unsupported architecture")
    }
}

pub use imp::{bootstrap, fgl_sched_switch, SUPPORTED};
