//! Pooled, page-aligned task stacks.
//!
//! A green task's dominant fixed cost is its stack. Two mechanisms keep
//! that cost off the scaling path:
//!
//! 1. **Lazy allocation** — `spawn` does not allocate; a task gets its
//!    stack at first *activation* (see `run_task` in `lib.rs`). A batch
//!    of 100k spawned-but-not-yet-started tasks costs 100k queue entries,
//!    not 100k stacks.
//! 2. **Pooling** — a finished task returns its stack to a process-wide
//!    free list keyed by size class instead of freeing it. In steady
//!    state the number of live stacks tracks the number of *in-flight*
//!    tasks (roughly the worker count plus parked tasks), not the number
//!    of tasks ever spawned, and the reuse rate approaches 100%.
//!
//! Pooled stacks beyond a per-size-class *warm limit* are kept but their
//! pages are released back to the kernel with `madvise(MADV_FREE)` (a
//! best-effort raw syscall — this crate is dependency-free), so a burst
//! of concurrency does not pin its high-water mark in RSS forever.
//!
//! Stacks are allocated page-aligned directly from the global allocator;
//! they are deliberately never zeroed, so only touched pages become
//! resident.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Stack sizes must be multiples of this (and the allocation is aligned
/// to it, so `madvise` ranges are always page-granular).
pub const PAGE: usize = 4096;

/// A page-aligned, uninitialized task stack.
pub struct Stack {
    base: *mut u8,
    size: usize,
}

// SAFETY: the raw pointer is an exclusively-owned heap allocation; a
// `Stack` moves between threads only through the pool mutex or inside a
// `TaskCore` (whose cross-worker hand-off is synchronized by the run
// queue).
unsafe impl Send for Stack {}

impl Stack {
    fn layout(size: usize) -> Layout {
        debug_assert!(size > 0 && size.is_multiple_of(PAGE));
        Layout::from_size_align(size, PAGE).expect("stack layout")
    }

    fn alloc(size: usize) -> Stack {
        let layout = Self::layout(size);
        // SAFETY: non-zero, page-aligned layout. Deliberately
        // uninitialized — zeroing would commit every page up front.
        let base = unsafe { alloc(layout) };
        if base.is_null() {
            handle_alloc_error(layout);
        }
        Stack { base, size }
    }

    /// One past the highest usable byte (x86-64 stacks grow down).
    pub fn top(&self) -> *mut u8 {
        // SAFETY: one-past-the-end of the owned allocation.
        unsafe { self.base.add(self.size) }
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Release the physical pages behind a cold pooled stack, keeping the
    /// virtual range valid for reuse (`MADV_FREE`: contents become
    /// undefined, which is fine — stacks are re-bootstrapped on reuse).
    /// Best-effort and Linux-only; elsewhere this is a no-op and "cold"
    /// only means "beyond the warm limit".
    fn release_pages(&self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            const SYS_MADVISE: usize = 28;
            const MADV_FREE: usize = 8;
            let ret: isize;
            // SAFETY: `base..base+size` is an owned, page-aligned mapping;
            // MADV_FREE never unmaps, it only lets the kernel reclaim the
            // pages lazily (refaulting as zero pages).
            unsafe {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") SYS_MADVISE => ret,
                    in("rdi") self.base,
                    in("rsi") self.size,
                    in("rdx") MADV_FREE,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            let _ = ret; // best-effort: an old kernel failing is harmless
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        // SAFETY: allocated in `Stack::alloc` with the identical layout.
        unsafe { dealloc(self.base, Self::layout(self.size)) };
    }
}

/// Cumulative pool counters (surfaced through `SchedStats`).
#[derive(Default)]
pub struct PoolStats {
    /// Stacks allocated fresh because the pool had none of the size.
    pub allocated: AtomicU64,
    /// Stacks returned to the pool by finished tasks.
    pub pooled: AtomicU64,
    /// Acquisitions served from the pool instead of the allocator.
    pub reused: AtomicU64,
    /// Pooled stacks trimmed past the warm limit (`madvise(MADV_FREE)`).
    pub madvised: AtomicU64,
}

/// One size class: warm stacks are fully resident, cold ones have had
/// their pages released. Acquire prefers warm.
#[derive(Default)]
struct Class {
    warm: Vec<Stack>,
    cold: Vec<Stack>,
}

/// A free list of task stacks keyed by size class.
pub struct StackPool {
    classes: Mutex<HashMap<usize, Class>>,
    /// Per-size-class count of pooled stacks kept fully resident.
    warm_limit: AtomicUsize,
    pub stats: PoolStats,
}

impl StackPool {
    pub const DEFAULT_WARM_LIMIT: usize = 128;

    pub fn new(warm_limit: usize) -> StackPool {
        StackPool {
            classes: Mutex::new(HashMap::new()),
            warm_limit: AtomicUsize::new(warm_limit),
            stats: PoolStats::default(),
        }
    }

    pub fn warm_limit(&self) -> usize {
        self.warm_limit.load(Ordering::Relaxed)
    }

    pub fn set_warm_limit(&self, n: usize) {
        self.warm_limit.store(n, Ordering::Relaxed);
    }

    /// A stack of exactly `size` bytes: pooled (warm preferred) or fresh.
    pub fn acquire(&self, size: usize) -> Stack {
        let pooled = {
            let mut classes = self.classes.lock().unwrap();
            classes
                .get_mut(&size)
                .and_then(|c| c.warm.pop().or_else(|| c.cold.pop()))
        };
        match pooled {
            Some(stack) => {
                self.stats.reused.fetch_add(1, Ordering::Relaxed);
                stack
            }
            None => {
                self.stats.allocated.fetch_add(1, Ordering::Relaxed);
                Stack::alloc(size)
            }
        }
    }

    /// Return a finished task's stack. Beyond the warm limit its pages
    /// are released to the kernel but the stack stays reusable.
    pub fn release(&self, stack: Stack) {
        self.stats.pooled.fetch_add(1, Ordering::Relaxed);
        let limit = self.warm_limit();
        let mut classes = self.classes.lock().unwrap();
        let class = classes.entry(stack.size()).or_default();
        if class.warm.len() < limit {
            class.warm.push(stack);
        } else {
            stack.release_pages();
            self.stats.madvised.fetch_add(1, Ordering::Relaxed);
            class.cold.push(stack);
        }
    }

    /// Pooled stacks currently held for `size` (warm + cold).
    #[cfg(test)]
    fn pooled_of(&self, size: usize) -> (usize, usize) {
        let classes = self.classes.lock().unwrap();
        classes
            .get(&size)
            .map(|c| (c.warm.len(), c.cold.len()))
            .unwrap_or((0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own pool instance (and distinctive sizes), so
    // nothing here races the process-wide pool used by scheduler tests.

    #[test]
    fn reuse_across_task_generations() {
        let pool = StackPool::new(StackPool::DEFAULT_WARM_LIMIT);
        let size = 13 * PAGE;
        // Generation 1: nothing pooled, both acquisitions allocate.
        let a = pool.acquire(size);
        let b = pool.acquire(size);
        assert_eq!(pool.stats.allocated.load(Ordering::Relaxed), 2);
        let (a_base, b_base) = (a.top(), b.top());
        pool.release(a);
        pool.release(b);
        // Generations 2..n: every acquisition is served from the pool.
        for _ in 0..10 {
            let s = pool.acquire(size);
            assert!(s.top() == a_base || s.top() == b_base, "recycled stack");
            pool.release(s);
        }
        assert_eq!(pool.stats.allocated.load(Ordering::Relaxed), 2);
        assert_eq!(pool.stats.reused.load(Ordering::Relaxed), 10);
        assert_eq!(pool.stats.pooled.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn size_classes_do_not_mix() {
        let pool = StackPool::new(StackPool::DEFAULT_WARM_LIMIT);
        let small = 9 * PAGE;
        let big = 17 * PAGE;
        pool.release(Stack::alloc(small));
        // A request for `big` must not be served by the pooled `small`.
        let s = pool.acquire(big);
        assert_eq!(s.size(), big);
        assert_eq!(pool.stats.reused.load(Ordering::Relaxed), 0);
        assert_eq!(pool.stats.allocated.load(Ordering::Relaxed), 1);
        // And the pooled small stack is still there for its own class.
        let s2 = pool.acquire(small);
        assert_eq!(s2.size(), small);
        assert_eq!(pool.stats.reused.load(Ordering::Relaxed), 1);
        drop((s, s2));
    }

    #[test]
    fn high_water_trimming_marks_cold_stacks() {
        let pool = StackPool::new(2);
        let size = 11 * PAGE;
        let stacks: Vec<Stack> = (0..5).map(|_| pool.acquire(size)).collect();
        for s in stacks {
            pool.release(s);
        }
        // Warm limit 2: three of the five went cold and were madvised.
        assert_eq!(pool.pooled_of(size), (2, 3));
        assert_eq!(pool.stats.madvised.load(Ordering::Relaxed), 3);
        // Cold stacks are still valid to reuse (MADV_FREE keeps the
        // mapping; pages refault as zeros) — and warm ones go first.
        for _ in 0..5 {
            let mut s = pool.acquire(size);
            // Touch the whole range through the raw pointer to prove the
            // mapping survived the trim.
            // SAFETY: freshly acquired, exclusively owned stack memory.
            unsafe {
                let base = s.top().sub(s.size());
                std::ptr::write_bytes(base, 0xAB, s.size());
            }
            let _ = &mut s;
        }
        assert_eq!(pool.stats.allocated.load(Ordering::Relaxed), 5);
        assert_eq!(pool.stats.reused.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn stacks_are_page_aligned() {
        let s = Stack::alloc(8 * PAGE);
        assert_eq!(s.top() as usize % PAGE, 0);
        assert_eq!((s.top() as usize - s.size()) % PAGE, 0);
    }
}
