//! A hashed timing wheel.
//!
//! Deadlines are rounded **up** to a tick boundary and hashed into a
//! fixed ring of slots; entries whose deadline lies more than one
//! rotation ahead simply stay in their slot until the wheel's cursor has
//! advanced far enough (each entry carries its absolute tick, so a slot
//! visit only fires the entries that are actually due). `advance` fires
//! everything due at or before `now`, in deadline order, so waiters with
//! coalesced deadlines wake together in one pass.
//!
//! The wheel never fires early: an entry for deadline `d` is rounded up
//! to tick `t`, and `advance(now)` only reaches `t` once
//! `now >= origin + t·tick >= d`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Entries visited by a slot sweep that were *not* due yet (they belong
/// to a later rotation of the wheel). A hot cascade counter means the
/// ring is too small for the deadline spread.
pub(crate) static TIMER_CASCADES: AtomicU64 = AtomicU64::new(0);
/// Entries actually fired by [`TimerWheel::advance`].
pub(crate) static TIMER_FIRES: AtomicU64 = AtomicU64::new(0);

struct Entry<T> {
    at_tick: u64,
    id: u64,
    item: T,
}

/// Fixed-size hashed timing wheel holding items of type `T`.
pub struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    tick: Duration,
    origin: Instant,
    /// First tick not yet fired.
    cur_tick: u64,
    next_id: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// Wheel with the default ring size (256 slots).
    pub fn new(tick: Duration) -> Self {
        Self::with_slots(tick, 256)
    }

    pub fn with_slots(tick: Duration, n_slots: usize) -> Self {
        assert!(!tick.is_zero(), "tick must be non-zero");
        assert!(n_slots > 0, "need at least one slot");
        TimerWheel {
            slots: (0..n_slots).map(|_| Vec::new()).collect(),
            tick,
            origin: Instant::now(),
            cur_tick: 0,
            next_id: 0,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_for(&self, deadline: Instant) -> u64 {
        let since = deadline.saturating_duration_since(self.origin);
        let tick_ns = self.tick.as_nanos();
        let at = since.as_nanos().div_ceil(tick_ns) as u64;
        at.max(self.cur_tick)
    }

    /// Register `item` to fire once `now` reaches `deadline`. Returns an
    /// id usable with [`TimerWheel::cancel`].
    pub fn insert(&mut self, deadline: Instant, item: T) -> u64 {
        let at_tick = self.tick_for(deadline);
        let id = self.next_id;
        self.next_id += 1;
        let slot = (at_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { at_tick, id, item });
        self.len += 1;
        id
    }

    /// Remove a pending entry. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: u64) -> bool {
        for slot in &mut self.slots {
            if let Some(pos) = slot.iter().position(|e| e.id == id) {
                slot.swap_remove(pos);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Fire every entry due at or before `now`, in deadline order
    /// (insertion order within one coalesced tick).
    pub fn advance(&mut self, now: Instant) -> Vec<T> {
        if self.len == 0 {
            // Keep the cursor moving so a later insert near `now` lands
            // at the right tick without a catch-up scan.
            let target =
                now.saturating_duration_since(self.origin).as_nanos() / self.tick.as_nanos();
            self.cur_tick = self.cur_tick.max(target as u64 + 1);
            return Vec::new();
        }
        let target =
            (now.saturating_duration_since(self.origin).as_nanos() / self.tick.as_nanos()) as u64;
        if target < self.cur_tick {
            return Vec::new();
        }
        let n_slots = self.slots.len() as u64;
        let mut fired: Vec<Entry<T>> = Vec::new();
        // When the span covers a whole rotation, every slot is visited
        // once; otherwise only the slots the cursor passes over.
        let span = (target - self.cur_tick + 1).min(n_slots);
        for i in 0..span {
            let slot = ((self.cur_tick + i) % n_slots) as usize;
            let v = &mut self.slots[slot];
            let mut j = 0;
            while j < v.len() {
                if v[j].at_tick <= target {
                    fired.push(v.swap_remove(j));
                } else {
                    TIMER_CASCADES.fetch_add(1, Ordering::Relaxed);
                    j += 1;
                }
            }
        }
        TIMER_FIRES.fetch_add(fired.len() as u64, Ordering::Relaxed);
        self.len -= fired.len();
        self.cur_tick = target + 1;
        fired.sort_by_key(|e| (e.at_tick, e.id));
        fired.into_iter().map(|e| e.item).collect()
    }

    /// Earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        let mut min: Option<u64> = None;
        for slot in &self.slots {
            for e in slot {
                min = Some(min.map_or(e.at_tick, |m: u64| m.min(e.at_tick)));
            }
        }
        min.map(|t| {
            self.origin + Duration::from_nanos((self.tick.as_nanos() as u64).saturating_mul(t))
        })
    }

    /// Drop all pending entries.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::with_slots(ms(1), 8);
        let now = Instant::now();
        w.insert(now + ms(30), "c");
        w.insert(now + ms(10), "a");
        w.insert(now + ms(20), "b");
        let fired = w.advance(now + ms(40));
        assert_eq!(fired, vec!["a", "b", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn does_not_fire_early() {
        let mut w = TimerWheel::new(ms(1));
        let now = Instant::now();
        w.insert(now + ms(50), ());
        assert!(w.advance(now + ms(10)).is_empty());
        assert_eq!(w.len(), 1);
        assert_eq!(w.advance(now + ms(60)).len(), 1);
    }

    #[test]
    fn coalesced_deadlines_fire_together() {
        let mut w = TimerWheel::new(ms(1));
        let now = Instant::now();
        // Same tick: all three land in one slot at one tick.
        w.insert(now + ms(10), 1);
        w.insert(now + ms(10), 2);
        w.insert(now + ms(10), 3);
        let fired = w.advance(now + ms(12));
        assert_eq!(fired, vec![1, 2, 3], "one advance fires the whole tick");
        assert!(w.is_empty());
    }

    #[test]
    fn cancellation_removes_pending_entry() {
        let mut w = TimerWheel::new(ms(1));
        let now = Instant::now();
        let a = w.insert(now + ms(10), "a");
        let b = w.insert(now + ms(10), "b");
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel is a no-op");
        let fired = w.advance(now + ms(20));
        assert_eq!(fired, vec!["b"]);
        assert!(!w.cancel(b), "fired entries cannot be cancelled");
    }

    #[test]
    fn entries_beyond_one_rotation_wait_for_their_turn() {
        // 4 slots × 1ms tick: a 2ms and a 6ms deadline share slot 2.
        let mut w = TimerWheel::with_slots(ms(1), 4);
        let now = Instant::now();
        w.insert(now + ms(2), "near");
        w.insert(now + ms(6), "far");
        let fired = w.advance(now + ms(3));
        assert_eq!(fired, vec!["near"], "far entry must not fire a lap early");
        assert_eq!(w.advance(now + ms(7)), vec!["far"]);
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut w = TimerWheel::new(ms(1));
        let now = Instant::now();
        assert!(w.next_deadline().is_none());
        w.insert(now + ms(30), ());
        w.insert(now + ms(10), ());
        let nd = w.next_deadline().unwrap();
        assert!(nd >= now + ms(10) && nd <= now + ms(12));
        w.advance(now + ms(15));
        let nd = w.next_deadline().unwrap();
        assert!(nd >= now + ms(30));
    }

    #[test]
    fn clear_empties_the_wheel() {
        let mut w = TimerWheel::new(ms(1));
        let now = Instant::now();
        w.insert(now + ms(5), ());
        w.insert(now + ms(500), ());
        w.clear();
        assert!(w.is_empty());
        assert!(w.advance(now + ms(600)).is_empty());
    }
}
