//! **E15 — Causal tracing: critical-path attribution vs measured
//! latency** (tentpole for the tracing layer).
//!
//! Claim: the span assembler's exclusive critical-path breakdown is an
//! *accounting identity*, not an estimate — per-kind budgets sum exactly
//! to each root `Commit` span, and the root spans agree with the
//! independently measured `commit_us` histogram (same interval, two
//! instruments) to within ~10% at the median. And tracing must be free
//! when off: the untraced cells run with span emission disabled and feed
//! the CI latency gate, so any always-on overhead shows up as a
//! regression.
//!
//! Sweep: scheduler {threads, event} × tracing {off, on} at a fixed
//! client count, PRIVATE workload (abort-free, so every `Commit` root
//! corresponds to one histogram observation). Untraced cells run first —
//! span emission is process-wide once enabled.

use fgl::System;
use fgl_bench::{banner, experiment_config, quick_mode, MetricsEmitter};
use fgl_obs::trace;
use fgl_sim::harness::{run_workload, HarnessOptions, RunReport, SchedulerKind};
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, Table};
use fgl_sim::workload::{WorkloadKind, WorkloadSpec};

const CLIENTS: usize = 4;

fn spec_for() -> WorkloadSpec {
    let mut s = WorkloadSpec::new(WorkloadKind::Private);
    s.pages = CLIENTS * 8;
    s.objects_per_page = 8;
    s.ops_per_txn = 4;
    s.write_fraction = 0.5;
    s
}

fn txns_per_client() -> usize {
    if quick_mode() {
        30
    } else {
        120
    }
}

struct Cell {
    report: RunReport,
    /// Traced cells only: assembled trace of exactly this run's events.
    trace: Option<trace::TraceReport>,
}

fn run_cell(scheduler: SchedulerKind, traced: bool) -> Cell {
    let mut cfg = experiment_config();
    if traced {
        // Big rings: the whole run must fit so the assembler sees every
        // open/close pair (`ring_dropped_events` stays 0).
        cfg = cfg.with_obs_ring_entries(1 << 16);
    }
    let sys = System::build(cfg, CLIENTS).expect("build");
    trace::set_enabled(traced);
    let spec = spec_for();
    let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32).expect("populate");
    let mut opts = HarnessOptions::new(spec, txns_per_client());
    opts.seed = 0xE15;
    opts.scheduler = scheduler;
    let watermark = fgl_obs::seq_watermark();
    let report = run_workload(&sys, &layout, None, &opts).expect("run");
    let trace = traced.then(|| {
        let events: Vec<_> = fgl_obs::dump()
            .into_iter()
            .filter(|s| s.seq >= watermark)
            .collect();
        trace::assemble(&events)
    });
    trace::set_enabled(false);
    Cell { report, trace }
}

/// Median of the root `Commit` span durations.
fn budget_p50(tr: &trace::TraceReport) -> u64 {
    let mut totals: Vec<u64> = tr.commits.iter().map(|c| c.total_us).collect();
    totals.sort_unstable();
    if totals.is_empty() {
        0
    } else {
        totals[totals.len() / 2]
    }
}

fn gap_pct(budget: u64, measured: u64) -> f64 {
    if measured == 0 {
        return 0.0;
    }
    (budget as f64 - measured as f64).abs() * 100.0 / measured as f64
}

fn main() {
    banner(
        "E15: trace attribution vs measured commit latency",
        "per-span critical-path budgets sum to the root commit span and agree \
         with independently measured commit latency; tracing off costs nothing \
         (PRIVATE workload)",
    );
    // Untraced first: enabling span emission is process-wide.
    let cells: Vec<(SchedulerKind, bool)> = vec![
        (SchedulerKind::Threads, false),
        (SchedulerKind::Event, false),
        (SchedulerKind::Threads, true),
        (SchedulerKind::Event, true),
    ];

    let mut emitter = MetricsEmitter::new("e15_trace_attribution");
    let mut table = Table::new(&[
        "scheduler",
        "traced",
        "commits/s",
        "p50 commit us",
        "budget p50 us",
        "gap %",
        "spans",
        "orphans",
    ]);
    let mut worst_gap = 0.0f64;
    for &(scheduler, traced) in &cells {
        let mut cell = run_cell(scheduler, traced);
        // Exact median of the harness's per-commit wall-clock timings —
        // the same interval the root `Commit` span wraps (the commit_us
        // histogram would add log2-bucket quantization to the compare).
        let measured_p50 = cell.report.latency_us(50.0);
        let (budget, gap, spans, orphans) = match &cell.trace {
            Some(tr) => {
                let budget = budget_p50(tr);
                let gap = gap_pct(budget, measured_p50);
                worst_gap = worst_gap.max(gap);
                // Fold the trace summary into the emitted counters so the
                // JSON validator can gate on it.
                let m = &mut cell.report.metrics;
                m.set_counter("e15_budget_p50_us", budget);
                m.set_counter("e15_measured_p50_us", measured_p50);
                m.set_counter("e15_budget_gap_pct_x100", (gap * 100.0).round() as u64);
                m.set_counter("trace_commits", tr.commits.len() as u64);
                m.set_counter("trace_spans", tr.spans.len() as u64);
                m.set_counter("trace_orphan_opens", tr.orphan_opens as u64);
                m.set_counter("trace_orphan_closes", tr.orphan_closes as u64);
                for kind in fgl_obs::SpanKind::ALL {
                    let n = tr.spans.iter().filter(|s| s.kind == kind).count();
                    m.set_counter(&format!("trace_span_{}_count", kind.tag()), n as u64);
                }
                for (tag, us) in tr.bucket_totals() {
                    m.set_counter(&format!("trace_budget_{tag}_us"), us);
                }
                (
                    budget,
                    gap,
                    tr.spans.len(),
                    tr.orphan_opens + tr.orphan_closes,
                )
            }
            None => (0, 0.0, 0, 0),
        };
        emitter.row(
            &[
                ("clients", CLIENTS.to_string()),
                ("scheduler", scheduler.name().to_string()),
                ("traced", traced.to_string()),
            ],
            &cell.report.metrics,
        );
        table.row(vec![
            scheduler.name().to_string(),
            traced.to_string(),
            f1(cell.report.throughput()),
            measured_p50.to_string(),
            if traced {
                budget.to_string()
            } else {
                "-".into()
            },
            if traced { f1(gap) } else { "-".into() },
            spans.to_string(),
            orphans.to_string(),
        ]);
        if let Some(tr) = &cell.trace {
            let label = format!("e15_{}", scheduler.name());
            if let Some(path) = trace::write_chrome_trace(tr, &label) {
                println!("chrome trace written: {}", path.display());
            }
            // The accounting identity itself: per-kind buckets sum to
            // exactly the root span's duration on every commit.
            for c in &tr.commits {
                let sum: u64 = c.buckets.values().sum();
                assert_eq!(
                    sum, c.total_us,
                    "critical-path buckets must sum to the root duration"
                );
            }
        }
    }
    table.print();

    println!();
    println!(
        "worst budget-vs-measured p50 gap: {}% (claim: within ~10%)",
        f1(worst_gap)
    );
    assert!(
        worst_gap <= 10.0,
        "budget p50 diverged from measured commit p50 by {worst_gap:.1}%"
    );
    emitter.finish();
}
