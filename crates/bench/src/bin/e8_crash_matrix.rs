//! **E8 — Crash matrix correctness** (§3.3–§3.5, abstract).
//!
//! Claim: *"The database state is recovered correctly even if the server
//! and several clients crash at the same time, and if the updates
//! performed by different clients on a page are not present on the disk
//! version of the page, even though some of the updating transactions
//! have committed."*
//!
//! Every cell runs: workload phase → crash → the paper's recovery
//! procedure → committed-state verification against the oracle → second
//! workload phase → final verification.

use fgl::SystemConfig;
use fgl_bench::{banner, standard_spec, MetricsEmitter};
use fgl_sim::crash::{run_crash_scenario, CrashKind};
use fgl_sim::table::{f1, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E8: crash matrix — committed state vs oracle",
        "each cell: run, crash, recover, verify every object, run again, \
         verify again",
    );
    let clients = 4;
    let txns = if fgl_bench::quick_mode() { 25 } else { 80 };
    let kinds = vec![
        CrashKind::Client(1),
        CrashKind::MultiClient(vec![1, 2]),
        CrashKind::Server,
        CrashKind::Complex(vec![1]),
        CrashKind::Complex(vec![1, 2]),
    ];
    let workloads = [
        WorkloadKind::HotCold,
        WorkloadKind::HiCon,
        WorkloadKind::Uniform,
    ];
    let mut table = Table::new(&[
        "crash",
        "workload",
        "phase1 commits",
        "recovery ms",
        "objects checked",
        "verify",
        "phase2 commits",
        "final",
    ]);
    let mut emitter = MetricsEmitter::new("e8_crash_matrix");
    let mut seed = 0x0E8;
    let mut all_clean = true;
    for kind in &kinds {
        for wk in workloads {
            seed += 1;
            let mut spec = standard_spec(wk, clients);
            spec.write_fraction = 0.6;
            let r = run_crash_scenario(
                SystemConfig::default(),
                clients,
                kind.clone(),
                spec,
                txns,
                seed,
            )
            .expect("scenario");
            all_clean &= r.is_clean();
            emitter.row(
                &[
                    ("crash", r.kind_name.clone()),
                    ("workload", wk.name().to_string()),
                ],
                &r.metrics,
            );
            table.row(vec![
                r.kind_name.clone(),
                wk.name().into(),
                r.phase1.commits.to_string(),
                f1(r.recovery_elapsed.as_secs_f64() * 1e3),
                r.verify_after_recovery.objects_checked.to_string(),
                if r.verify_after_recovery.is_clean() {
                    "clean".into()
                } else {
                    format!("{} BAD", r.verify_after_recovery.mismatches.len())
                },
                r.phase2.commits.to_string(),
                if r.verify_final.is_clean() {
                    "clean".into()
                } else {
                    format!("{} BAD", r.verify_final.mismatches.len())
                },
            ]);
        }
    }
    table.print();
    emitter.finish();
    println!();
    if all_clean {
        println!("RESULT: all scenarios recovered the committed state exactly.");
    } else {
        println!("RESULT: MISMATCHES FOUND — recovery bug!");
        std::process::exit(1);
    }
}
