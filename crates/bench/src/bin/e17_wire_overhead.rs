//! **E17 — Wire-transport overhead and codec fidelity** (transport seam).
//!
//! The same contended workload runs over three transports: the
//! in-process sim fabric (nominal message accounting + injected
//! latency), and real TCP and Unix-domain sockets carrying the
//! length-prefixed frame codec. Three questions:
//!
//! 1. *Protocol cost*: commits/s and commit latency with real framing,
//!    syscalls and thread handoffs vs. the simulated 40 µs hop.
//! 2. *Codec fidelity*: real encoded bytes/commit vs. the nominal
//!    accounting the paper-series experiments report — the
//!    `wire/nominal` ratio quantifies exactly how honest the sim's
//!    byte counts are (callback-family messages encode byte-identically
//!    by construction; the rest may drift and the drift is *measured*).
//! 3. *Round-trip shape*: the `wire_rtt_us` histogram of full
//!    request/reply cycles over the socket.
//!
//! Every cell verifies committed state against the oracle: the socket
//! transports must be indistinguishable from the sim fabric to the
//! concurrency-control and recovery machinery.

use fgl::{System, TransportKind};
use fgl_bench::{banner, experiment_config, standard_spec, txns_per_client, MetricsEmitter};
use fgl_sim::crash::prepare;
use fgl_sim::harness::{run_workload, HarnessOptions, RunReport};
use fgl_sim::table::{f1, f2, Table};
use fgl_sim::workload::WorkloadKind;

fn run_cell(transport: TransportKind, clients: usize) -> RunReport {
    let cfg = experiment_config().with_transport(transport);
    let sys = System::build(cfg, clients).expect("build");
    // HICON with a meaningful write slice: lock traffic, callbacks and
    // page ships all cross the transport, not just fetches.
    let mut spec = standard_spec(WorkloadKind::HiCon, clients);
    spec.write_fraction = 0.5;
    spec.hot_pages = (2 * clients).max(4);
    let (layout, oracle) = prepare(&sys, &spec).expect("prepare");
    let mut opts = HarnessOptions::new(spec, txns_per_client() / 2);
    opts.seed = 0xE17;
    let report = run_workload(&sys, &layout, Some(&oracle), &opts).expect("run");
    let verify = oracle.verify_via_reads(sys.client(0)).expect("verify");
    assert!(
        verify.is_clean(),
        "stale objects over {transport:?}: {:?}",
        verify.mismatches
    );
    report
}

fn main() {
    banner(
        "E17: wire-transport overhead",
        "the same workload over the in-process sim fabric vs. real TCP and \
         Unix-domain sockets; real encoded bytes vs. nominal accounting",
    );
    let client_counts: Vec<usize> = if fgl_bench::quick_mode() {
        vec![2, 4]
    } else {
        vec![2, 4, 8]
    };
    let mut emitter = MetricsEmitter::new("e17_wire_overhead");

    let mut table = Table::new(&[
        "transport",
        "clients",
        "commits/s",
        "msgs/commit",
        "nominal B/commit",
        "wire B/commit",
        "wire/nominal",
        "commit p95 us",
        "wire rtt p95 us",
    ]);
    for &n in &client_counts {
        for transport in TransportKind::ALL {
            let report = run_cell(transport, n);
            let commits = report.commits.max(1) as f64;
            let nominal_bytes = report.net.total_bytes() as f64 / commits;
            let wire_bytes = report
                .metrics
                .counters
                .get("wire_total_bytes")
                .copied()
                .unwrap_or(0) as f64
                / commits;
            let ratio = if transport == TransportKind::Sim || nominal_bytes == 0.0 {
                0.0
            } else {
                wire_bytes / nominal_bytes
            };
            let rtt_p95 = report
                .metrics
                .hist(fgl::HistKind::WireRtt)
                .map(|h| h.p95())
                .unwrap_or(0);
            emitter.row(
                &[
                    ("transport", transport.name().to_string()),
                    ("clients", n.to_string()),
                ],
                &report.metrics,
            );
            table.row(vec![
                transport.name().into(),
                n.to_string(),
                f1(report.throughput()),
                f2(report.messages_per_commit()),
                f1(nominal_bytes),
                f1(wire_bytes),
                if ratio == 0.0 { "-".into() } else { f2(ratio) },
                report.latency_us(95.0).to_string(),
                rtt_p95.to_string(),
            ]);
        }
    }
    table.print();
    emitter.finish();
}
