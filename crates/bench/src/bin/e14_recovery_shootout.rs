//! **E14 — Logging-strategy recovery shootout.**
//!
//! The `LoggingStrategy` seam makes the paper's client-based ARIES one
//! policy among several: REDO-only single-pass restart (Sauer & Härder),
//! an adaptive command/physical hybrid (Yao et al.), and a no-force
//! write-behind baseline. This experiment races all four through the
//! crash matrix and reports, per (strategy, crash) cell:
//!
//! * recovery wall time, with the per-phase breakdown captured by the
//!   `recovery_phase_us_<strategy>_*` histograms,
//! * log bytes per commit (normal-processing logging cost), and
//! * workload commits/s before the crash.
//!
//! Every cell still verifies the committed state against the oracle —
//! a fast recovery that loses updates is a bug, not a win.

use fgl::{LoggingStrategyKind, SystemConfig};
use fgl_bench::{banner, standard_spec, MetricsEmitter};
use fgl_sim::crash::{run_crash_scenario, CrashKind};
use fgl_sim::table::{f1, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E14: recovery shootout — logging strategies through the crash matrix",
        "each cell: run, crash, recover under the given strategy, verify \
         every object against the oracle, run again, verify again",
    );
    let clients = 4;
    let quick = fgl_bench::quick_mode();
    let txns = if quick { 25 } else { 80 };
    let kinds: Vec<CrashKind> = if quick {
        vec![CrashKind::Client(1), CrashKind::Server]
    } else {
        vec![
            CrashKind::Client(1),
            CrashKind::MultiClient(vec![1, 2]),
            CrashKind::Server,
            CrashKind::Complex(vec![1]),
        ]
    };
    let mut table = Table::new(&[
        "strategy",
        "crash",
        "commits/s",
        "log B/commit",
        "recovery ms",
        "verify",
        "final",
    ]);
    let mut emitter = MetricsEmitter::new("e14_recovery_shootout");
    let mut seed = 0x0E14;
    let mut all_clean = true;
    for strategy in LoggingStrategyKind::ALL {
        for kind in &kinds {
            seed += 1;
            let mut spec = standard_spec(WorkloadKind::HotCold, clients);
            spec.write_fraction = 0.6;
            let cfg = SystemConfig {
                logging_strategy: strategy,
                ..fgl_bench::experiment_config()
            };
            let r =
                run_crash_scenario(cfg, clients, kind.clone(), spec, txns, seed).expect("scenario");
            all_clean &= r.is_clean();
            let log_bytes = r
                .phase1
                .metrics
                .counters
                .get("client_log_bytes")
                .copied()
                .unwrap_or(0);
            let bytes_per_commit = log_bytes as f64 / r.phase1.commits.max(1) as f64;
            // Derived scalars ride as counters: the latency baseline keys
            // sweep points by `params`, which must be stable across runs.
            let mut metrics = r.metrics.clone();
            metrics.set_counter("e14_commits_per_s", r.phase1.throughput() as u64);
            metrics.set_counter("e14_log_bytes_per_commit", bytes_per_commit as u64);
            metrics.set_counter("e14_recovery_us", r.recovery_elapsed.as_micros() as u64);
            emitter.row(
                &[
                    ("strategy", strategy.name().to_string()),
                    ("crash", r.kind_name.clone()),
                ],
                &metrics,
            );
            table.row(vec![
                strategy.name().into(),
                r.kind_name.clone(),
                f1(r.phase1.throughput()),
                f1(bytes_per_commit),
                f1(r.recovery_elapsed.as_secs_f64() * 1e3),
                if r.verify_after_recovery.is_clean() {
                    "clean".into()
                } else {
                    format!("{} BAD", r.verify_after_recovery.mismatches.len())
                },
                if r.verify_final.is_clean() {
                    "clean".into()
                } else {
                    format!("{} BAD", r.verify_final.mismatches.len())
                },
            ]);
        }
    }
    table.print();
    emitter.finish();
    println!();
    if all_clean {
        println!("RESULT: every strategy recovered the committed state exactly.");
    } else {
        println!("RESULT: MISMATCHES FOUND — recovery bug!");
        std::process::exit(1);
    }
}
