//! **E7 — Private log space management** (§3.6).
//!
//! Claims: when a client exhausts its circular private log it reclaims
//! space by (a) advancing the low-water mark past the minimum DPT RedoLSN
//! and (b) asking the server to force the page holding that minimum; the
//! remembered end-of-log at ship time lets the RedoLSN jump forward.
//! Smaller logs mean more forced flushes and commit stalls but the system
//! keeps running.
//!
//! Sweep: private log capacity → stall events, forced-flush requests,
//! throughput.

// Experiment sweeps mutate one config field at a time; the
// default-then-assign pattern is the point.
#![allow(clippy::field_reassign_with_default)]

use fgl::{System, SystemConfig};
use fgl_bench::{banner, standard_spec, txns_per_client, MetricsEmitter};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E7: private-log capacity vs reclamation work",
        "LogFull triggers §3.6: checkpoint, advance low-water, ship + force \
         the min-RedoLSN page, retry",
    );
    let sweep: Vec<u64> = if fgl_bench::quick_mode() {
        vec![64 << 10, 512 << 10]
    } else {
        vec![64 << 10, 128 << 10, 256 << 10, 1 << 20, 4 << 20]
    };
    let clients = 2;
    let mut emitter = MetricsEmitter::new("e7_log_space");
    let mut table = Table::new(&[
        "log bytes",
        "commits/s",
        "stall events",
        "forced flushes",
        "log bytes written",
        "aborts",
    ]);
    for &capacity in &sweep {
        let cfg = SystemConfig {
            client_log_bytes: capacity,
            client_checkpoint_every: 100_000, // §3.6 drives checkpoints
            ..Default::default()
        };
        let sys = System::build(cfg, clients).expect("build");
        let mut spec = standard_spec(WorkloadKind::HotCold, clients);
        spec.write_fraction = 0.8;
        let layout =
            populate(sys.client(0), spec.pages, spec.objects_per_page, 64).expect("populate");
        let mut opts = HarnessOptions::new(spec, txns_per_client() * 2);
        opts.seed = 0xE7;
        let report = run_workload(&sys, &layout, None, &opts).expect("run");
        emitter.row(&[("log_bytes", capacity.to_string())], &report.metrics);
        let stats: Vec<_> = sys.clients.iter().map(|c| c.stats()).collect();
        let stalls: u64 = stats.iter().map(|s| s.log_stall_events).sum();
        let flushes: u64 = stats.iter().map(|s| s.forced_flush_requests).sum();
        let log_bytes: u64 = stats.iter().map(|s| s.log_bytes).sum();
        table.row(vec![
            capacity.to_string(),
            f1(report.throughput()),
            stalls.to_string(),
            flushes.to_string(),
            log_bytes.to_string(),
            report.aborts.to_string(),
        ]);
    }
    table.print();
    emitter.finish();
}
