//! **E9 — Commit latency anatomy** (§4.1 vs. ARIES/CSA and Versant).
//!
//! Claim: under client-based logging a commit is one force of the local
//! log; the server-logging baselines pay a network round trip plus the
//! (shared) server log force, and the Versant-shape baseline additionally
//! ships every modified page.
//!
//! Reports the commit latency distribution per policy at 1 and 8 clients.

use fgl::{CommitPolicy, System};
use fgl_bench::{
    banner, experiment_config, policy_name, standard_spec, txns_per_client, MetricsEmitter,
};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::setup::populate;
use fgl_sim::table::Table;
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E9: commit latency distribution per logging policy",
        "client-log = one local log force; server-log = round trip + shared \
         force; ship-pages adds one page ship per dirtied page",
    );
    let client_counts: Vec<usize> = if fgl_bench::quick_mode() {
        vec![1, 4]
    } else {
        vec![1, 8]
    };
    let mut emitter = MetricsEmitter::new("e9_commit_latency");
    let mut table = Table::new(&["clients", "policy", "p50 us", "p90 us", "p99 us", "max us"]);
    for &n in &client_counts {
        for policy in [
            CommitPolicy::ClientLog,
            CommitPolicy::ServerLog,
            CommitPolicy::ShipPagesAtCommit,
        ] {
            let cfg = experiment_config().with_commit_policy(policy);
            let sys = System::build(cfg, n).expect("build");
            let mut spec = standard_spec(WorkloadKind::HotCold, n);
            spec.write_fraction = 0.5;
            let layout =
                populate(sys.client(0), spec.pages, spec.objects_per_page, 64).expect("populate");
            let mut opts = HarnessOptions::new(spec, txns_per_client());
            opts.seed = 0xE9;
            let report = run_workload(&sys, &layout, None, &opts).expect("run");
            emitter.row(
                &[
                    ("clients", n.to_string()),
                    ("policy", policy_name(policy).to_string()),
                ],
                &report.metrics,
            );
            table.row(vec![
                n.to_string(),
                policy_name(policy).into(),
                report.latency_us(50.0).to_string(),
                report.latency_us(90.0).to_string(),
                report.latency_us(99.0).to_string(),
                report.latency_us(100.0).to_string(),
            ]);
        }
    }
    table.print();

    // Group commit: with several committer threads per client their
    // overlapping commits coalesce into fewer private-log forces — a
    // committer whose commit record is already covered by a cohort
    // member's force piggybacks and skips the disk entirely.
    println!();
    println!("group commit under concurrent committers (client-log policy):");
    let committers = 4;
    let mut gc_table = Table::new(&[
        "clients",
        "committers",
        "group commit",
        "p50 us",
        "p95 us",
        "p99 us",
        "forced",
        "piggybacked",
    ]);
    for &n in &client_counts {
        for group_commit in [true, false] {
            let cfg = experiment_config().with_group_commit(group_commit);
            let sys = System::build(cfg, n).expect("build");
            let mut spec = standard_spec(WorkloadKind::Private, n);
            spec.write_fraction = 0.5;
            let layout =
                populate(sys.client(0), spec.pages, spec.objects_per_page, 64).expect("populate");
            let mut opts = HarnessOptions::new(spec, txns_per_client() / 2);
            opts.seed = 0xE9;
            opts.threads_per_client = committers;
            let report = run_workload(&sys, &layout, None, &opts).expect("run");
            let forced = report
                .metrics
                .counters
                .get("client_commits_forced")
                .copied()
                .unwrap_or(0);
            let piggybacked = report
                .metrics
                .counters
                .get("client_commits_piggybacked")
                .copied()
                .unwrap_or(0);
            emitter.row(
                &[
                    ("clients", n.to_string()),
                    ("policy", "client-log".to_string()),
                    ("committers", committers.to_string()),
                    ("group_commit", group_commit.to_string()),
                    ("commit_p95_us", report.latency_us(95.0).to_string()),
                ],
                &report.metrics,
            );
            gc_table.row(vec![
                n.to_string(),
                committers.to_string(),
                if group_commit { "on" } else { "off" }.into(),
                report.latency_us(50.0).to_string(),
                report.latency_us(95.0).to_string(),
                report.latency_us(99.0).to_string(),
                forced.to_string(),
                piggybacked.to_string(),
            ]);
        }
    }
    gc_table.print();
    emitter.finish();
}
