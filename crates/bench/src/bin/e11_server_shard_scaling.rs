//! **E11 — Server shard scaling** (hot-path partitioning).
//!
//! Claim: with the server's hot path partitioned by `PageId % N` (each
//! shard owning its slice of the lock table, buffer pool and DCT),
//! requests on different pages never contend on a server mutex, so
//! multi-client throughput rises with the shard count; `server_shards=1`
//! reproduces the unsharded server. The §4.1 server-logging commit path
//! stays serialized on one mutex regardless of N — the paper's predicted
//! bottleneck is preserved as a control: under the server-log policy,
//! shards must *not* buy the same speedup.
//!
//! Sweep: shards {1,2,4,8} × clients {4,16}, UNIFORM workload (every page
//! equally hot, so contention is on server structures rather than data).

use fgl::{CommitPolicy, System};
use fgl_bench::{banner, fast_config, quick_mode, standard_spec, txns_per_client, MetricsEmitter};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, f2, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E11: server shard scaling",
        "hot-path partitioning by PageId % N; throughput vs shard count \
         (UNIFORM workload); the serialized server-log commit path is the control",
    );
    let shard_sweep: Vec<usize> = if quick_mode() {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8]
    };
    let client_sweep: Vec<usize> = if quick_mode() { vec![4] } else { vec![4, 16] };
    let mut emitter = MetricsEmitter::new("e11_server_shard_scaling");
    let mut shard_rows: Vec<(usize, usize, Vec<fgl::ShardStats>)> = Vec::new();
    let mut table = Table::new(&[
        "clients",
        "shards",
        "policy",
        "commits/s",
        "p50 commit us",
        "p95 commit us",
        "msgs/commit",
        "aborts",
    ]);
    for &clients in &client_sweep {
        for &shards in &shard_sweep {
            for policy in [CommitPolicy::ClientLog, CommitPolicy::ServerLog] {
                // Zero injected latency: the sweep isolates contention on
                // the server's in-memory hot path (the structure under
                // test), not overlap of simulated device sleeps.
                let cfg = fast_config()
                    .with_commit_policy(policy)
                    .with_server_shards(shards);
                let sys = System::build(cfg, clients).expect("build");
                let spec = standard_spec(WorkloadKind::Uniform, clients);
                let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 64)
                    .expect("populate");
                let mut opts = HarnessOptions::new(spec, txns_per_client());
                opts.seed = 0xE11;
                let report = run_workload(&sys, &layout, None, &opts).expect("run");
                emitter.row(
                    &[
                        ("clients", clients.to_string()),
                        ("shards", shards.to_string()),
                        (
                            "policy",
                            if policy == CommitPolicy::ClientLog {
                                "client-log".to_string()
                            } else {
                                "server-log".to_string()
                            },
                        ),
                    ],
                    &report.metrics,
                );
                if policy == CommitPolicy::ClientLog {
                    shard_rows.push((clients, shards, sys.server.stats().per_shard));
                }
                table.row(vec![
                    clients.to_string(),
                    shards.to_string(),
                    if policy == CommitPolicy::ClientLog {
                        "client-log".into()
                    } else {
                        "server-log".into()
                    },
                    f1(report.throughput()),
                    report.latency_us(50.0).to_string(),
                    report.latency_us(95.0).to_string(),
                    f2(report.messages_per_commit()),
                    report.aborts.to_string(),
                ]);
            }
        }
    }
    table.print();

    // Per-shard traffic breakdown (client-log runs): how evenly the
    // UNIFORM workload spreads over the residue classes.
    println!();
    println!("per-shard hot-path traffic (client-log runs):");
    let mut detail = Table::new(&[
        "clients",
        "shards",
        "shard",
        "lock reqs",
        "page fetches",
        "merges",
    ]);
    for (clients, shards, per_shard) in &shard_rows {
        for (i, s) in per_shard.iter().enumerate() {
            detail.row(vec![
                clients.to_string(),
                shards.to_string(),
                i.to_string(),
                s.lock_requests.to_string(),
                s.page_fetches.to_string(),
                s.merges.to_string(),
            ]);
        }
    }
    detail.print();
    emitter.finish();
}
