//! **E2 — Lock granularity under page contention** (§3.1, §4.2).
//!
//! Claim: object-level locking lets multiple clients update *different
//! objects on the same page* concurrently; page-level locking (the
//! shared-disks \[17\] baseline) serializes them; the adaptive scheme \[3\]
//! matches object locking under contention while saving lock traffic on
//! private data.
//!
//! Sweep: granularity × write-sharing level on the HICON workload
//! (all writes target a few hot pages, distinct slots per client).

use fgl::{LockGranularity, System};
use fgl_bench::{
    banner, experiment_config, granularity_name, standard_spec, txns_per_client, MetricsEmitter,
};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, f2, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E2: lock granularity under same-page write sharing",
        "HICON: all writes hit a small hot page set, each client a distinct \
         slot range — object locks admit them concurrently, page locks do not",
    );
    let clients = if fgl_bench::quick_mode() { 4 } else { 8 };
    let mut emitter = MetricsEmitter::new("e2_lock_granularity");
    let mut table = Table::new(&[
        "write_frac",
        "granularity",
        "commits/s",
        "aborts",
        "abort_rate",
        "lock msgs/commit",
        "cb/commit",
        "cb/commit unbatched",
    ]);
    for write_fraction in [0.2, 0.5, 0.8] {
        for granularity in [
            LockGranularity::Object,
            LockGranularity::Page,
            LockGranularity::Adaptive,
        ] {
            // Each row runs twice: with per-destination callback batching
            // (the default) and with the one-callback-one-message ablation,
            // so the row carries both callback-traffic figures.
            let mut per_batching: Vec<(bool, _)> = Vec::new();
            for batching in [true, false] {
                let mut cfg = experiment_config()
                    .with_granularity(granularity)
                    .with_callback_batching(batching);
                if granularity == LockGranularity::Page {
                    // Page locking under HICON is timeout-bound (multi-page
                    // transactions deadlock constantly); a short timeout keeps
                    // the sweep finite without changing who wins.
                    cfg.lock_timeout = std::time::Duration::from_millis(300);
                }
                let sys = System::build(cfg, clients).expect("build");
                let mut spec = standard_spec(WorkloadKind::HiCon, clients);
                spec.write_fraction = write_fraction;
                spec.hot_pages = 4;
                let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 64)
                    .expect("populate");
                // Page-granularity serializes the hot set almost completely;
                // a quarter of the transactions is enough to see its (flat)
                // throughput without stretching the sweep.
                let txns = if granularity == LockGranularity::Page {
                    txns_per_client() / 8
                } else {
                    txns_per_client()
                };
                let mut opts = HarnessOptions::new(spec, txns);
                opts.seed = 0xE2;
                let report = run_workload(&sys, &layout, None, &opts).expect("run");
                let cb_per_commit =
                    report.net.count(fgl::MsgKind::Callback) as f64 / report.commits.max(1) as f64;
                emitter.row(
                    &[
                        ("write_fraction", write_fraction.to_string()),
                        ("granularity", granularity_name(granularity).to_string()),
                        ("batching", batching.to_string()),
                        ("callback_msgs_per_commit", format!("{cb_per_commit:.4}")),
                    ],
                    &report.metrics,
                );
                per_batching.push((batching, report));
            }
            let batched = &per_batching[0].1;
            let unbatched = &per_batching[1].1;
            let lock_msgs = batched.net.count(fgl::MsgKind::LockReq)
                + batched.net.count(fgl::MsgKind::Callback);
            table.row(vec![
                f1(write_fraction * 100.0) + "%",
                granularity_name(granularity).into(),
                f1(batched.throughput()),
                batched.aborts.to_string(),
                f2(batched.abort_rate()),
                f2(lock_msgs as f64 / batched.commits.max(1) as f64),
                f2(batched.net.count(fgl::MsgKind::Callback) as f64
                    / batched.commits.max(1) as f64),
                f2(unbatched.net.count(fgl::MsgKind::Callback) as f64
                    / unbatched.commits.max(1) as f64),
            ]);
        }
    }
    table.print();
    emitter.finish();
}
