//! **E6 — Independent fuzzy checkpoints** (§3.2, conclusion (6)).
//!
//! Claims: each client checkpoints on its own (no synchronization with
//! other clients or the server), checkpoints are fuzzy (no quiescing), so
//! runtime overhead is a smooth function of the interval — and a shorter
//! interval buys proportionally faster client restart.
//!
//! Sweep: checkpoint interval (records between fuzzy checkpoints) →
//! workload throughput, checkpoints taken, then crash+restart time.

// Experiment sweeps mutate one config field at a time; the
// default-then-assign pattern is the point.
#![allow(clippy::field_reassign_with_default)]

use fgl::{System, SystemConfig};
use fgl_bench::{banner, standard_spec, txns_per_client, MetricsEmitter};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, Table};
use fgl_sim::workload::WorkloadKind;
use std::time::Duration;

fn main() {
    banner(
        "E6: client checkpoint interval: overhead vs restart time",
        "fuzzy checkpoints run without quiescing; the interval trades \
         runtime log forces against restart scan length",
    );
    let sweep: Vec<u64> = if fgl_bench::quick_mode() {
        vec![50, 500]
    } else {
        vec![25, 100, 500, 2000, 8000]
    };
    let clients = 2;
    let mut emitter = MetricsEmitter::new("e6_checkpoints");
    let mut table = Table::new(&[
        "ckpt every N recs",
        "commits/s",
        "checkpoints",
        "restart ms",
        "records scanned",
    ]);
    for &interval in &sweep {
        let cfg = SystemConfig {
            client_checkpoint_every: interval,
            disk_latency: Duration::from_micros(400),
            ..Default::default()
        };
        let sys = System::build(cfg, clients).expect("build");
        let mut spec = standard_spec(WorkloadKind::HotCold, clients);
        spec.write_fraction = 0.6;
        let layout =
            populate(sys.client(0), spec.pages, spec.objects_per_page, 64).expect("populate");
        let mut opts = HarnessOptions::new(spec, txns_per_client());
        opts.seed = 0xE6;
        let report = run_workload(&sys, &layout, None, &opts).expect("run");
        let ckpts = sys.client(0).stats().checkpoints;
        // Crash client 0 and measure restart.
        sys.client(0).crash();
        let rec = sys.client(0).recover().expect("recover");
        emitter.row(
            &[("ckpt_interval", interval.to_string())],
            &sys.metrics_snapshot(),
        );
        table.row(vec![
            interval.to_string(),
            f1(report.throughput()),
            ckpts.to_string(),
            f1(rec.elapsed.as_secs_f64() * 1e3),
            rec.records_scanned.to_string(),
        ]);
    }
    table.print();
    emitter.finish();
}
