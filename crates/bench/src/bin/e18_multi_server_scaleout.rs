//! **E18 — Multi-server scale-out** (partitioned page service).
//!
//! Claim: with `server_instances = N`, pages partition across N
//! independent page servers by `PageId % N`, and the §4.1 server-logging
//! commit force — one serialized simulated-disk write per commit, per
//! server — multiplies its aggregate capacity by N for partition-local
//! transactions: each instance forces its own log behind its own mutex,
//! and the touched-page hint routes a local commit to exactly one
//! instance. Client-based logging never had the serialized-force
//! bottleneck (clients force their own logs in parallel), so its gain is
//! the per-instance hot-path parallelism alone — the server-log speedup
//! must exceed it, the difference being the recovered force capacity.
//!
//! Sweep: instances {1,2,4} × cross-partition probability {0, 0.2},
//! PRIVATE workload aligned to the clients' home partitions
//! (`partition_stride = instances`); every cell oracle-verified. The
//! 20%-cross cells exercise cross-server commits (a commit fans out to
//! every touched instance and waits for the max, not the sum, of the
//! forces) and the cross-server deadlock path.

use fgl::{CommitPolicy, System};
use fgl_bench::{
    banner, experiment_config, policy_name, quick_mode, standard_spec, txns_per_client,
    MetricsEmitter,
};
use fgl_sim::harness::{run_workload, HarnessOptions, SchedulerKind};
use fgl_sim::oracle::Oracle;
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, f2, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E18: multi-server scale-out",
        "pages partition across N server instances by PageId % N; the §4.1 \
         serialized per-server commit force scales with N on partition-local \
         workloads (client-log isolates the hot-path share of the gain); \
         every cell oracle-verified",
    );
    let instance_sweep: Vec<usize> = if quick_mode() {
        vec![1, 4]
    } else {
        vec![1, 2, 4]
    };
    let clients = if quick_mode() { 4 } else { 8 };
    let cross_sweep: &[f64] = if quick_mode() { &[0.0] } else { &[0.0, 0.2] };

    let mut emitter = MetricsEmitter::new("e18_multi_server_scaleout");
    let mut table = Table::new(&[
        "clients",
        "instances",
        "cross",
        "policy",
        "commits/s",
        "p50 commit us",
        "p95 commit us",
        "ships",
        "aborts",
    ]);
    // (cross, policy, instances) -> commits/s, for the speedup summary.
    let mut cells: Vec<(f64, CommitPolicy, usize, f64)> = Vec::new();

    for &cross in cross_sweep {
        for policy in [CommitPolicy::ClientLog, CommitPolicy::ServerLog] {
            for &instances in &instance_sweep {
                let cfg = experiment_config()
                    .with_commit_policy(policy)
                    .with_server_instances(instances);
                let sys = System::build(cfg, clients).expect("build");
                let mut spec = standard_spec(WorkloadKind::Private, clients);
                spec.partition_stride = instances;
                spec.cross_partition_probability = cross;
                let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 64)
                    .expect("populate");
                let oracle = Oracle::new();
                oracle.seed(sys.client(0), &layout).expect("seed oracle");

                // Per-client commit counts before the measured run, so the
                // per-instance attribution below is a clean delta.
                let before: Vec<u64> = (0..clients)
                    .map(|i| sys.client(i).stats().commits)
                    .collect();

                let mut opts = HarnessOptions::new(spec, txns_per_client());
                opts.seed = 0xE18 ^ (instances as u64) << 8;
                opts.scheduler = SchedulerKind::Event;
                let mut report = run_workload(&sys, &layout, Some(&oracle), &opts).expect("run");
                // Per-client commit deltas, read before the verify pass
                // commits its own read transaction.
                let after: Vec<u64> = (0..clients)
                    .map(|i| sys.client(i).stats().commits)
                    .collect();
                let verify = oracle.verify_via_reads(sys.client(0)).expect("verify");
                assert!(
                    verify.is_clean(),
                    "oracle mismatch at instances={instances} cross={cross} \
                     policy={policy:?}: {verify:?}"
                );

                // Attribute commits to the committing client's home
                // instance (client i lives on partition i % N under the
                // aligned workload) and nest them under srv{k}_ alongside
                // the per-instance server counters.
                let mut per_inst = vec![0u64; instances];
                for (i, b) in before.iter().enumerate() {
                    per_inst[i % instances] += after[i] - b;
                }
                for (k, v) in per_inst.iter().enumerate() {
                    report.metrics.set_counter(&format!("srv{k}_commits"), *v);
                }

                emitter.row(
                    &[
                        ("clients", clients.to_string()),
                        ("instances", instances.to_string()),
                        ("cross", cross.to_string()),
                        ("policy", policy_name(policy).to_string()),
                    ],
                    &report.metrics,
                );
                cells.push((cross, policy, instances, report.throughput()));
                let ships: u64 = sys.servers.iter().map(|s| s.stats().commit_log_ships).sum();
                table.row(vec![
                    clients.to_string(),
                    instances.to_string(),
                    format!("{:.0}%", cross * 100.0),
                    policy_name(policy).into(),
                    f1(report.throughput()),
                    report.latency_us(50.0).to_string(),
                    report.latency_us(95.0).to_string(),
                    ships.to_string(),
                    report.aborts.to_string(),
                ]);
            }
        }
    }
    table.print();

    // Scale-out summary: aggregate commits/s relative to one instance.
    println!();
    println!("speedup vs instances=1 (same total clients):");
    let mut summary = Table::new(&["cross", "policy", "instances", "speedup"]);
    for &(cross, policy, instances, tput) in &cells {
        if instances == 1 {
            continue;
        }
        let base = cells
            .iter()
            .find(|(c, p, n, _)| *c == cross && *p == policy && *n == 1)
            .map(|(_, _, _, t)| *t)
            .unwrap_or(f64::NAN);
        summary.row(vec![
            format!("{:.0}%", cross * 100.0),
            policy_name(policy).into(),
            instances.to_string(),
            f2(tput / base),
        ]);
    }
    summary.print();
    emitter.finish();
}
