//! **E10 — Adaptive granularity: lock traffic on private data** (§2,
//! \[3\]).
//!
//! The paper adopts the adaptive scheme of Carey, Franklin &
//! Zaharioudakis: clients take *page* locks until a conflict de-escalates
//! them. E2 shows adaptivity matching object locks under contention; this
//! experiment shows the other half of the bargain — on PRIVATE and
//! HOTCOLD workloads one page lock covers all of a page's objects, so the
//! lock-request traffic collapses versus pure object locking.

use fgl::{LockGranularity, MsgKind, System};
use fgl_bench::{
    banner, experiment_config, granularity_name, standard_spec, txns_per_client, MetricsEmitter,
};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, f2, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E10: adaptive granularity lock traffic on low-sharing workloads",
        "page locks amortize over all objects of a page; adaptivity keeps \
         that win where there is no sharing and de-escalates where there is",
    );
    let clients = if fgl_bench::quick_mode() { 2 } else { 4 };
    let mut emitter = MetricsEmitter::new("e10_adaptive_traffic");
    let mut table = Table::new(&[
        "workload",
        "granularity",
        "commits/s",
        "lock reqs/commit",
        "cb/commit",
        "cb/commit unbatched",
        "local grant ratio",
    ]);
    for kind in [
        WorkloadKind::Private,
        WorkloadKind::HotCold,
        WorkloadKind::Uniform,
    ] {
        for granularity in [LockGranularity::Object, LockGranularity::Adaptive] {
            // Two runs per row: callback batching on (default) and off, so
            // the row shows callback traffic under both wire protocols.
            let mut per_batching = Vec::new();
            let mut local_ratio = 0.0;
            for batching in [true, false] {
                let cfg = experiment_config()
                    .with_granularity(granularity)
                    .with_callback_batching(batching);
                let sys = System::build(cfg, clients).expect("build");
                let mut spec = standard_spec(kind, clients);
                spec.write_fraction = 0.4;
                let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 64)
                    .expect("populate");
                let mut opts = HarnessOptions::new(spec, txns_per_client());
                opts.seed = 0xE10;
                let report = run_workload(&sys, &layout, None, &opts).expect("run");
                let cb_per_commit =
                    report.net.count(MsgKind::Callback) as f64 / report.commits.max(1) as f64;
                emitter.row(
                    &[
                        ("workload", kind.name().to_string()),
                        ("granularity", granularity_name(granularity).to_string()),
                        ("batching", batching.to_string()),
                        ("callback_msgs_per_commit", format!("{cb_per_commit:.4}")),
                    ],
                    &report.metrics,
                );
                if batching {
                    let stats: Vec<_> = sys.clients.iter().map(|c| c.stats()).collect();
                    let local: u64 = stats.iter().map(|s| s.local_grants).sum();
                    let global: u64 = stats.iter().map(|s| s.global_lock_requests).sum();
                    local_ratio = local as f64 / (local + global).max(1) as f64;
                }
                per_batching.push(report);
            }
            let batched = &per_batching[0];
            let unbatched = &per_batching[1];
            table.row(vec![
                kind.name().into(),
                granularity_name(granularity).into(),
                f1(batched.throughput()),
                f2(batched.net.count(MsgKind::LockReq) as f64 / batched.commits.max(1) as f64),
                f2(batched.net.count(MsgKind::Callback) as f64 / batched.commits.max(1) as f64),
                f2(unbatched.net.count(MsgKind::Callback) as f64 / unbatched.commits.max(1) as f64),
                f2(local_ratio),
            ]);
        }
    }
    table.print();
    emitter.finish();
}
