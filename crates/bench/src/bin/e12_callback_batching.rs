//! **E12 — Per-destination callback batching and group commit** (§3.2,
//! §4.1).
//!
//! Two ablations of the commit/callback fast path:
//!
//! 1. *Callback batching*: every callback a GLM decision emits for one
//!    client ships as a single batch message, and batches to distinct
//!    holders go out in parallel — a grant blocked on N holders waits
//!    max(RTT) instead of sum(RTT), and the callback message count per
//!    commit collapses. The ablation (`callback_batching = false`)
//!    reproduces the one-callback-one-round-trip protocol.
//! 2. *Group commit*: concurrent committers on one client coalesce into
//!    a single private-log force; a committer whose commit record is
//!    already durable piggybacks. The ablation forces once per commit.
//!
//! Both halves verify committed state against the oracle — batching and
//! coalescing must not lose or reorder any update.

use fgl::{MsgKind, System};
use fgl_bench::{banner, experiment_config, standard_spec, txns_per_client, MetricsEmitter};
use fgl_sim::crash::prepare;
use fgl_sim::harness::{run_workload, HarnessOptions, RunReport};
use fgl_sim::table::{f1, f2, Table};
use fgl_sim::workload::WorkloadKind;

fn run_batching_cell(clients: usize, batching: bool) -> RunReport {
    let cfg = experiment_config().with_callback_batching(batching);
    let sys = System::build(cfg, clients).expect("build");
    // HICON with a high write fraction: every client updates objects of
    // the same few hot pages, so lock grants routinely call back several
    // holders at once — the multi-destination case batching targets. A
    // slice of structural updates (resize → page-X, §3.1) adds the
    // multi-callback-per-holder case: a page-X grant calls back every
    // object lock a holder has cached on that page in one wave.
    let mut spec = standard_spec(WorkloadKind::HiCon, clients);
    spec.write_fraction = 0.5;
    spec.structural_fraction = 0.1;
    // Scale the hot set with the client count so page-X storms stay
    // contended but short of full serialization.
    spec.hot_pages = (2 * clients).max(4);
    let (layout, oracle) = prepare(&sys, &spec).expect("prepare");
    let mut opts = HarnessOptions::new(spec, txns_per_client() / 2);
    opts.seed = 0xE12;
    let report = run_workload(&sys, &layout, Some(&oracle), &opts).expect("run");
    let verify = oracle.verify_via_reads(sys.client(0)).expect("verify");
    assert!(
        verify.is_clean(),
        "stale objects with batching={batching}: {:?}",
        verify.mismatches
    );
    report
}

fn run_group_commit_cell(clients: usize, committers: usize, group_commit: bool) -> RunReport {
    let cfg = experiment_config().with_group_commit(group_commit);
    let sys = System::build(cfg, clients).expect("build");
    // PRIVATE keeps lock conflicts out of the measurement: the contended
    // resource is each client's own log disk, which is exactly what group
    // commit arbitrates.
    let mut spec = standard_spec(WorkloadKind::Private, clients);
    spec.write_fraction = 0.5;
    let (layout, oracle) = prepare(&sys, &spec).expect("prepare");
    let mut opts = HarnessOptions::new(spec, txns_per_client() / 2);
    opts.seed = 0x6C12;
    opts.threads_per_client = committers;
    let report = run_workload(&sys, &layout, Some(&oracle), &opts).expect("run");
    let verify = oracle.verify_via_reads(sys.client(0)).expect("verify");
    assert!(
        verify.is_clean(),
        "stale objects with group_commit={group_commit}: {:?}",
        verify.mismatches
    );
    report
}

fn main() {
    banner(
        "E12: callback batching fan-out and group commit",
        "one batch message per holder delivered in parallel vs. one round \
         trip per callback; coalesced private-log forces vs. one per commit",
    );
    let client_counts: Vec<usize> = if fgl_bench::quick_mode() {
        vec![2, 4]
    } else {
        vec![4, 8, 12]
    };
    let mut emitter = MetricsEmitter::new("e12_callback_batching");

    println!("callback batching (HICON, object-level conflicts):");
    let mut table = Table::new(&[
        "clients",
        "batching",
        "commits/s",
        "cb msgs/commit",
        "cb bytes/commit",
        "cb rtt p95 us",
        "commit p95 us",
    ]);
    for &n in &client_counts {
        let mut per_commit = Vec::new();
        for batching in [true, false] {
            let report = run_batching_cell(n, batching);
            let commits = report.commits.max(1) as f64;
            let cb_msgs = (report.net.count(MsgKind::Callback)
                + report.net.count(MsgKind::CallbackReply)) as f64
                / commits;
            let cb_bytes = (report.net.bytes[MsgKind::Callback as usize]
                + report.net.bytes[MsgKind::CallbackReply as usize])
                as f64
                / commits;
            let rtt_p95 = report
                .metrics
                .hist(fgl::HistKind::CallbackRoundTrip)
                .map(|h| h.p95())
                .unwrap_or(0);
            emitter.row(
                &[
                    ("section", "batching".to_string()),
                    ("clients", n.to_string()),
                    ("batching", batching.to_string()),
                ],
                &report.metrics,
            );
            table.row(vec![
                n.to_string(),
                if batching { "on" } else { "off" }.into(),
                f1(report.throughput()),
                f2(cb_msgs),
                f1(cb_bytes),
                rtt_p95.to_string(),
                report.latency_us(95.0).to_string(),
            ]);
            per_commit.push(cb_msgs);
        }
        let (on, off) = (per_commit[0], per_commit[1]);
        if off > 0.0 {
            println!(
                "  {n} clients: callback msgs/commit {:.2} -> {:.2} ({:+.0}%)",
                off,
                on,
                (on - off) / off * 100.0
            );
        }
    }
    table.print();

    println!();
    println!("group commit (PRIVATE, 4 committer threads per client):");
    let committers = 4;
    let mut gc_table = Table::new(&[
        "clients",
        "group commit",
        "commits/s",
        "p50 us",
        "p95 us",
        "forces/commit",
        "piggybacked",
    ]);
    for &n in &client_counts {
        for group_commit in [true, false] {
            let report = run_group_commit_cell(n, committers, group_commit);
            let commits = report.commits.max(1);
            let forces = report
                .metrics
                .hist(fgl::HistKind::LogForce)
                .map(|h| h.count)
                .unwrap_or(0);
            let piggybacked = report
                .metrics
                .counters
                .get("client_commits_piggybacked")
                .copied()
                .unwrap_or(0);
            emitter.row(
                &[
                    ("section", "group_commit".to_string()),
                    ("clients", n.to_string()),
                    ("committers", committers.to_string()),
                    ("group_commit", group_commit.to_string()),
                ],
                &report.metrics,
            );
            gc_table.row(vec![
                n.to_string(),
                if group_commit { "on" } else { "off" }.into(),
                f1(report.throughput()),
                report.latency_us(50.0).to_string(),
                report.latency_us(95.0).to_string(),
                f2(forces as f64 / commits as f64),
                piggybacked.to_string(),
            ]);
        }
    }
    gc_table.print();
    emitter.finish();
}
