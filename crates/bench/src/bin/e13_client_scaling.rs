//! **E13 — Client scaling: event-driven scheduler** (tentpole for the
//! M:N driver).
//!
//! Claim: the `threads` driver needs one OS thread per simulated client,
//! so a 1024-client sweep costs 1024 kernel threads mostly asleep in
//! simulated disk/network latency. The `event` driver multiplexes the
//! same committer loops as green tasks onto a fixed `fgl-sched` worker
//! pool, parking latency on a timer wheel instead — thousands of clients
//! on a handful of OS threads, with identical protocol semantics (the
//! counted message fabric sees the same per-kind traffic).
//!
//! Sweep: clients {16, 64, 256, 1024} × scheduler {threads, event},
//! PRIVATE workload (disjoint per-client footprints keep counts
//! interleaving-independent). Reported per cell: throughput, p50/p95
//! commit latency, driver threads, and the peak OS-thread count of the
//! whole process sampled from `/proc/self/status` while the cell runs.

use fgl::{System, SystemConfig};
use fgl_bench::{banner, experiment_config, quick_mode, MetricsEmitter};
use fgl_sim::harness::{run_workload, HarnessOptions, RunReport, SchedulerKind};
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, Table};
use fgl_sim::workload::{WorkloadKind, WorkloadSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn spec_for(clients: usize) -> WorkloadSpec {
    let mut s = WorkloadSpec::new(WorkloadKind::Private);
    // Two private pages per client keeps the populated database small
    // enough for the 1024-client cell while preserving disjointness.
    s.pages = (clients * 2).max(32);
    s.objects_per_page = 8;
    s.ops_per_txn = 4;
    s.write_fraction = 0.5;
    s
}

fn cfg_for(clients: usize) -> SystemConfig {
    let mut cfg = experiment_config();
    // Shrink per-client state so the 1024-client cell fits comfortably:
    // small pages, small caches; the server pool holds the working set so
    // the sweep measures scheduling, not buffer-pool churn.
    cfg.page_size = 1024;
    cfg.client_cache_pages = 8;
    cfg.server_cache_pages = (clients * 2).max(256);
    cfg
}

/// Transactions per client, scaled down as the fleet grows so every cell
/// does a comparable amount of total work.
fn txns_for(clients: usize) -> usize {
    let budget = if quick_mode() { 2048 } else { 8192 };
    (budget / clients).clamp(4, 40)
}

/// Current OS-thread count of this process (`Threads:` in
/// `/proc/self/status`); 0 if unreadable (non-Linux).
fn current_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Run `f` while a sampler thread tracks the process's peak thread
/// count. The sampler itself is included in the peak — it inflates both
/// schedulers equally by one.
fn with_peak_threads<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let sampler = std::thread::spawn(move || {
        let mut peak = current_threads();
        while !stop2.load(Ordering::Relaxed) {
            peak = peak.max(current_threads());
            std::thread::sleep(Duration::from_millis(2));
        }
        peak
    });
    let r = f();
    stop.store(true, Ordering::Relaxed);
    let peak = sampler.join().expect("sampler");
    (r, peak)
}

fn run_cell(clients: usize, scheduler: SchedulerKind) -> (RunReport, usize) {
    let sys = System::build(cfg_for(clients), clients).expect("build");
    let spec = spec_for(clients);
    let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 32).expect("populate");
    let mut opts = HarnessOptions::new(spec, txns_for(clients));
    opts.seed = 0xE13;
    opts.scheduler = scheduler;
    with_peak_threads(|| run_workload(&sys, &layout, None, &opts).expect("run"))
}

fn main() {
    banner(
        "E13: client scaling, threads vs event scheduler",
        "green tasks on a fixed worker pool replace one-OS-thread-per-client; \
         simulated latency parks on a timer wheel (PRIVATE workload)",
    );
    let cells: Vec<(usize, SchedulerKind)> = if quick_mode() {
        // CI shape: the small cell both ways (parity check) plus the
        // 256-client cell under the event scheduler (the scaling claim).
        vec![
            (16, SchedulerKind::Threads),
            (16, SchedulerKind::Event),
            (256, SchedulerKind::Event),
        ]
    } else {
        let mut v = Vec::new();
        for &clients in &[16usize, 64, 256, 1024] {
            v.push((clients, SchedulerKind::Threads));
            v.push((clients, SchedulerKind::Event));
        }
        v
    };

    let mut emitter = MetricsEmitter::new("e13_client_scaling");
    let mut table = Table::new(&[
        "clients",
        "scheduler",
        "txns/cl",
        "commits/s",
        "p50 commit us",
        "p95 commit us",
        "aborts",
        "driver thr",
        "peak thr",
    ]);
    let mut event_1024_peak: Option<(usize, usize)> = None;
    let mut parity: Vec<(usize, SchedulerKind, f64)> = Vec::new();
    for &(clients, scheduler) in &cells {
        let (report, peak) = run_cell(clients, scheduler);
        emitter.row(
            &[
                ("clients", clients.to_string()),
                ("scheduler", scheduler.name().to_string()),
                ("txns_per_client", txns_for(clients).to_string()),
                ("driver_threads", report.driver_threads.to_string()),
                ("peak_threads", peak.to_string()),
            ],
            &report.metrics,
        );
        table.row(vec![
            clients.to_string(),
            scheduler.name().to_string(),
            txns_for(clients).to_string(),
            f1(report.throughput()),
            report.latency_us(50.0).to_string(),
            report.latency_us(95.0).to_string(),
            report.aborts.to_string(),
            report.driver_threads.to_string(),
            peak.to_string(),
        ]);
        if scheduler == SchedulerKind::Event && clients == 1024 {
            event_1024_peak = Some((report.driver_threads, peak));
        }
        parity.push((clients, scheduler, report.throughput()));
    }
    table.print();

    println!();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Some((drivers, peak)) = event_1024_peak {
        println!(
            "1024-client event cell: {drivers} driver threads, {peak} process threads peak \
             (host has {cores} cores; budget 2x cores + harness overhead)"
        );
    }
    // Small-cell parity: the event scheduler should be within noise of
    // the threads driver where threads are cheap.
    let t16 = parity
        .iter()
        .find(|(c, s, _)| *c == 16 && *s == SchedulerKind::Threads);
    let e16 = parity
        .iter()
        .find(|(c, s, _)| *c == 16 && *s == SchedulerKind::Event);
    if let (Some((_, _, t)), Some((_, _, e))) = (t16, e16) {
        if *t > 0.0 {
            println!(
                "16-client parity: event/threads throughput ratio {}",
                f1(e / t)
            );
        }
    }
    emitter.finish();
}
