//! **E3 — Merging page copies vs. the update token** (§3.1).
//!
//! Claim: the update-token approach ("an update token is acquired before
//! updating a page") is *communication intensive* — token transfers and
//! the page ships that accompany them dominate — while merging page
//! copies reconciles concurrent updates with CPU work only.
//!
//! Reports per-workload message counts, page ships and throughput for
//! both policies.

use fgl::{System, UpdatePolicy};
use fgl_bench::{
    banner, experiment_config, standard_spec, txns_per_client, update_policy_name, MetricsEmitter,
};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, f2, net_breakdown, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E3: merge-copies vs update-token",
        "token = page-X for every update: token ping-pong ships pages and \
         serializes writers; merging reconciles copies at the server",
    );
    let clients = if fgl_bench::quick_mode() { 4 } else { 8 };
    let mut emitter = MetricsEmitter::new("e3_merge_vs_token");
    let mut table = Table::new(&[
        "workload",
        "policy",
        "commits/s",
        "msgs/commit",
        "page-ships/commit",
        "server merges",
        "aborts",
    ]);
    for kind in [
        WorkloadKind::HiCon,
        WorkloadKind::Uniform,
        WorkloadKind::HotCold,
    ] {
        for policy in [UpdatePolicy::MergeCopies, UpdatePolicy::UpdateToken] {
            let mut cfg = experiment_config().with_update_policy(policy);
            if policy == UpdatePolicy::UpdateToken {
                // The token serializes all writers of a page; under HICON
                // that means constant deadlock-by-timeout. Keep it short.
                cfg.lock_timeout = std::time::Duration::from_millis(300);
            }
            let sys = System::build(cfg, clients).expect("build");
            let mut spec = standard_spec(kind, clients);
            spec.write_fraction = 0.5;
            let layout =
                populate(sys.client(0), spec.pages, spec.objects_per_page, 64).expect("populate");
            let txns = if policy == UpdatePolicy::UpdateToken {
                txns_per_client() / 4
            } else {
                txns_per_client()
            };
            let mut opts = HarnessOptions::new(spec, txns);
            opts.seed = 0xE3;
            let report = run_workload(&sys, &layout, None, &opts).expect("run");
            emitter.row(
                &[
                    ("workload", kind.name().to_string()),
                    ("policy", update_policy_name(policy).to_string()),
                ],
                &report.metrics,
            );
            let ships = report.net.count(fgl::MsgKind::PageShip);
            table.row(vec![
                kind.name().into(),
                update_policy_name(policy).into(),
                f1(report.throughput()),
                f2(report.messages_per_commit()),
                f2(ships as f64 / report.commits.max(1) as f64),
                sys.server.stats().merges.to_string(),
                report.aborts.to_string(),
            ]);
        }
    }
    table.print();

    // Where does the update-token traffic go? One detailed breakdown.
    println!();
    println!("message mix, HICON / update-token:");
    let cfg = {
        let mut c = experiment_config().with_update_policy(UpdatePolicy::UpdateToken);
        c.lock_timeout = std::time::Duration::from_millis(300);
        c
    };
    let sys = System::build(cfg, clients).expect("build");
    let mut spec = standard_spec(WorkloadKind::HiCon, clients);
    spec.write_fraction = 0.5;
    let layout = populate(sys.client(0), spec.pages, spec.objects_per_page, 64).expect("populate");
    let mut opts = HarnessOptions::new(spec, txns_per_client() / 8);
    opts.seed = 0xE3B;
    let report = run_workload(&sys, &layout, None, &opts).expect("run");
    net_breakdown(&report.net, report.commits).print();
    emitter.row(
        &[
            ("workload", "hicon-detail".to_string()),
            ("policy", "update-token".to_string()),
        ],
        &report.metrics,
    );
    emitter.finish();
}
