//! **E5 — Server crash recovery, parallel client replay** (§3.4,
//! conclusion (3)).
//!
//! Claims: after a server crash the clients recover the affected pages by
//! replaying their *private* logs (never merged), and different clients
//! recover pages **in parallel**, so restart time stays flat as more
//! clients (and proportionally more dirty pages) are involved.
//!
//! Setup: PRIVATE workload with a small client cache so updated pages are
//! replaced (in the DPT but *not* cached — exactly the §3.4 recovery
//! candidates), then crash the server and time `restart_recovery`.

// Experiment sweeps mutate one config field at a time; the
// default-then-assign pattern is the point.
#![allow(clippy::field_reassign_with_default)]

use fgl::{System, SystemConfig};
use fgl_bench::{banner, standard_spec, txns_per_client, MetricsEmitter};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::oracle::Oracle;
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E5: server restart recovery vs participating clients",
        "clients replay private logs against server-supplied base copies; \
         replay units run in parallel (§3.4)",
    );
    let sweep: Vec<usize> = if fgl_bench::quick_mode() {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 12]
    };
    let mut emitter = MetricsEmitter::new("e5_server_recovery");
    let mut table = Table::new(&[
        "clients",
        "pages replayed",
        "replay units",
        "clients involved",
        "restart ms",
        "verify",
    ]);
    for &n in &sweep {
        // Small client caches force replacements: dirty pages leave the
        // cache and become §3.4 recovery candidates.
        let cfg = SystemConfig {
            client_cache_pages: 8,
            ..Default::default()
        };
        let sys = System::build(cfg, n).expect("build");
        let mut spec = standard_spec(WorkloadKind::Private, n);
        spec.write_fraction = 0.8;
        let layout =
            populate(sys.client(0), spec.pages, spec.objects_per_page, 64).expect("populate");
        let oracle = Oracle::new();
        oracle.seed(sys.client(0), &layout).expect("seed");
        let mut opts = HarnessOptions::new(spec, txns_per_client());
        opts.seed = 0xE5;
        run_workload(&sys, &layout, Some(&oracle), &opts).expect("run");

        sys.server.crash();
        let report = sys.server.restart_recovery().expect("restart");
        let verify = oracle.verify_via_reads(sys.client(0)).expect("verify");
        emitter.row(&[("clients", n.to_string())], &sys.metrics_snapshot());
        table.row(vec![
            n.to_string(),
            report.pages_recovered.to_string(),
            report.recovery_units.to_string(),
            report.clients_involved.to_string(),
            f1(report.elapsed.as_secs_f64() * 1e3),
            if verify.is_clean() {
                "clean".into()
            } else {
                format!("{} MISMATCHES", verify.mismatches.len())
            },
        ]);
    }
    table.print();
    emitter.finish();
}
