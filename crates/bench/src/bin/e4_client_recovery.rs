//! **E4 — Client crash recovery cost** (§3.3).
//!
//! Claims: client crash recovery is handled *exclusively by the client*
//! from its private log; the DCT filter (Property 1) limits the pages
//! fetched from the server to those that may actually need redo; work
//! grows with the un-checkpointed log suffix.
//!
//! Sweep: updates executed since the last checkpoint (uncommitted work in
//! flight at the crash) → recovery time, records scanned/applied, pages
//! fetched. The `dct-filter` column shows pages the filter excluded.

// Experiment sweeps mutate one config field at a time; the
// default-then-assign pattern is the point.
#![allow(clippy::field_reassign_with_default)]

use fgl::RecoveryOptions;
use fgl::{System, SystemConfig};
use fgl_bench::{banner, MetricsEmitter};
use fgl_common::rng::DetRng;
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, Table};

fn main() {
    banner(
        "E4: client crash recovery vs work since checkpoint",
        "recovery scans the private log from the last complete checkpoint; \
         only DCT-listed pages are fetched and redone (Property 1)",
    );
    let sweep: Vec<usize> = if fgl_bench::quick_mode() {
        vec![50, 200]
    } else {
        vec![50, 200, 800, 2000, 5000]
    };
    let mut emitter = MetricsEmitter::new("e4_client_recovery");
    let mut table = Table::new(&[
        "updates since ckpt",
        "recovery ms",
        "records scanned",
        "records applied",
        "pages fetched",
        "pages in DPT",
        "losers",
    ]);
    for &updates in &sweep {
        let cfg = SystemConfig {
            client_checkpoint_every: u64::MAX / 2, // checkpoints only when asked
            client_cache_pages: 256,
            ..Default::default()
        };
        let sys = System::build(cfg, 2).expect("build");
        let pages = 64;
        let per_page = 16;
        let layout = populate(sys.client(0), pages, per_page, 64).expect("populate");
        let c = sys.client(0);
        // Flush the populate-era dirt so the sweep measures only the
        // post-checkpoint work, then anchor a checkpoint.
        c.harden().expect("harden");
        let mut rng = DetRng::new(0xE4);
        let mut buf = [0u8; 64];
        for i in 0..updates {
            let t = c.begin().expect("begin");
            let obj = layout.objects[rng.range_usize(0, layout.objects.len())];
            rng.fill_bytes(&mut buf);
            c.write(t, obj, &buf).expect("write");
            if i % 10 == 0 {
                // Sprinkle structural work too.
                c.resize(t, obj, 72).expect("grow");
                c.resize(t, obj, 64).expect("shrink");
            }
            c.commit(t).expect("commit");
        }
        let t = c.begin().expect("begin loser");
        let obj = layout.objects[0];
        rng.fill_bytes(&mut buf);
        c.write(t, obj, &buf).expect("loser write");
        // Make the loser durable so restart has something to undo.
        c.checkpoint().expect("force");
        c.crash();
        let report = c.recover().expect("recover");
        emitter.row(
            &[
                ("sweep", "updates_since_ckpt".to_string()),
                ("updates", updates.to_string()),
            ],
            &sys.metrics_snapshot(),
        );
        table.row(vec![
            updates.to_string(),
            f1(report.elapsed.as_secs_f64() * 1e3),
            report.records_scanned.to_string(),
            report.records_applied.to_string(),
            report.pages_fetched.to_string(),
            report.pages_recovered.to_string(),
            report.losers.to_string(),
        ]);
    }
    table.print();

    // Ablation: Property 1 (DCT filtering) on vs. off. With the filter
    // off, every DPT page is fetched and replayed even when its updates
    // are already safely on the server's disk.
    println!();
    println!("ablation: DCT filter (Property 1) on one 500-update run,");
    println!("followed by a harden (all pages flushed, DPT advanced):");
    let mut table = Table::new(&[
        "dct filter",
        "recovery ms",
        "pages fetched",
        "records applied",
    ]);
    for use_filter in [true, false] {
        let cfg = SystemConfig {
            client_checkpoint_every: u64::MAX / 2,
            client_cache_pages: 256,
            ..Default::default()
        };
        let sys = System::build(cfg, 2).expect("build");
        let layout = populate(sys.client(0), 64, 16, 64).expect("populate");
        let c = sys.client(0);
        c.harden().expect("harden");
        let mut rng = DetRng::new(0xE4A);
        let mut buf = [0u8; 64];
        for _ in 0..500 {
            let t = c.begin().expect("begin");
            let obj = layout.objects[rng.range_usize(0, layout.objects.len())];
            rng.fill_bytes(&mut buf);
            c.write(t, obj, &buf).expect("write");
            c.commit(t).expect("commit");
        }
        // Make the filter bite: client 1 reads every object on the even
        // pages (downgrading client 0's X locks to S), then those pages
        // are flushed — their DCT entries disappear (§3.2), so Property 1
        // marks them not-needing-recovery. The odd pages keep X locks and
        // stay in the DCT.
        let reader = sys.client(1);
        let t = reader.begin().expect("begin reader");
        for obj in layout.objects.iter().filter(|o| (o.page.0 % 2) == 0) {
            reader.read(t, *obj).expect("read");
        }
        reader.commit(t).expect("commit reader");
        for page in layout.pages.iter().filter(|p| p.0 % 2 == 0) {
            sys.server.flush_page(*page).expect("flush");
        }
        c.checkpoint().expect("ckpt");
        c.crash();
        let report = c
            .recover_with(RecoveryOptions {
                use_dct_filter: use_filter,
            })
            .expect("recover");
        emitter.row(
            &[
                ("sweep", "dct_filter_ablation".to_string()),
                ("dct_filter", use_filter.to_string()),
            ],
            &sys.metrics_snapshot(),
        );
        table.row(vec![
            if use_filter { "on (paper)" } else { "off" }.into(),
            f1(report.elapsed.as_secs_f64() * 1e3),
            report.pages_fetched.to_string(),
            report.records_applied.to_string(),
        ]);
    }
    table.print();
    emitter.finish();
}
