//! **E1 — Logging-location scalability** (§1, §4.1; companion study \[20\]).
//!
//! Claim: client-based logging removes the server log from the commit
//! path, so throughput scales with the number of clients, while
//! ARIES/CSA-style server logging serializes every commit on the shared
//! server log and flattens out.
//!
//! Sweep: clients × {client-log, server-log, ship-pages}, HOTCOLD
//! workload. Reports commits/s, mean commit latency, messages per commit.

use fgl::{CommitPolicy, System};
use fgl_bench::{
    banner, client_sweep, experiment_config, policy_name, standard_spec, txns_per_client,
    MetricsEmitter,
};
use fgl_sim::harness::{run_workload, HarnessOptions};
use fgl_sim::setup::populate;
use fgl_sim::table::{f1, f2, Table};
use fgl_sim::workload::WorkloadKind;

fn main() {
    banner(
        "E1: logging-location scalability",
        "client-log commits force only the private log; server-log baselines \
         serialize commits on the server (HOTCOLD workload)",
    );
    let mut emitter = MetricsEmitter::new("e1_logging_scalability");
    let mut table = Table::new(&[
        "clients",
        "policy",
        "commits/s",
        "p50 commit us",
        "p95 commit us",
        "msgs/commit",
        "aborts",
    ]);
    for &n in &client_sweep() {
        for policy in [
            CommitPolicy::ClientLog,
            CommitPolicy::ServerLog,
            CommitPolicy::ShipPagesAtCommit,
        ] {
            let cfg = experiment_config().with_commit_policy(policy);
            let sys = System::build(cfg, n).expect("build");
            let spec = standard_spec(WorkloadKind::HotCold, n);
            let layout =
                populate(sys.client(0), spec.pages, spec.objects_per_page, 64).expect("populate");
            let mut opts = HarnessOptions::new(spec, txns_per_client());
            opts.seed = 0xE1;
            let report = run_workload(&sys, &layout, None, &opts).expect("run");
            emitter.row(
                &[
                    ("clients", n.to_string()),
                    ("policy", policy_name(policy).to_string()),
                ],
                &report.metrics,
            );
            table.row(vec![
                n.to_string(),
                policy_name(policy).into(),
                f1(report.throughput()),
                report.latency_us(50.0).to_string(),
                report.latency_us(95.0).to_string(),
                f2(report.messages_per_commit()),
                report.aborts.to_string(),
            ]);
        }
    }
    table.print();
    emitter.finish();
}
