//! **E16 — Memory cliff: how many clients fit under the event
//! scheduler?** (tentpole for stack pooling + lazy client state).
//!
//! Claim: with pooled green-task stacks (acquired lazily at first
//! activation, recycled on completion), lazily-initialised per-client
//! runtime state and an `Arc`-shared `SystemConfig`, the event driver
//! scales through repeated client doublings without the resident-set
//! cliff the eager design hit: pre-PR every spawned task committed a
//! full stack up front and every `ClientRuntime` built its maps and WAL
//! buffers at construction, so RSS grew linearly with *configured*
//! clients rather than *active* ones.
//!
//! Sweep: clients doubling geometrically from 1k (to 64k by default,
//! `FGL_E16_MAX_CLIENTS` to push further on a big box), event scheduler
//! only, PRIVATE workload with one private page per client, zero
//! simulated latency (pure algorithmic/memory cost). Per cell: commits/s,
//! p95 commit latency, peak RSS, RSS growth per client, stack-pool hit
//! rate and the `sched_stacks_*` counters. The sweep stops early —
//! before the driver OOMs — if a cell's RSS-per-client or p95 latency
//! blows up versus the first cell (the "cliff" the experiment is named
//! for); reaching the last cell without tripping the rule is the pass.
//!
//! **Each cell runs in its own child process** (a re-exec of this binary
//! with `FGL_E16_CELL` set). Running six cells in one process let heap
//! fragmentation from earlier cells' build/teardown churn slow later
//! cells ~3x — a real effect, but a property of the *harness* process,
//! not of the scheduler under test. Isolation also gives every cell a
//! clean RSS baseline.

use fgl::{System, SystemConfig};
use fgl_bench::{banner, quick_mode, MetricsEmitter};
use fgl_obs::{current_rss_bytes, RssSampler};
use fgl_sim::harness::{run_workload, HarnessOptions, SchedulerKind};
use fgl_sim::setup::populate_partitioned;
use fgl_sim::table::{f1, Table};
use fgl_sim::workload::{WorkloadKind, WorkloadSpec};
use std::time::Duration;

/// One private page per client: the footprint that actually has to
/// scale. Small pages keep the populated database proportional to the
/// fleet without dominating RSS themselves.
fn spec_for(clients: usize) -> WorkloadSpec {
    let mut s = WorkloadSpec::new(WorkloadKind::Private);
    s.pages = clients.max(32);
    s.objects_per_page = 4;
    s.ops_per_txn = 2;
    s.write_fraction = 0.5;
    s
}

fn cfg_for(clients: usize) -> SystemConfig {
    // Zero-latency base: no simulated disk/net stalls, so tasks mostly
    // run to completion and the live-stack set stays near the worker
    // count — the regime where the stack pool should be hitting ~always.
    SystemConfig {
        page_size: 512,
        client_cache_pages: 4,
        server_cache_pages: clients.max(256),
        // Partitioned populate leaves every client owning its region, so
        // no cold-start callback storm; the timeout only has to cover
        // scheduler backlog at the biggest cells.
        lock_timeout: Duration::from_secs(30),
        ..SystemConfig::default()
    }
}

/// Transactions per client: **constant across cells**, so per-client
/// fixed costs (task spawn, stack acquire, lazy-init warm-up, cold
/// faults on client state) amortise identically at every fleet size and
/// the throughput column compares like with like. A shrinking per-client
/// budget would read as a latency cliff that is really just thinner
/// amortisation.
fn txns_for(_clients: usize) -> usize {
    if quick_mode() {
        8
    } else {
        16
    }
}

/// The per-cell figures a child process reports back to the sweep.
#[derive(Clone, Debug, Default)]
struct CellOut {
    clients: usize,
    txns_per_client: usize,
    commits_per_s: f64,
    p95_us: u64,
    peak_rss: u64,
    rss_per_client: u64,
    hit_pct: u64,
    stacks_allocated: u64,
    rows: Vec<String>,
}

/// Run one cell in this process and report it (child mode).
fn run_cell(clients: usize) -> CellOut {
    let rss_before = current_rss_bytes();
    let sampler = RssSampler::start(Duration::from_millis(2));
    let sys = System::build(cfg_for(clients), clients).expect("build");
    let spec = spec_for(clients);
    let loaders: Vec<_> = (0..clients).map(|i| sys.client(i)).collect();
    let layout =
        populate_partitioned(&loaders, spec.pages, spec.objects_per_page, 32).expect("populate");
    drop(loaders);
    let mut opts = HarnessOptions::new(spec, txns_for(clients));
    opts.seed = 0xE16;
    opts.scheduler = SchedulerKind::Event;
    opts.sched_stack_kb = 64;
    let report = run_workload(&sys, &layout, None, &opts).expect("run");
    drop(sys);
    let peak_rss = sampler.stop();
    // Growth attributable to this cell (build + populate + run), per
    // configured client; the cell owns its process, so the baseline is
    // just binary + runtime startup.
    let rss_per_client = peak_rss.saturating_sub(rss_before) / clients as u64;
    let get = |k: &str| report.metrics.counters.get(k).copied().unwrap_or(0);
    let (reused, allocated) = (get("sched_stacks_reused"), get("sched_stacks_allocated"));
    let hit_pct = (reused * 100).checked_div(reused + allocated).unwrap_or(0);
    let mut emitter = MetricsEmitter::new("e16_memory_cliff");
    emitter.row(
        &[
            ("clients", clients.to_string()),
            ("scheduler", "event".to_string()),
            ("txns_per_client", txns_for(clients).to_string()),
            ("driver_threads", report.driver_threads.to_string()),
            ("peak_rss_bytes", peak_rss.to_string()),
            ("rss_per_client_bytes", rss_per_client.to_string()),
            ("stack_pool_hit_pct", hit_pct.to_string()),
        ],
        &report.metrics,
    );
    CellOut {
        clients,
        txns_per_client: txns_for(clients),
        commits_per_s: report.throughput(),
        p95_us: report.latency_us(95.0),
        peak_rss,
        rss_per_client,
        hit_pct,
        stacks_allocated: allocated,
        rows: emitter.rows_json().to_vec(),
    }
}

/// Child mode: run the one cell named by `FGL_E16_CELL` and print the
/// result to stdout for the parent — metrics rows between `@row` fences,
/// then one `@cell` summary line.
fn child_main(clients: usize) -> ! {
    let out = run_cell(clients);
    for row in &out.rows {
        println!("@row-begin");
        println!("{row}");
        println!("@row-end");
    }
    println!(
        "@cell clients={} txns_per_client={} commits_per_s={} p95_us={} peak_rss={} \
         rss_per_client={} hit_pct={} stacks_allocated={}",
        out.clients,
        out.txns_per_client,
        out.commits_per_s,
        out.p95_us,
        out.peak_rss,
        out.rss_per_client,
        out.hit_pct,
        out.stacks_allocated
    );
    std::process::exit(0);
}

/// Parent mode: re-exec self for one cell and parse its report.
fn spawn_cell(clients: usize) -> CellOut {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.env("FGL_E16_CELL", clients.to_string());
    if quick_mode() {
        cmd.arg("--quick");
    }
    let out = cmd.output().expect("spawn cell child");
    if !out.status.success() {
        panic!(
            "cell {clients} child failed ({}):\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut cell = CellOut::default();
    let mut in_row = false;
    let mut row = String::new();
    for line in stdout.lines() {
        match line {
            "@row-begin" => {
                in_row = true;
                row.clear();
            }
            "@row-end" => {
                in_row = false;
                cell.rows.push(row.trim_end().to_string());
            }
            l if in_row => {
                row.push_str(l);
                row.push('\n');
            }
            l if l.starts_with("@cell ") => {
                for kv in l["@cell ".len()..].split_whitespace() {
                    let (k, v) = kv.split_once('=').expect("@cell key=value");
                    match k {
                        "clients" => cell.clients = v.parse().unwrap(),
                        "txns_per_client" => cell.txns_per_client = v.parse().unwrap(),
                        "commits_per_s" => cell.commits_per_s = v.parse().unwrap(),
                        "p95_us" => cell.p95_us = v.parse().unwrap(),
                        "peak_rss" => cell.peak_rss = v.parse().unwrap(),
                        "rss_per_client" => cell.rss_per_client = v.parse().unwrap(),
                        "hit_pct" => cell.hit_pct = v.parse().unwrap(),
                        "stacks_allocated" => cell.stacks_allocated = v.parse().unwrap(),
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    assert!(cell.clients == clients, "child reported no @cell line");
    cell
}

fn max_clients() -> usize {
    if let Ok(v) = std::env::var("FGL_E16_MAX_CLIENTS") {
        return v.parse().expect("FGL_E16_MAX_CLIENTS must be an integer");
    }
    if quick_mode() {
        4096
    } else {
        65_536
    }
}

/// First cell of the sweep (default 1k); `FGL_E16_START_CLIENTS` lets a
/// debugging run jump straight to a suspect cell.
fn start_clients() -> usize {
    if let Ok(v) = std::env::var("FGL_E16_START_CLIENTS") {
        return v.parse().expect("FGL_E16_START_CLIENTS must be an integer");
    }
    1024
}

fn main() {
    if let Ok(v) = std::env::var("FGL_E16_CELL") {
        child_main(v.parse().expect("FGL_E16_CELL must be an integer"));
    }
    banner(
        "E16: memory cliff, client doublings under the event scheduler",
        "pooled task stacks + lazy per-client state + Arc-shared config; \
         sweep doubles clients until RSS/client or p95 latency blows up \
         (PRIVATE workload, zero simulated latency, one process per cell)",
    );

    let mut emitter = MetricsEmitter::new("e16_memory_cliff");
    let mut table = Table::new(&[
        "clients",
        "txns/cl",
        "commits/s",
        "p95 commit us",
        "peak rss mb",
        "rss/client kb",
        "pool hit %",
        "stacks alloc",
    ]);

    let mut first: Option<(u64, u64)> = None; // (rss_per_client, p95)
    let mut cliff: Option<(usize, String)> = None;
    let mut last: Option<CellOut> = None;
    let mut clients = start_clients();
    while clients <= max_clients() {
        let cell = spawn_cell(clients);
        for row in &cell.rows {
            emitter.raw_row(row.clone());
        }
        table.row(vec![
            clients.to_string(),
            cell.txns_per_client.to_string(),
            f1(cell.commits_per_s),
            cell.p95_us.to_string(),
            (cell.peak_rss >> 20).to_string(),
            (cell.rss_per_client >> 10).to_string(),
            cell.hit_pct.to_string(),
            cell.stacks_allocated.to_string(),
        ]);
        // Cliff rule: a cell whose per-client RSS growth or p95 commit
        // latency is >8x the first cell's means the flat-cost story broke
        // somewhere between the previous doubling and this one.
        let (rss0, p95_0) = *first.get_or_insert((cell.rss_per_client.max(1), cell.p95_us.max(1)));
        if cell.rss_per_client > 8 * rss0 {
            cliff = Some((
                clients,
                format!(
                    "rss/client {} KiB > 8x first-cell {} KiB",
                    cell.rss_per_client >> 10,
                    rss0 >> 10
                ),
            ));
        } else if cell.p95_us > 8 * p95_0 {
            cliff = Some((
                clients,
                format!("p95 {} us > 8x first-cell {p95_0} us", cell.p95_us),
            ));
        }
        last = Some(cell);
        if cliff.is_some() {
            break;
        }
        clients *= 2;
    }
    table.print();

    println!();
    match &cliff {
        Some((at, why)) => println!("memory cliff at {at} clients: {why}"),
        None => {
            if let Some(cell) = &last {
                println!(
                    "no cliff through {} clients: rss/client {} KiB, pool hit rate {}%, \
                     peak rss {} MiB",
                    cell.clients,
                    cell.rss_per_client >> 10,
                    cell.hit_pct,
                    cell.peak_rss >> 20
                );
            }
        }
    }
    emitter.finish();
}
