//! Shared scaffolding for the experiment binaries (E1–E9, `DESIGN.md`)
//! and the criterion micro-benchmarks.
//!
//! Every experiment binary accepts `--quick` to shrink the sweep (used by
//! CI and the recorded `bench_output.txt`); defaults are sized to finish
//! in tens of seconds on a laptop.

// Experiment sweeps mutate one config field at a time; the
// default-then-assign pattern is the point.
#![allow(clippy::field_reassign_with_default)]

use fgl::{CommitPolicy, LockGranularity, Snapshot, SystemConfig, UpdatePolicy};
use fgl_sim::workload::{WorkloadKind, WorkloadSpec};
use std::path::PathBuf;
use std::time::Duration;

/// Simulated device/network costs shared by the experiments: a 1996-ish
/// ratio (disk force ≫ LAN hop ≫ CPU) scaled down so sweeps finish
/// quickly. Only *relative* shapes matter (see DESIGN.md).
pub fn experiment_config() -> SystemConfig {
    SystemConfig {
        disk_latency: Duration::from_micros(400),
        net_latency: Duration::from_micros(40),
        lock_timeout: Duration::from_secs(2),
        ..Default::default()
    }
}

/// A zero-latency config for pure-algorithm measurements.
pub fn fast_config() -> SystemConfig {
    SystemConfig::default()
}

/// The standard experiment workload geometry.
pub fn standard_spec(kind: WorkloadKind, clients: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new(kind);
    spec.pages = (16 * clients.max(1)).max(32);
    spec.objects_per_page = 16;
    spec.ops_per_txn = 8;
    spec.write_fraction = 0.3;
    spec
}

/// `--quick` flag handling for experiment binaries.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Transactions per client for a sweep point.
pub fn txns_per_client() -> usize {
    if quick_mode() {
        40
    } else {
        150
    }
}

/// Client counts swept by the scalability experiments.
pub fn client_sweep() -> Vec<usize> {
    if quick_mode() {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 12, 16]
    }
}

/// Human-readable name for a commit policy.
pub fn policy_name(p: CommitPolicy) -> &'static str {
    match p {
        CommitPolicy::ClientLog => "client-log",
        CommitPolicy::ServerLog => "server-log",
        CommitPolicy::ShipPagesAtCommit => "ship-pages",
    }
}

/// Human-readable name for a lock granularity.
pub fn granularity_name(g: LockGranularity) -> &'static str {
    match g {
        LockGranularity::Object => "object",
        LockGranularity::Page => "page",
        LockGranularity::Adaptive => "adaptive",
    }
}

/// Human-readable name for an update policy.
pub fn update_policy_name(u: UpdatePolicy) -> &'static str {
    match u {
        UpdatePolicy::MergeCopies => "merge-copies",
        UpdatePolicy::UpdateToken => "update-token",
    }
}

/// Standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("==== {id} ====");
    println!("{claim}");
    println!();
}

/// Machine-readable metrics output for the experiment binaries.
///
/// Each sweep point becomes one row: the sweep parameters plus the
/// unified metrics [`Snapshot`] delta for that run.
/// [`finish`](MetricsEmitter::finish) writes
/// `$FGL_METRICS_DIR/<experiment>.json` (default `./metrics/`) with
/// schema
///
/// ```json
/// {"experiment": "e1", "rows": [{"params": {...}, "metrics": {...}}]}
/// ```
///
/// where each `metrics` object is [`Snapshot::to_json`] (counters +
/// histograms with p50/p95/p99).
pub struct MetricsEmitter {
    experiment: String,
    rows: Vec<String>,
}

impl MetricsEmitter {
    pub fn new(experiment: &str) -> MetricsEmitter {
        MetricsEmitter {
            experiment: experiment.to_string(),
            rows: Vec::new(),
        }
    }

    /// Record one sweep point. `params` are (name, value) pairs; numeric
    /// values pass through bare, anything else is quoted.
    pub fn row(&mut self, params: &[(&str, String)], metrics: &Snapshot) {
        let params_json: Vec<String> = params
            .iter()
            .map(|(k, v)| {
                if v.parse::<f64>().is_ok() {
                    format!("\"{k}\": {v}")
                } else {
                    format!("\"{k}\": \"{v}\"")
                }
            })
            .collect();
        self.rows.push(format!(
            "{{\"params\": {{{}}}, \"metrics\": {}}}",
            params_json.join(", "),
            metrics.to_json()
        ));
    }

    /// Adopt an already-encoded `{"params": ..., "metrics": ...}` row —
    /// used by sweeps that isolate each cell in a child process (E16) and
    /// merge the children's rows into one file.
    pub fn raw_row(&mut self, row_json: String) {
        self.rows.push(row_json);
    }

    /// The encoded rows collected so far, in emission order. A cell
    /// subprocess uses this to hand its row(s) to the parent sweep.
    pub fn rows_json(&self) -> &[String] {
        &self.rows
    }

    /// Where the JSON will land: `$FGL_METRICS_DIR` or `./metrics`.
    pub fn out_path(&self) -> PathBuf {
        let dir = std::env::var("FGL_METRICS_DIR").unwrap_or_else(|_| "metrics".to_string());
        PathBuf::from(dir).join(format!("{}.json", self.experiment))
    }

    /// Write the collected rows; prints the path so runs are traceable.
    pub fn finish(&self) {
        let path = self.out_path();
        if let Some(parent) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("metrics: cannot create {}: {e}", parent.display());
                return;
            }
        }
        let json = format!(
            "{{\"experiment\": \"{}\", \"rows\": [\n{}\n]}}\n",
            self.experiment,
            self.rows.join(",\n")
        );
        match std::fs::write(&path, json) {
            Ok(()) => println!("metrics written to {}", path.display()),
            Err(e) => eprintln!("metrics: cannot write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_validate() {
        experiment_config().validate().unwrap();
        fast_config().validate().unwrap();
    }

    #[test]
    fn spec_scales_with_clients() {
        let s = standard_spec(WorkloadKind::HotCold, 8);
        assert!(s.pages >= 128);
        let s1 = standard_spec(WorkloadKind::HotCold, 1);
        assert!(s1.pages >= 32);
    }
}
