//! Micro-benchmarks for the hot paths behind the experiments: page codec
//! and mutation, the §2 merge procedure, lock-manager throughput, WAL
//! append, and the end-to-end single-client transaction path.
//!
//! Plain timing harness (`harness = false`): the build environment has no
//! crates.io access, so this measures with `std::time::Instant` directly —
//! a warmup pass followed by a timed pass, reporting ns/op.

use fgl::{System, SystemConfig};
use fgl_common::{ClientId, ObjectId, PageId, Psn, SlotId, TxnId};
use fgl_locks::glm::GlmCore;
use fgl_locks::mode::{LockTarget, ObjMode};
use fgl_locks::WaitGraph;
use fgl_storage::merge::merge_pages;
use fgl_storage::page::Page;
use fgl_wal::manager::LogManager;
use fgl_wal::records::{LogPayload, UpdateRecord};
use fgl_wal::store::MemLogStore;
use std::hint::black_box;
use std::time::Instant;

/// Run `f` for `iters` iterations (after `iters/10` warmup) and report.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let per_op = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<40} {per_op:>12.1} ns/op   ({iters} iters)");
}

fn bench_page_ops() {
    bench("page/insert_16x64B", 20_000, || {
        let mut p = Page::format(4096, PageId(1), Psn::ZERO);
        for _ in 0..16 {
            p.insert_object(&[7u8; 64]).unwrap();
        }
        black_box(&p);
    });

    let mut filled = Page::format(4096, PageId(1), Psn::ZERO);
    let slots: Vec<SlotId> = (0..16)
        .map(|_| filled.insert_object(&[1u8; 64]).unwrap())
        .collect();
    let mut i = 0usize;
    bench("page/overwrite_64B", 200_000, || {
        let s = slots[i % slots.len()];
        i += 1;
        filled.write_object(s, &[i as u8; 64]).unwrap();
    });
    let mut i = 0usize;
    bench("page/read_64B", 200_000, || {
        let s = slots[i % slots.len()];
        i += 1;
        black_box(filled.read_object(s).unwrap());
    });
    bench("page/codec_roundtrip_4K", 50_000, || {
        let bytes = filled.as_bytes().to_vec();
        black_box(Page::from_bytes(bytes).unwrap());
    });
}

fn bench_merge() {
    let mut base = Page::format(4096, PageId(9), Psn::ZERO);
    let slots: Vec<SlotId> = (0..16)
        .map(|_| base.insert_object(&[0u8; 64]).unwrap())
        .collect();
    let mut a = base.clone();
    let mut b2 = base.clone();
    for (i, s) in slots.iter().enumerate() {
        if i % 2 == 0 {
            a.write_object(*s, &[1u8; 64]).unwrap();
        } else {
            b2.write_object(*s, &[2u8; 64]).unwrap();
        }
    }
    bench("merge/disjoint_16x64B", 50_000, || {
        black_box(merge_pages(&a, &b2).unwrap());
    });
}

fn bench_glm() {
    bench("glm/uncontended_object_lock_x64", 10_000, || {
        let mut glm = GlmCore::new();
        for i in 0..64u16 {
            let o = ObjectId::new(PageId((i / 16) as u64), SlotId(i % 16));
            glm.lock(
                ClientId(1),
                TxnId::compose(ClientId(1), 1),
                LockTarget::Object(o, ObjMode::X),
            );
        }
        black_box(&glm);
    });
    bench("glm/shared_lock_three_clients", 50_000, || {
        let mut glm = GlmCore::new();
        let o = ObjectId::new(PageId(1), SlotId(0));
        for cid in 1..=3u32 {
            glm.lock(
                ClientId(cid),
                TxnId::compose(ClientId(cid), 1),
                LockTarget::Object(o, ObjMode::S),
            );
        }
        black_box(&glm);
    });
}

/// Four lock-table shards sharing one waits-for graph, driven from four
/// threads with shard-disjoint pages — measures that shard-local lock
/// traffic scales (the only shared touch is the graph on queue changes,
/// which never happen here).
fn bench_sharded_glm() {
    use std::sync::{Arc, Mutex};
    const SHARDS: usize = 4;
    const LOCKS_PER_THREAD: u64 = 64;
    bench("glm/sharded_x64_locks_4_threads", 2_000, || {
        let graph = Arc::new(WaitGraph::new());
        let shards: Vec<Arc<Mutex<GlmCore>>> = (0..SHARDS)
            .map(|_| Arc::new(Mutex::new(GlmCore::with_graph(graph.clone()))))
            .collect();
        std::thread::scope(|s| {
            for (i, shard) in shards.iter().enumerate() {
                let shard = shard.clone();
                s.spawn(move || {
                    let client = ClientId(i as u32 + 1);
                    for k in 0..LOCKS_PER_THREAD {
                        // Pages in this shard's residue class only.
                        let page = PageId(i as u64 + k * SHARDS as u64);
                        let o = ObjectId::new(page, SlotId((k % 16) as u16));
                        shard.lock().unwrap().lock(
                            client,
                            TxnId::compose(client, 1),
                            LockTarget::Object(o, ObjMode::X),
                        );
                    }
                });
            }
        });
        black_box(&shards);
    });
}

fn bench_wal() {
    let record = LogPayload::Update(UpdateRecord {
        txn: TxnId::compose(ClientId(1), 1),
        prev_lsn: fgl::Lsn::NIL,
        object: ObjectId::new(PageId(1), SlotId(0)),
        psn_before: Psn(3),
        before: Some(vec![0u8; 64]),
        after: Some(vec![1u8; 64]),
        structural: false,
    });
    bench("wal/append_128x64B_update", 2_000, || {
        let mut wal = LogManager::new(Box::new(MemLogStore::new()), 64 << 20);
        for _ in 0..128 {
            wal.append(&record).unwrap();
        }
        black_box(&wal);
    });
    bench("wal/encode_decode_update", 200_000, || {
        let bytes = record.encode();
        black_box(LogPayload::decode(&bytes).unwrap());
    });
}

fn bench_end_to_end() {
    let sys = System::build(SystemConfig::default(), 1).unwrap();
    let cl = sys.client(0).clone();
    let t = cl.begin().unwrap();
    let page = cl.create_page(t).unwrap();
    let obj = cl.insert(t, page, &[0u8; 64]).unwrap();
    cl.commit(t).unwrap();
    let mut i = 0u8;
    bench("txn/single_client_write_commit", 3_000, || {
        i = i.wrapping_add(1);
        let t = cl.begin().unwrap();
        cl.write(t, obj, &[i; 64]).unwrap();
        cl.commit(t).unwrap();
    });
    bench("txn/single_client_read_commit", 3_000, || {
        let t = cl.begin().unwrap();
        black_box(cl.read(t, obj).unwrap());
        cl.commit(t).unwrap();
    });
}

fn main() {
    println!("fgl micro-benchmarks (ns/op, lower is better)");
    println!("---------------------------------------------");
    bench_page_ops();
    bench_merge();
    bench_glm();
    bench_sharded_glm();
    bench_wal();
    bench_end_to_end();
}
