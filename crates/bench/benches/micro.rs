//! Criterion micro-benchmarks for the hot paths behind the experiments:
//! page codec and mutation, the §2 merge procedure, PSN-conditional
//! redo, lock-manager throughput, WAL append/force, and the end-to-end
//! single-client transaction path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fgl::{System, SystemConfig};
use fgl_common::{ClientId, ObjectId, PageId, Psn, SlotId, TxnId};
use fgl_locks::glm::GlmCore;
use fgl_locks::mode::{LockTarget, ObjMode};
use fgl_storage::merge::merge_pages;
use fgl_storage::page::Page;
use fgl_wal::manager::LogManager;
use fgl_wal::records::{LogPayload, UpdateRecord};
use fgl_wal::store::MemLogStore;
use std::hint::black_box;

fn bench_page_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("page");
    g.bench_function("insert_64B", |b| {
        b.iter_batched(
            || Page::format(4096, PageId(1), Psn::ZERO),
            |mut p| {
                for _ in 0..16 {
                    p.insert_object(&[7u8; 64]).unwrap();
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
    let mut filled = Page::format(4096, PageId(1), Psn::ZERO);
    let slots: Vec<SlotId> = (0..16)
        .map(|_| filled.insert_object(&[1u8; 64]).unwrap())
        .collect();
    g.bench_function("overwrite_64B", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = slots[i % slots.len()];
            i += 1;
            filled.write_object(s, &[i as u8; 64]).unwrap();
        })
    });
    g.bench_function("read_64B", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = slots[i % slots.len()];
            i += 1;
            black_box(filled.read_object(s).unwrap());
        })
    });
    g.bench_function("codec_roundtrip_4K", |b| {
        b.iter(|| {
            let bytes = filled.as_bytes().to_vec();
            black_box(Page::from_bytes(bytes).unwrap())
        })
    });
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut base = Page::format(4096, PageId(9), Psn::ZERO);
    let slots: Vec<SlotId> = (0..16)
        .map(|_| base.insert_object(&[0u8; 64]).unwrap())
        .collect();
    let mut a = base.clone();
    let mut b2 = base.clone();
    for (i, s) in slots.iter().enumerate() {
        if i % 2 == 0 {
            a.write_object(*s, &[1u8; 64]).unwrap();
        } else {
            b2.write_object(*s, &[2u8; 64]).unwrap();
        }
    }
    c.bench_function("merge/disjoint_16x64B", |bch| {
        bch.iter(|| black_box(merge_pages(&a, &b2).unwrap()))
    });
}

fn bench_glm(c: &mut Criterion) {
    let mut g = c.benchmark_group("glm");
    g.bench_function("uncontended_object_lock", |b| {
        b.iter_batched(
            GlmCore::new,
            |mut glm| {
                for i in 0..64u16 {
                    let o = ObjectId::new(PageId((i / 16) as u64), SlotId(i % 16));
                    glm.lock(
                        ClientId(1),
                        TxnId::compose(ClientId(1), 1),
                        LockTarget::Object(o, ObjMode::X),
                    );
                }
                glm
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("shared_lock_three_clients", |b| {
        b.iter_batched(
            GlmCore::new,
            |mut glm| {
                let o = ObjectId::new(PageId(1), SlotId(0));
                for cid in 1..=3u32 {
                    glm.lock(
                        ClientId(cid),
                        TxnId::compose(ClientId(cid), 1),
                        LockTarget::Object(o, ObjMode::S),
                    );
                }
                glm
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    let record = LogPayload::Update(UpdateRecord {
        txn: TxnId::compose(ClientId(1), 1),
        prev_lsn: fgl::Lsn::NIL,
        object: ObjectId::new(PageId(1), SlotId(0)),
        psn_before: Psn(3),
        before: Some(vec![0u8; 64]),
        after: Some(vec![1u8; 64]),
        structural: false,
    });
    g.bench_function("append_64B_update", |b| {
        b.iter_batched(
            || LogManager::new(Box::new(MemLogStore::new()), 64 << 20),
            |mut wal| {
                for _ in 0..128 {
                    wal.append(&record).unwrap();
                }
                wal
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("encode_decode_update", |b| {
        b.iter(|| {
            let bytes = record.encode();
            black_box(LogPayload::decode(&bytes).unwrap())
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn");
    g.sample_size(30);
    let sys = System::build(SystemConfig::default(), 1).unwrap();
    let cl = sys.client(0).clone();
    let t = cl.begin().unwrap();
    let page = cl.create_page(t).unwrap();
    let obj = cl.insert(t, page, &[0u8; 64]).unwrap();
    cl.commit(t).unwrap();
    g.bench_function("single_client_write_commit", |b| {
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            let t = cl.begin().unwrap();
            cl.write(t, obj, &[i; 64]).unwrap();
            cl.commit(t).unwrap();
        })
    });
    g.bench_function("single_client_read_commit", |b| {
        b.iter(|| {
            let t = cl.begin().unwrap();
            black_box(cl.read(t, obj).unwrap());
            cl.commit(t).unwrap();
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_page_ops,
    bench_merge,
    bench_glm,
    bench_wal,
    bench_end_to_end
);
criterion_main!(benches);
