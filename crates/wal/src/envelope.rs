//! Strategy-owned record semantics, carried inside the tagged envelope.
//!
//! The log transport ([`crate::manager`], [`crate::records`]) understands
//! exactly one extension tag: [`ExtRecord`], an
//! envelope with a transport-visible header (owning strategy, record kind,
//! optional txn/page for scans) and an opaque body. This module defines
//! the bodies the non-default logging strategies put inside it:
//!
//! * [`RedoUpdateRecord`] — an object update with **no before-image**
//!   (REDO-only logging, Sauer & Härder arXiv 1409.3682; also the
//!   "command-sized" side of the hybrid strategy, Yao et al.
//!   arXiv 1503.03653). Undo information stays in client memory.
//! * [`UndoSpillRecord`] — the first-touch before-image of one object of
//!   an uncommitted transaction, forced right before the dirty page
//!   carrying that update leaves the client (the steal point). This is
//!   the only undo information a redo-only loser leaves behind, and it is
//!   exactly enough: updates that never shipped need no undo after a
//!   crash.
//!
//! Strategies may define further kinds; unknown kinds decode to an error
//! so scans of a newer log fail loudly instead of misinterpreting bytes.

use crate::codec::{Reader, Writer};
use crate::records::{ExtRecord, LogPayload};
use fgl_common::{FglError, Lsn, ObjectId, Psn, Result, TxnId};

/// Envelope `strategy` ids (who owns the body encoding).
pub const STRATEGY_REDO_ONLY: u8 = 1;
pub const STRATEGY_HYBRID: u8 = 2;

const EXT_KIND_REDO_UPDATE: u8 = 1;
const EXT_KIND_UNDO_SPILL: u8 = 2;

/// An object update whose before-image was deliberately not logged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RedoUpdateRecord {
    pub txn: TxnId,
    /// Backward chain within the transaction (ARIES PrevLSN).
    pub prev_lsn: Lsn,
    pub object: ObjectId,
    /// PSN of the page immediately before this update was applied.
    pub psn_before: Psn,
    /// `None` means "object deleted".
    pub after: Option<Vec<u8>>,
    pub structural: bool,
}

/// First-touch before-image of one uncommitted object update, spilled at
/// the steal point (right before the dirty page ships).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UndoSpillRecord {
    pub txn: TxnId,
    pub object: ObjectId,
    /// `None` means "object was absent before the transaction touched it"
    /// (undo frees the slot).
    pub before: Option<Vec<u8>>,
}

/// Typed view of a strategy-owned envelope body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrategyRecord {
    RedoUpdate(RedoUpdateRecord),
    UndoSpill(UndoSpillRecord),
}

impl StrategyRecord {
    /// Wrap into a transport envelope owned by `strategy`.
    pub fn into_payload(self, strategy: u8) -> LogPayload {
        let (kind, txn, page, body) = match &self {
            StrategyRecord::RedoUpdate(u) => {
                let mut w = Writer::new();
                w.txn(u.txn);
                w.lsn(u.prev_lsn);
                w.object(u.object);
                w.psn(u.psn_before);
                w.opt_bytes(u.after.as_deref());
                w.bool(u.structural);
                (
                    EXT_KIND_REDO_UPDATE,
                    Some(u.txn),
                    Some(u.object.page),
                    w.into_bytes(),
                )
            }
            StrategyRecord::UndoSpill(s) => {
                let mut w = Writer::new();
                w.txn(s.txn);
                w.object(s.object);
                w.opt_bytes(s.before.as_deref());
                (
                    EXT_KIND_UNDO_SPILL,
                    Some(s.txn),
                    Some(s.object.page),
                    w.into_bytes(),
                )
            }
        };
        LogPayload::Ext(ExtRecord {
            strategy,
            kind,
            txn,
            page,
            body,
        })
    }

    /// Decode the body of an envelope (any owning strategy; the body
    /// layouts are shared between the redo-only and hybrid strategies).
    pub fn decode(ext: &ExtRecord) -> Result<StrategyRecord> {
        let mut r = Reader::new(&ext.body);
        let rec = match ext.kind {
            EXT_KIND_REDO_UPDATE => StrategyRecord::RedoUpdate(RedoUpdateRecord {
                txn: r.txn()?,
                prev_lsn: r.lsn()?,
                object: r.object()?,
                psn_before: r.psn()?,
                after: r.opt_bytes()?,
                structural: r.bool()?,
            }),
            EXT_KIND_UNDO_SPILL => StrategyRecord::UndoSpill(UndoSpillRecord {
                txn: r.txn()?,
                object: r.object()?,
                before: r.opt_bytes()?,
            }),
            k => {
                return Err(FglError::Corrupt(format!(
                    "unknown strategy record kind {k} (strategy {})",
                    ext.strategy
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(FglError::Corrupt(format!(
                "{} trailing bytes in strategy record body",
                r.remaining()
            )));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgl_common::{ClientId, PageId, SlotId};

    fn obj(p: u64, s: u16) -> ObjectId {
        ObjectId::new(PageId(p), SlotId(s))
    }

    fn roundtrip(rec: StrategyRecord, strategy: u8) {
        let payload = rec.clone().into_payload(strategy);
        let bytes = payload.encode();
        let decoded = LogPayload::decode(&bytes).unwrap();
        let LogPayload::Ext(ext) = &decoded else {
            panic!("expected Ext envelope, got {decoded:?}");
        };
        assert_eq!(ext.strategy, strategy);
        assert_eq!(StrategyRecord::decode(ext).unwrap(), rec);
    }

    #[test]
    fn strategy_records_roundtrip_through_envelope() {
        let txn = TxnId::compose(ClientId(3), 11);
        roundtrip(
            StrategyRecord::RedoUpdate(RedoUpdateRecord {
                txn,
                prev_lsn: Lsn(64),
                object: obj(7, 4),
                psn_before: Psn(2),
                after: Some(b"redo image".to_vec()),
                structural: false,
            }),
            STRATEGY_REDO_ONLY,
        );
        roundtrip(
            StrategyRecord::RedoUpdate(RedoUpdateRecord {
                txn,
                prev_lsn: Lsn::NIL,
                object: obj(7, 5),
                psn_before: Psn(0),
                after: None,
                structural: true,
            }),
            STRATEGY_HYBRID,
        );
        roundtrip(
            StrategyRecord::UndoSpill(UndoSpillRecord {
                txn,
                object: obj(7, 4),
                before: Some(b"old".to_vec()),
            }),
            STRATEGY_REDO_ONLY,
        );
        roundtrip(
            StrategyRecord::UndoSpill(UndoSpillRecord {
                txn,
                object: obj(9, 0),
                before: None,
            }),
            STRATEGY_HYBRID,
        );
    }

    #[test]
    fn envelope_accessors_come_from_header() {
        let txn = TxnId::compose(ClientId(1), 2);
        let payload = StrategyRecord::UndoSpill(UndoSpillRecord {
            txn,
            object: obj(42, 1),
            before: None,
        })
        .into_payload(STRATEGY_REDO_ONLY);
        assert_eq!(payload.txn(), Some(txn));
        assert_eq!(payload.page(), Some(PageId(42)));
    }

    #[test]
    fn unknown_strategy_kind_rejected() {
        let ext = ExtRecord {
            strategy: STRATEGY_REDO_ONLY,
            kind: 200,
            txn: None,
            page: None,
            body: vec![1, 2, 3],
        };
        assert!(StrategyRecord::decode(&ext).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let txn = TxnId::compose(ClientId(1), 2);
        let payload = StrategyRecord::RedoUpdate(RedoUpdateRecord {
            txn,
            prev_lsn: Lsn(8),
            object: obj(1, 0),
            psn_before: Psn(1),
            after: Some(b"x".to_vec()),
            structural: false,
        })
        .into_payload(STRATEGY_HYBRID);
        let LogPayload::Ext(mut ext) = payload else {
            unreachable!()
        };
        ext.body.truncate(ext.body.len() - 2);
        assert!(StrategyRecord::decode(&ext).is_err());
    }
}
